"""Setup shim: enables legacy editable installs on offline toolchains
(``pip install -e . --no-build-isolation --no-use-pep517``) where the
``wheel`` package is unavailable.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
