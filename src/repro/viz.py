"""Image export without external plotting dependencies.

Writes portable pixmap (``.ppm``) files — viewable everywhere — for the
repo's two visual artifacts: synthetic camera frames and bird's-eye-view
renderings of scenes with ground-truth/predicted boxes (the paper's
Fig 6, as an actual image instead of ASCII).
"""

from __future__ import annotations

import os

import numpy as np

from repro.pointcloud.boxes import Box3D, bev_corners

__all__ = ["write_ppm", "image_to_ppm", "bev_density_map", "draw_boxes_bev",
           "render_fig6_image"]

#: BEV drawing colors (RGB in [0,1])
_GT_COLOR = (0.2, 0.9, 0.3)
_PRED_COLOR = (0.95, 0.25, 0.2)


def write_ppm(image: np.ndarray, path: str) -> None:
    """Write an (3, H, W) or (H, W, 3) float [0,1] image as binary PPM."""
    arr = np.asarray(image)
    if arr.ndim != 3:
        raise ValueError("expected a 3-channel image")
    if arr.shape[0] == 3 and arr.shape[2] != 3:
        arr = arr.transpose(1, 2, 0)
    if arr.shape[2] != 3:
        raise ValueError("expected 3 channels")
    data = (np.clip(arr, 0.0, 1.0) * 255).astype(np.uint8)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{data.shape[1]} {data.shape[0]}\n255\n"
                     .encode())
        handle.write(data.tobytes())


def image_to_ppm(scene_image: np.ndarray, path: str,
                 upscale: int = 4) -> None:
    """Save a (3, H, W) synthetic camera image, optionally upscaled."""
    image = np.asarray(scene_image)
    if upscale > 1:
        image = image.repeat(upscale, axis=1).repeat(upscale, axis=2)
    write_ppm(image, path)


def bev_density_map(points: np.ndarray,
                    x_range: tuple = (0.0, 51.2),
                    y_range: tuple = (-25.6, 25.6),
                    resolution: float = 0.2) -> np.ndarray:
    """Log-scaled point-density image of a cloud, (H, W) in [0, 1].

    Rows run along y (left at the top), columns along x (forward to the
    right) — the conventional KITTI BEV orientation.
    """
    nx = int((x_range[1] - x_range[0]) / resolution)
    ny = int((y_range[1] - y_range[0]) / resolution)
    pts = np.asarray(points)
    cols = ((pts[:, 0] - x_range[0]) / resolution).astype(int)
    rows = ((pts[:, 1] - y_range[0]) / resolution).astype(int)
    keep = (cols >= 0) & (cols < nx) & (rows >= 0) & (rows < ny)
    density = np.zeros((ny, nx), dtype=np.float64)
    np.add.at(density, (rows[keep], cols[keep]), 1.0)
    scaled = np.log1p(density)
    peak = scaled.max()
    return (scaled / peak if peak > 0 else scaled).astype(np.float32)


def _draw_line(canvas: np.ndarray, p0, p1, color) -> None:
    """Bresenham-ish line on an (H, W, 3) canvas."""
    h, w = canvas.shape[:2]
    length = int(max(abs(p1[0] - p0[0]), abs(p1[1] - p0[1]), 1)) + 1
    for t in np.linspace(0.0, 1.0, length * 2):
        row = int(round(p0[0] + (p1[0] - p0[0]) * t))
        col = int(round(p0[1] + (p1[1] - p0[1]) * t))
        if 0 <= row < h and 0 <= col < w:
            canvas[row, col] = color


def draw_boxes_bev(canvas: np.ndarray, boxes: list[Box3D], color,
                   x_range: tuple = (0.0, 51.2),
                   y_range: tuple = (-25.6, 25.6)) -> None:
    """Outline oriented boxes on an (H, W, 3) BEV canvas in place."""
    h, w = canvas.shape[:2]

    def to_pixel(point):
        col = (point[0] - x_range[0]) / (x_range[1] - x_range[0]) * w
        row = (point[1] - y_range[0]) / (y_range[1] - y_range[0]) * h
        return (row, col)

    for box in boxes:
        corners = bev_corners(box.as_vector())
        pixels = [to_pixel(corner) for corner in corners]
        for i in range(4):
            _draw_line(canvas, pixels[i], pixels[(i + 1) % 4], color)


def render_fig6_image(scene, predictions: list[Box3D], path: str,
                      x_range: tuple = (0.0, 51.2),
                      y_range: tuple = (-25.6, 25.6)) -> np.ndarray:
    """The paper's Fig 6 as a PPM: density map + GT (green) + preds (red).

    Returns the (H, W, 3) canvas (also written to ``path``).
    """
    density = bev_density_map(scene.points, x_range, y_range)
    canvas = np.stack([density * 0.6, density * 0.7, density * 0.9],
                      axis=-1)
    draw_boxes_bev(canvas, scene.boxes, _GT_COLOR, x_range, y_range)
    draw_boxes_bev(canvas, predictions, _PRED_COLOR, x_range, y_range)
    write_ppm(canvas, path)
    return canvas
