"""``repro.baselines`` — the four state-of-the-art frameworks UPAQ is
compared against in Table 2.

* :class:`PsAndQs` — quantization-aware iterative unstructured pruning
  with a uniform bitwidth.
* :class:`ClipQ` — per-layer clip/partition/quantize.
* :class:`RToss` — fixed entry-pattern semi-structured pruning with
  L2-norm selection and connectivity pruning (no quantization).
* :class:`LidarPTQ` — max–min calibrated INT8 PTQ with adaptive
  rounding (no pruning, no fine-tuning).

All share the :class:`CompressionFramework` interface, as does
:class:`repro.core.UPAQCompressor`.
"""

from .base import (CompressionFramework, FRAMEWORK_REGISTRY,
                   build_framework, register_framework)
from .clipq import ClipQ
from .lidar_ptq import LidarPTQ
from .psqs import PsAndQs
from .rtoss import ENTRY_PATTERNS, RToss
from .structured import StructuredPruner

__all__ = [
    "CompressionFramework", "FRAMEWORK_REGISTRY", "build_framework",
    "register_framework", "PsAndQs", "ClipQ", "RToss", "LidarPTQ",
    "StructuredPruner",
    "ENTRY_PATTERNS",
]
