"""CLIP-Q: in-parallel pruning–quantization via clipping (Tung & Mori).

Per-layer partitioning by magnitude clipping: weights inside the
clipping band are pruned, survivors are quantized onto a small uniform
codebook.  The method processes each layer independently (the UPAQ paper
notes it "focuses on only parts of the model without considering overall
performance"), so no global budget balances layer sensitivities.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import mp_quantizer

from .base import CompressionFramework, register_framework

__all__ = ["ClipQ"]


@register_framework("clipq")
class ClipQ(CompressionFramework):
    """Clip → partition → quantize, layer by layer."""

    name = "CLIP-Q"

    def __init__(self, clip_percentile: float = 30.0, bits: int = 8):
        if not 0.0 <= clip_percentile < 100.0:
            raise ValueError("clip_percentile must be in [0, 100)")
        self.clip_percentile = clip_percentile
        self.bits = bits

    def _compress_in_place(self, model, report, *example_inputs) -> None:
        for layer_name, module in self._kernel_layers(model).items():
            weights = module.weight.data
            clip_threshold = np.percentile(np.abs(weights),
                                           self.clip_percentile)
            mask = (np.abs(weights) > clip_threshold).astype(np.float32)
            clipped = weights * mask
            # Quantize survivors onto the 2^bits codebook.  CLIP-Q builds
            # the codebook from the *clipped* distribution, which keeps
            # the quantization grid tight around surviving magnitudes.
            result = mp_quantizer(clipped, self.bits)
            module.weight.data = result.values
            self._record(report, module, layer_name, mask, self.bits,
                         scheme="unstructured", sqnr=result.sqnr)
