"""R-TOSS: entry-pattern semi-structured pruning (Balasubramaniam et al.,
DAC 2023) — the UPAQ authors' own prior work and its strongest baseline.

Pruning only (no quantization): every k×k kernel is masked with the
best-fitting *entry pattern* from a fixed dictionary, selected by the
L2-norm of the surviving weights; kernels whose retained energy falls in
the lowest percentile are removed entirely (connectivity pruning).  The
UPAQ paper's criticisms are visible in the code: the pattern dictionary
is fixed (no per-model pattern search), selection uses plain L2 with no
awareness of downstream quantization noise, and 1×1 layers are left
untouched.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionFramework, register_framework

__all__ = ["RToss", "ENTRY_PATTERNS"]


def _entry_patterns_3x3(n_entries: int) -> list[np.ndarray]:
    """The fixed EP dictionary: centered + edge-adjacent masks."""
    # Canonical 4-entry style patterns adapted to n entries: always keep
    # the center, distribute the rest over cross/diagonal neighbours.
    offsets_cross = [(0, 0), (0, 1), (1, 0), (0, -1), (-1, 0)]
    offsets_diag = [(0, 0), (1, 1), (-1, -1), (1, -1), (-1, 1)]
    patterns = []
    for offsets in (offsets_cross, offsets_diag):
        mask = np.zeros((3, 3), dtype=np.float32)
        for dr, dc in offsets[:n_entries]:
            mask[1 + dr, 1 + dc] = 1.0
        patterns.append(mask)
    # Corner-anchored variants widen the dictionary.
    for anchor in ((0, 0), (0, 2), (2, 0), (2, 2)):
        mask = np.zeros((3, 3), dtype=np.float32)
        mask[anchor] = 1.0
        mask[1, 1] = 1.0
        remaining = [(0, 1), (1, 0), (1, 2), (2, 1)]
        for pos in remaining[:max(n_entries - 2, 0)]:
            mask[pos] = 1.0
        patterns.append(mask)
    return patterns


ENTRY_PATTERNS = {n: _entry_patterns_3x3(n) for n in (3, 4, 5)}


@register_framework("rtoss")
class RToss(CompressionFramework):
    """Fixed entry-pattern pruning + connectivity pruning, no quantization."""

    name = "R-TOSS"

    def __init__(self, n_entries: int = 3,
                 connectivity_percentile: float = 25.0):
        if n_entries not in ENTRY_PATTERNS:
            raise ValueError(f"n_entries must be one of "
                             f"{sorted(ENTRY_PATTERNS)}")
        self.n_entries = n_entries
        self.connectivity_percentile = connectivity_percentile

    def _compress_in_place(self, model, report, *example_inputs) -> None:
        patterns = ENTRY_PATTERNS[self.n_entries]
        for layer_name, module in self._kernel_layers(model).items():
            weights = module.weight.data
            if weights.ndim != 4 or weights.shape[-1] != 3:
                # R-TOSS targets 3×3 kernels; other layers pass through.
                continue
            out_c, in_c = weights.shape[:2]
            flat_kernels = weights.reshape(out_c * in_c, 3, 3)

            # Per-kernel best entry pattern by surviving L2-norm.
            energies = np.stack(
                [np.linalg.norm(flat_kernels * p, axis=(1, 2))
                 for p in patterns])                       # (P, K)
            best_pattern = energies.argmax(axis=0)          # (K,)
            mask = np.stack([patterns[i] for i in best_pattern])

            # Connectivity pruning: drop the weakest kernels outright.
            retained_energy = energies.max(axis=0)
            threshold = np.percentile(retained_energy,
                                      self.connectivity_percentile)
            dead = retained_energy <= threshold
            mask[dead] = 0.0

            mask = mask.reshape(weights.shape).astype(np.float32)
            module.weight.data = weights * mask
            self._record(report, module, layer_name, mask, bits=32,
                         scheme="semi-structured", sqnr=float("inf"),
                         pattern=f"EP[n={self.n_entries}]")
