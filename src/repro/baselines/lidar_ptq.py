"""LiDAR-PTQ: post-training quantization for 3D detectors (Zhou et al.).

Quantization only, no pruning and — critically — no fine-tuning: a
max–min calibrated symmetric INT8 grid with *adaptive rounding*: instead
of rounding every weight to the nearest code, borderline weights are
rounded in the direction that minimizes the layer's output
reconstruction error on calibration activations (an AdaRound-style
coordinate descent).  Sensitive boundary layers (first and last) stay at
16-bit, which is why its compression ratio lands near 3–3.5× rather than
the naive 4×.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import quantize_to_int

from .base import CompressionFramework, register_framework

__all__ = ["LidarPTQ"]


def _adaptive_round(weights: np.ndarray, scale: float, bits: int,
                    calib_moments: np.ndarray | None) -> np.ndarray:
    """Error-feedback adaptive rounding (AdaRound-style).

    Per-weight nearest rounding minimizes each weight's own error but
    lets per-output errors *accumulate*: after ReLU, activations are
    non-negative and correlated, so the output error is approximately
    ``Σ_f Δw_f · E[x_f]``.  We therefore round sequentially per output
    row, steering each weight's floor/ceil choice to cancel the running
    accumulated error — a sigma-delta scheme guided by the calibration
    activations' first moments.  Falls back to unit moments without
    calibration data.
    """
    max_code = 2 ** (bits - 1) - 1
    ratio = weights / scale
    floor = np.floor(ratio)
    frac = ratio - floor

    rows = weights.shape[0] if weights.ndim > 1 else 1
    flat_frac = frac.reshape(rows, -1)
    flat_floor = floor.reshape(rows, -1)
    features = flat_frac.shape[1]

    if calib_moments is not None and calib_moments.size > 0:
        per_channel = np.sqrt(np.maximum(
            np.asarray(calib_moments, dtype=np.float64).reshape(-1), 1e-12))
        repeat = max(features // per_channel.size, 1)
        moments = np.repeat(per_channel, repeat)[:features]
        if moments.size < features:
            moments = np.pad(moments, (0, features - moments.size),
                             constant_values=float(moments.mean()))
    else:
        moments = np.ones(features)

    up = np.zeros_like(flat_frac)
    accumulated = np.zeros(rows)
    for f in range(features):
        err_up = (1.0 - flat_frac[:, f]) * scale * moments[f]
        err_down = -flat_frac[:, f] * scale * moments[f]
        choose_up = np.abs(accumulated + err_up) \
            <= np.abs(accumulated + err_down)
        up[:, f] = choose_up
        accumulated += np.where(choose_up, err_up, err_down)

    codes = np.clip((flat_floor + up).reshape(weights.shape),
                    -max_code, max_code)
    return (codes * scale).astype(np.float32)


@register_framework("lidarptq")
class LidarPTQ(CompressionFramework):
    """Max–min calibrated PTQ with adaptive rounding; no fine-tuning."""

    name = "LiDAR-PTQ"
    uses_finetuning = False

    def __init__(self, bits: int = 8, boundary_bits: int = 16,
                 calibration_scenes=None):
        self.bits = bits
        self.boundary_bits = boundary_bits
        self.calibration_scenes = calibration_scenes or []

    def _collect_calibration(self, model, *example_inputs) -> dict:
        """Capture per-layer input activations on calibration data."""
        from repro.nn.graph import KERNEL_LAYER_TYPES
        captured: dict[str, list] = {}
        hooked = []

        def make_hook(name, module):
            original = module.forward

            def wrapper(*args, **kwargs):
                x = args[0]
                data = x.data
                if data.ndim == 4:        # (N, C, H, W): per-channel E[x²]
                    moments = (data ** 2).mean(axis=(0, 2, 3))
                else:                     # (N, F): per-feature E[x²]
                    moments = (data ** 2).mean(axis=0).reshape(-1)
                captured.setdefault(name, []).append(moments)
                return original(*args, **kwargs)

            return original, wrapper

        for name, module in model.named_modules():
            if isinstance(module, KERNEL_LAYER_TYPES):
                original, wrapper = make_hook(name, module)
                object.__setattr__(module, "forward", wrapper)
                hooked.append((module, original))
        try:
            runs = []
            if self.calibration_scenes and hasattr(model, "preprocess"):
                runs = [model.preprocess(s) for s in self.calibration_scenes]
            if not runs:
                runs = [example_inputs]
            for inputs in runs:
                model.eval()
                model(*inputs)
        finally:
            for module, original in hooked:
                object.__setattr__(module, "forward", original)
        return {name: np.mean(np.stack(chunks), axis=0)
                for name, chunks in captured.items()}

    def _compress_in_place(self, model, report, *example_inputs) -> None:
        calibration = self._collect_calibration(model, *example_inputs)
        layers = self._kernel_layers(model)
        names = list(layers)
        boundary = {names[0], names[-1]} if names else set()

        for layer_name, module in layers.items():
            weights = module.weight.data
            bits = self.boundary_bits if layer_name in boundary else self.bits
            _, scale = quantize_to_int(weights, bits)
            calib = calibration.get(layer_name)
            rounded = _adaptive_round(weights.astype(np.float64), scale,
                                      bits, calib)
            quantized = rounded.astype(np.float32)
            noise_var = float((weights - quantized).var())
            signal_var = float(weights.var())
            sqnr = signal_var / noise_var if noise_var > 1e-20 \
                else float("inf")
            module.weight.data = quantized
            self._record(report, module, layer_name,
                         mask=np.ones_like(weights, dtype=np.float32),
                         bits=bits, scheme="dense", sqnr=sqnr,
                         pattern="ptq")
