"""Structured filter/channel pruning as a comparison framework.

The structured extreme of the pruning spectrum the paper lays out in
§III.A: whole filters (or input channels) are removed, so hardware skips
their MACs completely — the best realized speedup per unit sparsity, at
the accuracy cost the paper warns about ("essential weights may be
pruned alongside redundant ones").
"""

from __future__ import annotations

from repro.core.quantizer import mp_quantizer
from repro.core.structured import channel_prune_mask, filter_prune_mask

from .base import CompressionFramework, register_framework

__all__ = ["StructuredPruner"]


@register_framework("structured")
class StructuredPruner(CompressionFramework):
    """Filter pruning + uniform quantization, the structured extreme.

    Removes whole filters (hardware skips their MACs completely), which
    is why structured pruning wins on realized speedup per unit sparsity
    but — as the paper notes — "often decreases model accuracy, as
    essential weights may be pruned alongside redundant ones".
    """

    name = "Structured"

    def __init__(self, prune_fraction: float = 0.3, bits: int = 8,
                 mode: str = "filter"):
        if mode not in ("filter", "channel"):
            raise ValueError("mode must be 'filter' or 'channel'")
        self.prune_fraction = prune_fraction
        self.bits = bits
        self.mode = mode

    def _compress_in_place(self, model, report, *example_inputs) -> None:
        make_mask = filter_prune_mask if self.mode == "filter" \
            else channel_prune_mask
        for layer_name, module in self._kernel_layers(model).items():
            weights = module.weight.data
            mask = make_mask(weights, self.prune_fraction)
            result = mp_quantizer(weights * mask, self.bits)
            module.weight.data = result.values
            self._record(report, module, layer_name, mask, self.bits,
                         scheme="structured", sqnr=result.sqnr,
                         pattern=f"{self.mode}[{self.prune_fraction:.0%}]")
