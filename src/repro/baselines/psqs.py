"""Ps&Qs: quantization-aware pruning (Hawks et al., 2021).

Iterative global unstructured magnitude pruning interleaved with
fake-quantized weights at a single uniform bitwidth (per-layer
quantization with the *same* width everywhere — the paper contrasts this
with UPAQ's mixed precision).  The approach achieves modest compression:
unstructured sparsity needs per-value indices, and a uniform bitwidth
cannot go very low without wrecking accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import mp_quantizer

from .base import CompressionFramework, register_framework

__all__ = ["PsAndQs"]


@register_framework("psqs")
class PsAndQs(CompressionFramework):
    """Iterative unstructured magnitude pruning + uniform QAT."""

    name = "Ps&Qs"

    def __init__(self, target_sparsity: float = 0.30, bits: int = 8,
                 iterations: int = 3):
        if not 0.0 <= target_sparsity < 1.0:
            raise ValueError("target_sparsity must be in [0, 1)")
        self.target_sparsity = target_sparsity
        self.bits = bits
        self.iterations = iterations

    def _compress_in_place(self, model, report, *example_inputs) -> None:
        layers = self._kernel_layers(model)
        # Iterative schedule: reach the target sparsity in equal bites,
        # recomputing the global magnitude threshold each round (weights
        # are fake-quantized between rounds, so the ranking shifts).
        for iteration in range(1, self.iterations + 1):
            level = self.target_sparsity * iteration / self.iterations
            magnitudes = np.concatenate(
                [np.abs(m.weight.data).reshape(-1)
                 for m in layers.values()])
            threshold = np.quantile(magnitudes, level)
            for module in layers.values():
                weights = module.weight.data
                mask = (np.abs(weights) > threshold).astype(np.float32)
                module.weight.data = mp_quantizer(
                    weights * mask, self.bits).values

        for layer_name, module in layers.items():
            weights = module.weight.data
            mask = (weights != 0).astype(np.float32)
            result = mp_quantizer(weights, self.bits)
            module.weight.data = result.values
            self._record(report, module, layer_name, mask, self.bits,
                         scheme="unstructured", sqnr=result.sqnr)
