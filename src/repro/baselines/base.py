"""Common interface for compression frameworks (UPAQ and baselines).

Every framework takes a pretrained model, returns a
:class:`repro.core.compressor.CompressionReport` (compressed deep copy,
per-layer choices, prune masks), and optionally fine-tunes.  The
harness drives them all identically to fill Table 2.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.compressor import CompressionReport, LayerChoice
from repro.core.finetune import masked_finetune, requantize
from repro.core.quantizer import sqnr_db
from repro.hardware import (CompressionMeta, annotate_layer, compile_model)
from repro.nn.graph import layer_map
from repro.nn.module import Module

__all__ = ["CompressionFramework", "FRAMEWORK_REGISTRY",
           "register_framework", "build_framework"]

FRAMEWORK_REGISTRY: dict[str, type] = {}


def register_framework(key: str):
    def decorator(cls):
        FRAMEWORK_REGISTRY[key] = cls
        return cls
    return decorator


def build_framework(key: str, **kwargs) -> "CompressionFramework":
    normalized = key.lower().replace(" ", "").replace("-", "").replace("&", "")
    if normalized not in FRAMEWORK_REGISTRY:
        raise KeyError(f"unknown framework {key!r}; "
                       f"available: {sorted(FRAMEWORK_REGISTRY)}")
    return FRAMEWORK_REGISTRY[normalized](**kwargs)


class CompressionFramework:
    """Base class: deep-copy handling, reporting, fine-tune plumbing."""

    name = "framework"
    #: whether this framework fine-tunes after compression (PTQ does not)
    uses_finetuning = True

    def compress(self, model: Module, *example_inputs) -> CompressionReport:
        compressed = copy.deepcopy(model)
        report = CompressionReport(model=compressed)
        self._compress_in_place(compressed, report, *example_inputs)
        final_plan = compile_model(compressed, *example_inputs)
        report.compression_ratio = final_plan.compression_ratio
        return report

    def _compress_in_place(self, model: Module, report: CompressionReport,
                           *example_inputs) -> None:
        raise NotImplementedError

    def finetune(self, report: CompressionReport, scenes,
                 epochs: int = 3, lr: float = 5e-4) -> CompressionReport:
        if not self.uses_finetuning or epochs <= 0 or not scenes:
            return report
        masked_finetune(report.model, scenes, report.masks,
                        epochs=epochs, lr=lr)
        bits_by_layer = {c.layer: c.bits for c in report.choices
                         if c.bits < 32}
        requantize(report.model, bits_by_layer, report.masks)
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _record(report: CompressionReport, module: Module, layer_name: str,
                mask: np.ndarray, bits: int, scheme: str, sqnr: float,
                pattern: str = "-") -> None:
        """Annotate a layer and add its row to the report."""
        annotate_layer(module, CompressionMeta(bits=bits, scheme=scheme))
        report.masks[layer_name] = mask.astype(np.float32)
        report.choices.append(LayerChoice(
            layer=layer_name, root=layer_name, pattern=pattern, bits=bits,
            sparsity=float((mask == 0).mean()), sqnr_db=sqnr_db(sqnr),
            score=float("nan")))

    @staticmethod
    def _kernel_layers(model: Module) -> dict[str, Module]:
        return layer_map(model)
