"""Structured (channel/filter) pruning — the paper's §III.A category 2.

UPAQ positions semi-structured patterns *between* unstructured and
structured pruning.  This module supplies the structured end of that
spectrum so the trade-off can be measured in-repo: filter pruning
removes whole output filters (their weights zero out and downstream
hardware drops the MACs entirely — ``SCHEMES['structured']`` skip 1.0),
channel pruning removes input channels.  Importance is the filter/channel
L2 norm, the standard magnitude criterion.

Used by the structured-vs-semi-structured ablation bench; the
:class:`repro.baselines.structured.StructuredPruner` framework wraps
these masks for Table-2-style comparisons.
"""

from __future__ import annotations

import numpy as np

__all__ = ["filter_prune_mask", "channel_prune_mask"]


def filter_prune_mask(weights: np.ndarray, prune_fraction: float
                      ) -> np.ndarray:
    """Mask that zeroes the lowest-L2 output filters of a conv layer."""
    if not 0.0 <= prune_fraction < 1.0:
        raise ValueError("prune_fraction must be in [0, 1)")
    out_channels = weights.shape[0]
    n_prune = int(np.floor(out_channels * prune_fraction))
    mask = np.ones_like(weights, dtype=np.float32)
    if n_prune == 0:
        return mask
    norms = np.sqrt((weights.reshape(out_channels, -1) ** 2).sum(axis=1))
    victims = np.argsort(norms)[:n_prune]
    mask[victims] = 0.0
    return mask


def channel_prune_mask(weights: np.ndarray, prune_fraction: float
                       ) -> np.ndarray:
    """Mask that zeroes the lowest-L2 *input* channels of a conv layer."""
    if not 0.0 <= prune_fraction < 1.0:
        raise ValueError("prune_fraction must be in [0, 1)")
    if weights.ndim < 2:
        return np.ones_like(weights, dtype=np.float32)
    in_channels = weights.shape[1]
    n_prune = int(np.floor(in_channels * prune_fraction))
    mask = np.ones_like(weights, dtype=np.float32)
    if n_prune == 0:
        return mask
    swapped = np.swapaxes(weights, 0, 1).reshape(in_channels, -1)
    norms = np.sqrt((swapped ** 2).sum(axis=1))
    victims = np.argsort(norms)[:n_prune]
    mask[:, victims] = 0.0
    return mask
