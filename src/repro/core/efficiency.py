"""UPAQ efficiency score (paper eq. 2).

``E_s = α·sqnr + β·(1/latency) + γ·(1/energy)`` with on-device latency
and energy from the analytic device model.  The three terms live on very
different scales, so each is normalized to O(1): SQNR in dB against a
reference ceiling, and latency/energy as the *dense-baseline over
candidate* ratio (so "twice as fast as the uncompressed layer" scores
2.0).  Weights default to the paper's α=0.3, β=0.4, γ=0.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.deploy import CompiledPlan, PlanLayer
from repro.hardware.device import DeviceModel

from .quantizer import sqnr_db

__all__ = ["EfficiencyWeights", "EfficiencyScorer"]

#: dB at which the SQNR term saturates: past ~50 dB, quantization noise
#: is far below detector noise, so more bits buy no accuracy — letting
#: the latency/energy terms break the tie toward lower precision.
_SQNR_REFERENCE_DB = 50.0

#: Speedup at which the latency/energy terms saturate.  All three E_s
#: terms must live on the same [0, 1] scale for α/β/γ to act as real
#: weights; an unbounded base/candidate ratio would otherwise swamp the
#: SQNR term and drive every layer to the lowest bitwidth.  With this
#: cap, compute-bound layers (large Δspeedup between bitwidths) go low,
#: memory-bound layers (latency barely responds to bits) keep precision
#: — the mixed allocation the paper describes.
_SPEEDUP_REFERENCE = 10.0


@dataclass(frozen=True)
class EfficiencyWeights:
    alpha: float = 0.3   # SQNR (accuracy retention)
    beta: float = 0.4    # 1/latency (the paper prioritizes latency)
    gamma: float = 0.3   # 1/energy

    def __post_init__(self):
        for value in (self.alpha, self.beta, self.gamma):
            if not 0.0 <= value <= 1.0:
                raise ValueError("efficiency weights must lie in [0, 1]")


class EfficiencyScorer:
    """Scores (bits, sparsity, scheme) candidates for one layer.

    Holds the model's dense compiled plan plus a device model; scoring a
    candidate re-prices only the affected layer, so the per-candidate
    cost during the compression search is O(1).
    """

    def __init__(self, plan: CompiledPlan, device: DeviceModel,
                 weights: EfficiencyWeights | None = None,
                 cache: "MemoCache | None" = None):
        self.plan = plan
        self.device = device
        self.weights = weights or EfficiencyWeights()
        #: optional :class:`repro.core.search.MemoCache` for candidate
        #: latency/energy lookups, keyed on the layer's *cost signature*
        #: (:attr:`LayerProfile.cache_key`) — so the backbone's many
        #: same-shaped layers are priced once per (bits, sparsity).
        self.cache = cache
        self._dense_by_name = {layer.profile.name: layer
                               for layer in plan.layers}
        self._dense_latency = {name: device.layer_latency(layer)
                               for name, layer in self._dense_by_name.items()}
        self._dense_energy = {name: device.layer_energy(layer)
                              for name, layer in self._dense_by_name.items()}

    def candidate_layer(self, layer_name: str, bits: int, sparsity: float,
                        scheme: str = "semi-structured") -> PlanLayer:
        dense = self._dense_by_name[layer_name]
        return replace(dense, bits=bits, scheme=scheme, sparsity=sparsity)

    def _price(self, layer_name: str, bits: int, sparsity: float,
               scheme: str) -> tuple[float, float]:
        """(latency, energy) of one candidate, memoized by cost signature."""
        key = None
        if self.cache is not None:
            dense = self._dense_by_name[layer_name]
            key = ("device", dense.profile.cache_key, dense.kernel_count,
                   bits, scheme, round(sparsity, 12))
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        candidate = self.candidate_layer(layer_name, bits, sparsity, scheme)
        priced = (self.device.layer_latency(candidate),
                  self.device.layer_energy(candidate))
        if key is not None:
            self.cache.put(key, priced)
        return priced

    def score(self, layer_name: str, sqnr: float, bits: int,
              sparsity: float, scheme: str = "semi-structured") -> float:
        """E_s of applying (bits, sparsity, scheme) to ``layer_name``."""
        latency, energy = self._price(layer_name, bits, sparsity, scheme)
        sqnr_term = min(sqnr_db(sqnr), _SQNR_REFERENCE_DB) \
            / _SQNR_REFERENCE_DB
        latency_gain = self._dense_latency[layer_name] / max(latency, 1e-12)
        energy_gain = self._dense_energy[layer_name] / max(energy, 1e-12)
        latency_term = min(latency_gain, _SPEEDUP_REFERENCE) \
            / _SPEEDUP_REFERENCE
        energy_term = min(energy_gain, _SPEEDUP_REFERENCE) \
            / _SPEEDUP_REFERENCE
        w = self.weights
        return (w.alpha * sqnr_term + w.beta * latency_term
                + w.gamma * energy_term)

    def layer_names(self) -> list[str]:
        return list(self._dense_by_name)
