"""Masked fine-tuning of compressed detectors.

Shared by UPAQ and the baselines: train the pruned model for a few
epochs with the optimizer's prune-mask support so zeroed weights never
regrow, then re-quantize each compressed layer at its selected bitwidth
so deployed weights stay on the integer grid.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.graph import layer_map

from .quantizer import mp_quantizer

__all__ = ["finetune_compressed", "masked_finetune", "requantize"]


def masked_finetune(model, scenes, masks: dict, epochs: int = 3,
                    lr: float = 5e-4) -> list[float]:
    """Fine-tune a Detector3D keeping pruned weights at zero.

    Returns the per-epoch mean losses.
    """
    layers = layer_map(model)
    optimizer = nn.optim.Adam(model.parameters(), lr=lr)
    for layer_name, mask in masks.items():
        if layer_name in layers:
            optimizer.set_mask(layers[layer_name].weight, mask)
    history = []
    for _ in range(epochs):
        losses = [model.train_step(optimizer, scene) for scene in scenes]
        history.append(float(np.mean(losses)))
    return history


def requantize(model, bits_by_layer: dict, masks: dict | None = None,
               per_kernel: bool = False) -> None:
    """Snap each layer's weights back onto its integer grid in place.

    ``per_kernel=True`` uses one scale per k×k kernel (per output row
    for 1×1/linear layers) — matching UPAQ's deployment format; the
    default single-scale form matches the baselines' PTQ/QAT semantics.
    """
    from .quantizer import quantize_per_kernel
    layers = layer_map(model)
    for layer_name, bits in bits_by_layer.items():
        if layer_name not in layers:
            continue
        module = layers[layer_name]
        weights = module.weight.data
        if masks and layer_name in masks:
            weights = weights * masks[layer_name]
        if per_kernel:
            if weights.ndim == 4 and weights.shape[-1] > 1:
                k = weights.shape[-1]
                kernels = weights.reshape(-1, k, k)
                values, _ = quantize_per_kernel(kernels, bits)
                module.weight.data = values.reshape(weights.shape)
            else:
                rows = weights.reshape(weights.shape[0], -1)
                values, _ = quantize_per_kernel(rows, bits)
                module.weight.data = values.reshape(weights.shape)
        else:
            module.weight.data = mp_quantizer(weights, bits).values


def finetune_compressed(report, scenes, epochs: int = 3,
                        lr: float = 5e-4) -> list[float]:
    """Fine-tune a :class:`CompressionReport`'s model, then re-quantize."""
    if epochs <= 0 or not scenes:
        return []
    history = masked_finetune(report.model, scenes, report.masks,
                              epochs=epochs, lr=lr)
    bits_by_layer = {choice.layer: choice.bits for choice in report.choices}
    requantize(report.model, bits_by_layer, report.masks, per_kernel=True)
    return history
