"""The UPAQ compression stage (paper Algorithm 3).

Ties the pipeline together: deep-copy the pretrained model, group layers
into root→leaf sets (Algorithm 1), and for every root layer search
random semi-structured patterns (Algorithm 2) × candidate bitwidths
(Algorithm 6) for the choice with the best on-device efficiency score
(eq. 2), applying the winner to the root and replicating it onto the
group's leaves.  Optionally fine-tunes the pruned model with frozen
masks and re-quantizes.

The candidate search itself runs through
:class:`repro.core.search.SearchEngine`: root layers are packaged into
pure, picklable work units dispatched over a configurable worker pool
(``UPAQConfig.search_workers`` / ``search_backend``) with content-keyed
memoization, and the observed cost (candidates evaluated, cache hit
rates, per-layer wall time) lands in :attr:`CompressionReport.search`.
Results are bit-identical for every worker count and backend — each
layer's pattern pool is seeded from ``(config.seed, crc32(weights))``,
never from scheduling order.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.hardware import (CompressionMeta, annotate_layer,
                            default_devices, lower_to_plan)
from repro.ir import ModelIR, extract_ir
from repro.nn.graph import layer_map
from repro.nn.module import Module

from .config import UPAQConfig
from .efficiency import EfficiencyScorer
from .kernel_compression import KernelCandidate, best_candidate
from .preprocessing import LayerGroups, group_layers
from .search import (LayerSearchStat, LeafSearchTask, MemoCache,
                     RootSearchTask, SearchEngine, SearchJournal,
                     SearchStats, run_leaf_task, run_root_task)

__all__ = ["LayerChoice", "CompressionReport", "UPAQCompressor"]


@dataclass
class LayerChoice:
    """The compression decision recorded for one layer."""

    layer: str
    root: str
    pattern: str
    bits: int
    sparsity: float
    sqnr_db: float
    score: float


@dataclass
class CompressionReport:
    """Everything the compression run produced."""

    model: Module
    choices: list[LayerChoice] = field(default_factory=list)
    masks: dict = field(default_factory=dict)     # layer name → mask array
    groups: LayerGroups | None = None
    compression_ratio: float = 1.0
    search: SearchStats | None = None             # cost of the search
    #: the model's layer-level IR, extracted once and re-annotated with
    #: the final compression outcome — lower it, pack it, or dump it
    ir: ModelIR | None = None

    def choice_for(self, layer_name: str) -> LayerChoice:
        for choice in self.choices:
            if choice.layer == layer_name:
                return choice
        raise KeyError(layer_name)

    @property
    def mean_bits(self) -> float:
        return float(np.mean([c.bits for c in self.choices]))

    @property
    def overall_sparsity(self) -> float:
        total = sum(mask.size for mask in self.masks.values())
        zeros = sum(int((mask == 0).sum()) for mask in self.masks.values())
        return zeros / total if total else 0.0


class UPAQCompressor:
    """UPAQ: semi-structured pattern pruning + mixed-precision quantization.

    Usage::

        compressor = UPAQCompressor(hck_config())
        report = compressor.compress(model, *model.example_inputs())
        compressed = report.model
    """

    def __init__(self, config: UPAQConfig | None = None):
        self.config = config or UPAQConfig()

    # ------------------------------------------------------------------
    def compress(self, model: Module, *example_inputs) -> CompressionReport:
        """Run the full pipeline on a pretrained model (non-destructive)."""
        config = self.config
        started = time.perf_counter()

        compressed = copy.deepcopy(model)          # paper line 1
        layers = layer_map(compressed)

        # One traced forward pass: the IR feeds grouping (Algorithm 1),
        # the cost lowering, and — after compression — the final plan.
        ir = extract_ir(compressed, *example_inputs)

        if config.use_root_groups:
            groups = group_layers(ir)
        else:
            groups = LayerGroups(
                groups={name: [name] for name in layers},
                roots={name: name for name in layers})

        plan = lower_to_plan(ir)
        device = default_devices()[config.device]
        search_cache = MemoCache(config.memo_cache_size)
        device_cache = MemoCache(max(config.memo_cache_size * 8, 1024))
        scorer = EfficiencyScorer(plan, device, config.weights,
                                  cache=device_cache)
        profiled = set(scorer.layer_names())

        journal = SearchJournal(config.search_journal) \
            if config.search_journal else None
        engine = SearchEngine(workers=config.search_workers,
                              backend=config.search_backend,
                              cache=search_cache,
                              task_timeout_s=config.search_timeout_s,
                              max_retries=config.search_retries,
                              retry_backoff_s=config.search_backoff_s,
                              journal=journal)
        report = CompressionReport(model=compressed, groups=groups, ir=ir)
        stats = SearchStats(workers=engine.workers, backend=engine.backend)

        # Phase 1 — search every root layer's candidate grid in parallel.
        eligible = [(root, members) for root, members in groups
                    if root in layers and root in profiled]
        root_tasks = [self._root_task(root, layers[root].weight.data)
                      for root, _ in eligible]
        root_outcomes = engine.map(run_root_task, root_tasks)

        winners: dict[str, KernelCandidate] = {}
        root_stats: dict[str, LayerSearchStat] = {}
        for (root, _members), (result, was_cached) in zip(eligible,
                                                          root_outcomes):
            def score_fn(sqnr, bits, sparsity, _name=root):
                return scorer.score(_name, sqnr=sqnr, bits=bits,
                                    sparsity=sparsity)

            winners[root] = best_candidate(result.candidates,
                                           result.patterns, score_fn)
            root_stats[root] = LayerSearchStat(
                layer=root, role="root", candidates=result.evaluated,
                wall_time_s=0.0 if was_cached else result.wall_time_s,
                cached=was_cached)

        # Phase 2 — replicate each winner onto its leaves, in parallel.
        leaf_tasks = []
        for root, members in eligible:
            winner = winners[root]
            for leaf in members:
                if leaf == root or leaf not in layers:
                    continue
                leaf_tasks.append(LeafSearchTask(
                    name=leaf, root=root,
                    weights=layers[leaf].weight.data,
                    patterns=winner.patterns, bits=winner.bits,
                    tile=config.tile))
        # Key on the *task* name: a leaf whose weights duplicate another
        # leaf's gets the first occurrence's result object back from the
        # engine's dedup, and that object carries the first leaf's name.
        leaf_outcomes = {task.name: (result, was_cached)
                         for task, (result, was_cached)
                         in zip(leaf_tasks,
                                engine.map(run_leaf_task, leaf_tasks))}

        # Apply in group order so the report reads root-then-leaves.
        for root, members in eligible:
            winner = winners[root]
            self._apply(layers[root], root, root, winner, report)
            stats.layers.append(root_stats[root])
            for leaf in members:
                if leaf == root or leaf not in layers:
                    continue
                result, was_cached = leaf_outcomes[leaf]
                self._apply(layers[leaf], leaf, root, result.candidate,
                            report, score=winner.score)
                stats.layers.append(LayerSearchStat(
                    layer=leaf, role="leaf", candidates=result.evaluated,
                    wall_time_s=0.0 if was_cached else result.wall_time_s,
                    cached=was_cached))

        stats.cache_hits = search_cache.hits
        stats.cache_misses = search_cache.misses
        stats.retries = engine.retries
        stats.timeouts = engine.timeouts
        stats.pool_failures = engine.pool_failures
        stats.resumed_groups = engine.resumed
        stats.device_cache_hits = device_cache.hits
        stats.device_cache_misses = device_cache.misses
        stats.wall_time_s = time.perf_counter() - started
        report.search = stats

        # Re-annotate the shared IR with the applied compression and
        # lower the final plan from it — no re-trace, no re-profile.
        final_plan = lower_to_plan(ir.annotate_from(compressed))
        report.compression_ratio = final_plan.compression_ratio
        return report

    # ------------------------------------------------------------------
    def _root_task(self, root: str, weights: np.ndarray) -> RootSearchTask:
        """Package one root layer into a self-contained search task."""
        config = self.config
        if weights.ndim == 4 and weights.shape[-1] > 1:
            path, n_nonzero = "kxk", config.n_nonzero_kxk
        elif config.compress_1x1_layers:
            path, n_nonzero = "tile", config.n_nonzero_1x1
        else:
            # Ablation default: plain per-channel quantization of 1×1s.
            path, n_nonzero = "quant", 0
        return RootSearchTask(
            name=root, weights=weights, path=path, n_nonzero=n_nonzero,
            quant_bits=tuple(config.quant_bits),
            num_patterns=config.num_patterns,
            pattern_types=config.pattern_types, tile=config.tile,
            connectivity_percentile=config.connectivity_percentile,
            base_seed=config.seed)

    def _apply(self, module: Module, layer_name: str, root: str,
               candidate: KernelCandidate, report: CompressionReport,
               score: float | None = None) -> None:
        module.weight.data = candidate.weights.astype(np.float32)
        scheme = "semi-structured" if candidate.patterns else "dense"
        annotate_layer(module, CompressionMeta(bits=candidate.bits,
                                               scheme=scheme))
        report.masks[layer_name] = candidate.mask
        from .quantizer import sqnr_db
        report.choices.append(LayerChoice(
            layer=layer_name, root=root,
            pattern=candidate.pattern_summary,
            bits=candidate.bits,
            sparsity=float((candidate.mask == 0).mean()),
            sqnr_db=sqnr_db(candidate.sqnr),
            score=candidate.score if score is None else score))

    # ------------------------------------------------------------------
    def finetune(self, report: CompressionReport, scenes,
                 epochs: int | None = None,
                 lr: float | None = None) -> CompressionReport:
        """Masked fine-tuning, then re-quantization at the chosen bits.

        Pruned positions stay zero (optimizer masks); after fine-tuning
        every compressed layer is re-quantized to its selected bitwidth,
        so the deployed weights remain on the integer grid.
        """
        from .finetune import finetune_compressed
        finetune_compressed(
            report, scenes,
            epochs=self.config.finetune_epochs if epochs is None else epochs,
            lr=self.config.finetune_lr if lr is None else lr)
        return report
