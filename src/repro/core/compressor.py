"""The UPAQ compression stage (paper Algorithm 3).

Ties the pipeline together: deep-copy the pretrained model, group layers
into root→leaf sets (Algorithm 1), and for every root layer search
random semi-structured patterns (Algorithm 2) × candidate bitwidths
(Algorithm 6) for the choice with the best on-device efficiency score
(eq. 2), applying the winner to the root and replicating it onto the
group's leaves.  Optionally fine-tunes the pruned model with frozen
masks and re-quantizes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.hardware import (CompressionMeta, annotate_layer, compile_model,
                            default_devices, profile_model)
from repro.nn.graph import layer_map
from repro.nn.module import Module

from .config import UPAQConfig
from .efficiency import EfficiencyScorer
from .kernel_compression import (KernelCandidate, apply_patterns,
                                 compress_1x1, compress_kxk)
from .preprocessing import LayerGroups, preprocess_model

__all__ = ["LayerChoice", "CompressionReport", "UPAQCompressor"]


@dataclass
class LayerChoice:
    """The compression decision recorded for one layer."""

    layer: str
    root: str
    pattern: str
    bits: int
    sparsity: float
    sqnr_db: float
    score: float


@dataclass
class CompressionReport:
    """Everything the compression run produced."""

    model: Module
    choices: list[LayerChoice] = field(default_factory=list)
    masks: dict = field(default_factory=dict)     # layer name → mask array
    groups: LayerGroups | None = None
    compression_ratio: float = 1.0

    def choice_for(self, layer_name: str) -> LayerChoice:
        for choice in self.choices:
            if choice.layer == layer_name:
                return choice
        raise KeyError(layer_name)

    @property
    def mean_bits(self) -> float:
        return float(np.mean([c.bits for c in self.choices]))

    @property
    def overall_sparsity(self) -> float:
        total = sum(mask.size for mask in self.masks.values())
        zeros = sum(int((mask == 0).sum()) for mask in self.masks.values())
        return zeros / total if total else 0.0


class UPAQCompressor:
    """UPAQ: semi-structured pattern pruning + mixed-precision quantization.

    Usage::

        compressor = UPAQCompressor(hck_config())
        report = compressor.compress(model, *model.example_inputs())
        compressed = report.model
    """

    def __init__(self, config: UPAQConfig | None = None):
        self.config = config or UPAQConfig()

    # ------------------------------------------------------------------
    def compress(self, model: Module, *example_inputs) -> CompressionReport:
        """Run the full pipeline on a pretrained model (non-destructive)."""
        config = self.config
        rng = np.random.default_rng(config.seed)

        compressed = copy.deepcopy(model)          # paper line 1
        layers = layer_map(compressed)

        if config.use_root_groups:
            groups = preprocess_model(compressed, *example_inputs)
        else:
            groups = LayerGroups(
                groups={name: [name] for name in layers},
                roots={name: name for name in layers})

        profile = profile_model(compressed, *example_inputs)
        plan = compile_model(compressed, *example_inputs, profile=profile)
        device = default_devices()[config.device]
        scorer = EfficiencyScorer(plan, device, config.weights)
        profiled = set(scorer.layer_names())

        report = CompressionReport(model=compressed, groups=groups)

        for root, members in groups:
            if root not in layers or root not in profiled:
                continue
            root_module = layers[root]
            weights = root_module.weight.data

            def score_fn(sqnr, bits, sparsity, _name=root):
                return scorer.score(_name, sqnr=sqnr, bits=bits,
                                    sparsity=sparsity)

            if weights.ndim == 4 and weights.shape[-1] > 1:
                candidate = compress_kxk(
                    weights, config.n_nonzero_kxk, config.quant_bits,
                    score_fn, rng, num_patterns=config.num_patterns,
                    pattern_types=config.pattern_types,
                    connectivity_percentile=config.connectivity_percentile)
            elif config.compress_1x1_layers:
                candidate = compress_1x1(
                    weights, config.n_nonzero_1x1, config.quant_bits,
                    score_fn, rng, tile=config.tile,
                    num_patterns=config.num_patterns,
                    pattern_types=config.pattern_types)
            else:
                # Ablation: plain per-tensor quantization of 1×1 layers.
                candidate = self._quantize_only(weights, config.quant_bits,
                                                score_fn)

            self._apply(root_module, root, root, candidate, report)
            for leaf in members:
                if leaf == root or leaf not in layers:
                    continue
                leaf_module = layers[leaf]
                if candidate.patterns:
                    leaf_candidate = apply_patterns(
                        leaf_module.weight.data, candidate.patterns,
                        candidate.bits, tile=config.tile)
                else:   # root was quantize-only (1×1 ablation path)
                    leaf_candidate = self._quantize_only(
                        leaf_module.weight.data, (candidate.bits,),
                        lambda sqnr, bits, sparsity: sqnr)
                self._apply(leaf_module, leaf, root, leaf_candidate, report,
                            score=candidate.score)

        final_plan = compile_model(compressed, *example_inputs)
        report.compression_ratio = final_plan.compression_ratio
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _quantize_only(weights: np.ndarray, quant_bits, score_fn):
        """Mixed-precision quantization with per-output-channel scales.

        The default treatment of 1×1/linear layers: the paper stresses
        "dynamically adjusting the 1×1 kernel weights" to preserve
        accuracy, which we realize as per-channel scale search over the
        bitwidth range (pattern pruning of 1×1 tiles remains available
        via ``compress_1x1_layers=True``).
        """
        from .quantizer import quantize_per_kernel
        rows = weights.reshape(weights.shape[0], -1)
        best = None
        for bits in quant_bits:
            values, _ = quantize_per_kernel(rows, bits)
            noise_var = float((rows - values).var())
            signal_var = float(rows.var())
            sqnr = signal_var / noise_var if noise_var > 1e-20 \
                else float("inf")
            score = score_fn(sqnr=sqnr, bits=bits, sparsity=0.0)
            if best is None or score > best.score:
                best = KernelCandidate(
                    weights=values.reshape(weights.shape),
                    mask=np.ones_like(weights, dtype=np.float32),
                    bits=bits, sqnr=sqnr, score=score)
        return best

    def _apply(self, module: Module, layer_name: str, root: str,
               candidate: KernelCandidate, report: CompressionReport,
               score: float | None = None) -> None:
        module.weight.data = candidate.weights.astype(np.float32)
        scheme = "semi-structured" if candidate.patterns else "dense"
        annotate_layer(module, CompressionMeta(bits=candidate.bits,
                                               scheme=scheme))
        report.masks[layer_name] = candidate.mask
        from .quantizer import sqnr_db
        report.choices.append(LayerChoice(
            layer=layer_name, root=root,
            pattern=candidate.pattern_summary,
            bits=candidate.bits,
            sparsity=float((candidate.mask == 0).mean()),
            sqnr_db=sqnr_db(candidate.sqnr),
            score=candidate.score if score is None else score))

    # ------------------------------------------------------------------
    def finetune(self, report: CompressionReport, scenes,
                 epochs: int | None = None,
                 lr: float | None = None) -> CompressionReport:
        """Masked fine-tuning, then re-quantization at the chosen bits.

        Pruned positions stay zero (optimizer masks); after fine-tuning
        every compressed layer is re-quantized to its selected bitwidth,
        so the deployed weights remain on the integer grid.
        """
        from .finetune import finetune_compressed
        finetune_compressed(
            report, scenes,
            epochs=self.config.finetune_epochs if epochs is None else epochs,
            lr=self.config.finetune_lr if lr is None else lr)
        return report
