"""Packed storage of compressed models — the deployed artifact.

The compression-ratio column of Table 2 is a storage claim; this module
makes it concrete by actually serializing compressed layers into the
byte format the deployment plan assumes:

* semi-structured layers: one pattern id per kernel, one fp32 scale per
  kernel, and the surviving integer codes bit-packed at the layer's
  bitwidth;
* unstructured layers: 16-bit coordinates + packed codes;
* dense quantized layers: packed codes + a tensor scale.

``pack_model`` → bytes; ``unpack_model`` restores weights exactly (the
codes are lossless given the stored scales), which is asserted by tests
and lets a compressed checkpoint ship as a single binary blob.

Format v4 (see ``docs/ROBUSTNESS.md``) makes the blob *integrity
checked* and *self-describing*: the header carries an optional
JSON-serialized :class:`~repro.ir.ModelIR` section (length-prefixed,
before the manifest) plus a layer **manifest** (name, shape, bits,
scheme, payload length, blake2b-128 payload checksum per layer), and
the whole blob ends in a blake2b-128 trailer checksum.  When an IR is
embedded (``pack_model(model, ir=...)``), the manifest is written in IR
order and :func:`restore_model` returns the IR on its report — a
restored checkpoint can then be re-lowered to an identical
:class:`~repro.hardware.deploy.CompiledPlan` without re-tracing the
original float model.  ``unpack_model`` detects any single-byte
corruption before touching the target model, rejects blobs packed from
a different architecture by *name and shape* (not just layer count),
and raises typed errors — :class:`BlobCorruptionError`,
:class:`BlobVersionError`, :class:`BlobArchitectureError` — instead of
silently misreading.  A ``strict=False`` mode restores every layer
whose payload checksum still verifies and reports the bad ones
(:func:`restore_model`).
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.deploy import get_annotation
from repro.ir import ModelIR
from repro.nn.graph import layer_map
from repro.nn.module import Module

__all__ = ["pack_bits", "unpack_bits", "pack_layer", "unpack_layer",
           "pack_model", "unpack_model", "restore_model", "RestoreReport",
           "pack_ladder", "packed_size_report", "BlobError",
           "BlobCorruptionError", "BlobVersionError",
           "BlobArchitectureError"]

_MAGIC = b"UPAQ"
_VERSION = 4
_CHECKSUM_BYTES = 16
_SCHEME_CODES = {"dense": 0, "unstructured": 1, "structured": 2,
                 "semi-structured": 3}
_SCHEME_NAMES = {code: name for name, code in _SCHEME_CODES.items()}


class BlobError(ValueError):
    """Base class for every packed-blob failure."""


class BlobCorruptionError(BlobError):
    """The blob's bytes fail an integrity check (checksum, magic, …)."""


class BlobVersionError(BlobCorruptionError):
    """The version byte is not one this reader supports.

    Subclasses :class:`BlobCorruptionError`: on a checksummed blob an
    unexpected version byte is indistinguishable from a bit flip in the
    header, and callers guarding against corruption want to catch both.
    """


class BlobArchitectureError(BlobError):
    """The blob was packed from a different architecture (names/shapes)."""


def _checksum(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_CHECKSUM_BYTES).digest()


def _read_exact(buffer: io.BytesIO, size: int, what: str) -> bytes:
    """Read exactly ``size`` bytes or raise a *typed* corruption error.

    Every reader in this module goes through here so a truncated or
    empty blob surfaces as :class:`BlobCorruptionError` instead of a
    bare ``struct.error`` / ``IndexError`` escaping to the caller.
    """
    data = buffer.read(size)
    if len(data) != size:
        raise BlobCorruptionError(
            f"blob truncated reading {what}: wanted {size} bytes, "
            f"got {len(data)}")
    return data


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack signed integer codes into a little-endian bitstream."""
    if bits < 1 or bits > 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    offset = 1 << (bits - 1)
    unsigned = (np.asarray(codes, dtype=np.int64) + offset)
    if unsigned.min(initial=0) < 0 or \
            unsigned.max(initial=0) >= (1 << bits):
        raise ValueError("codes out of range for bit width")
    stream = bytearray()
    accumulator = 0
    filled = 0
    for value in unsigned.reshape(-1):
        accumulator |= int(value) << filled
        filled += bits
        while filled >= 8:
            stream.append(accumulator & 0xFF)
            accumulator >>= 8
            filled -= 8
    if filled:
        stream.append(accumulator & 0xFF)
    return bytes(stream)


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Raises :class:`BlobCorruptionError` when the bitstream is too short
    for ``count`` codes — truncation is a data-integrity failure, not an
    index bug.
    """
    offset = 1 << (bits - 1)
    mask = (1 << bits) - 1
    values = np.empty(count, dtype=np.int64)
    accumulator = 0
    filled = 0
    position = 0
    for i in range(count):
        while filled < bits:
            if position >= len(data):
                raise BlobCorruptionError(
                    f"bitstream truncated: {len(data)} bytes hold fewer "
                    f"than {count} codes at {bits} bits")
            accumulator |= data[position] << filled
            position += 1
            filled += 8
        values[i] = accumulator & mask
        accumulator >>= bits
        filled -= bits
    return values - offset


def _write_array(buffer: io.BytesIO, array: np.ndarray) -> None:
    raw = np.ascontiguousarray(array).tobytes()
    buffer.write(struct.pack("<I", len(raw)))
    buffer.write(raw)


def _read_array(buffer: io.BytesIO, dtype, count: int) -> np.ndarray:
    size = struct.unpack("<I", _read_exact(buffer, 4, "array length"))[0]
    raw = _read_exact(buffer, size, "array data")
    try:
        return np.frombuffer(raw, dtype=dtype, count=count).copy()
    except ValueError as error:
        raise BlobCorruptionError(
            f"array section inconsistent with its declared length: "
            f"{error}") from error


def pack_layer(weights: np.ndarray, bits: int, scheme: str) -> bytes:
    """Serialize one layer's compressed weights.

    Quantization scales are recovered from the weights themselves: per
    kernel for semi-structured (matching how UPAQ quantizes), per tensor
    otherwise.
    """
    buffer = io.BytesIO()
    shape = weights.shape
    buffer.write(struct.pack("<B", len(shape)))
    for dim in shape:
        buffer.write(struct.pack("<I", dim))
    buffer.write(struct.pack("<BB", _SCHEME_CODES[scheme], bits))

    flat = weights.reshape(-1).astype(np.float64)
    if scheme in ("unstructured",):
        nnz_idx = np.nonzero(flat)[0]
        values = flat[nnz_idx]
        max_code = 2 ** (bits - 1) - 1
        alpha = np.abs(values).max() if len(values) else 1.0
        scale = alpha / max_code if alpha > 0 else 1.0
        codes = np.clip(np.round(values / scale), -max_code, max_code)
        buffer.write(struct.pack("<Id", len(nnz_idx), scale))
        _write_array(buffer, nnz_idx.astype(np.uint32))
        packed = pack_bits(codes, bits)
        buffer.write(struct.pack("<I", len(packed)))
        buffer.write(packed)
    else:
        # Dense / structured / semi-structured: per-kernel scales plus a
        # *mask pool* — the distinct zero-patterns present in the layer
        # (for UPAQ these are the chosen Algorithm 2 patterns).  Each
        # kernel stores one pool index and only its surviving codes.
        # 1×1 convs and linears group per output channel instead, which
        # matches the per-channel scales of the quantize-only path.
        kernel_size = shape[-1] * shape[-2] if len(shape) >= 2 else flat.size
        if kernel_size == 1 and len(shape) >= 2:
            kernel_size = flat.size // shape[0]
        kernels = flat.reshape(-1, kernel_size)
        masks = (kernels != 0)
        pool, inverse = np.unique(masks, axis=0, return_inverse=True)
        if len(pool) > 255:      # degenerate sparsity; fall back to dense
            pool = np.ones((1, kernel_size), dtype=bool)
            inverse = np.zeros(len(kernels), dtype=np.int64)
        max_code = 2 ** (bits - 1) - 1
        alphas = np.abs(kernels).max(axis=1)
        scales = np.where(alphas > 0, alphas / max_code, 1.0)
        codes = np.clip(np.round(kernels / scales[:, None]),
                        -max_code, max_code).astype(np.int64)
        kept = pool[inverse]     # (N, ks) boolean keep-mask per kernel
        surviving = codes[kept]  # kernel-major, ascending positions

        buffer.write(struct.pack("<IIB", kernels.shape[0], kernel_size,
                                 len(pool)))
        _write_array(buffer, np.packbits(pool, axis=None))
        _write_array(buffer, inverse.astype(np.uint8))
        _write_array(buffer, scales.astype(np.float32))
        buffer.write(struct.pack("<I", len(surviving)))
        packed = pack_bits(surviving, bits)
        buffer.write(struct.pack("<I", len(packed)))
        buffer.write(packed)
    return buffer.getvalue()


def unpack_layer(data: bytes) -> tuple[np.ndarray, int, str]:
    """Inverse of :func:`pack_layer`: returns (weights, bits, scheme).

    Empty or truncated payloads raise :class:`BlobCorruptionError` —
    callers never see ``struct.error`` / ``IndexError`` from a short
    read.
    """
    buffer = io.BytesIO(data)
    ndim = struct.unpack("<B", _read_exact(buffer, 1, "layer rank"))[0]
    shape = tuple(
        struct.unpack("<I", _read_exact(buffer, 4, "layer shape"))[0]
        for _ in range(ndim))
    scheme_code, bits = struct.unpack(
        "<BB", _read_exact(buffer, 2, "layer scheme/bits"))
    if scheme_code not in _SCHEME_NAMES:
        raise BlobCorruptionError(
            f"layer payload declares unknown scheme {scheme_code}")
    scheme = _SCHEME_NAMES[scheme_code]
    total = int(np.prod(shape))

    if scheme == "unstructured":
        nnz, scale = struct.unpack(
            "<Id", _read_exact(buffer, 12, "sparse header"))
        indices = _read_array(buffer, np.uint32, nnz)
        packed_len = struct.unpack(
            "<I", _read_exact(buffer, 4, "code stream length"))[0]
        codes = unpack_bits(_read_exact(buffer, packed_len, "code stream"),
                            bits, nnz)
        flat = np.zeros(total, dtype=np.float32)
        flat[indices] = (codes * scale).astype(np.float32)
    else:
        n_kernels, kernel_size, pool_size = struct.unpack(
            "<IIB", _read_exact(buffer, 9, "kernel header"))
        pool_bits = struct.unpack(
            "<I", _read_exact(buffer, 4, "mask pool length"))[0]
        pool_raw = np.frombuffer(
            _read_exact(buffer, pool_bits, "mask pool"), dtype=np.uint8)
        unpacked = np.unpackbits(pool_raw)
        if unpacked.size < pool_size * kernel_size:
            raise BlobCorruptionError(
                "mask pool shorter than its declared dimensions")
        pool = unpacked[:pool_size * kernel_size] \
            .reshape(pool_size, kernel_size).astype(bool)
        inverse = _read_array(buffer, np.uint8, n_kernels) \
            .astype(np.int64)
        scales = _read_array(buffer, np.float32, n_kernels)
        n_surviving = struct.unpack(
            "<I", _read_exact(buffer, 4, "surviving-code count"))[0]
        packed_len = struct.unpack(
            "<I", _read_exact(buffer, 4, "code stream length"))[0]
        codes = unpack_bits(_read_exact(buffer, packed_len, "code stream"),
                            bits, n_surviving)
        kernels = np.zeros((n_kernels, kernel_size), dtype=np.float64)
        kept = pool[inverse]
        kernels[kept] = codes
        kernels *= scales[:, None].astype(np.float64)
        flat = kernels.reshape(-1).astype(np.float32)
    return flat.reshape(shape), bits, scheme


# ----------------------------------------------------------------------
# Model-level blob: manifest + payloads + trailer checksum
# ----------------------------------------------------------------------
@dataclass
class _ManifestEntry:
    name: str
    shape: tuple
    bits: int
    scheme: str
    payload_len: int
    checksum: bytes


@dataclass
class RestoreReport:
    """Outcome of :func:`restore_model` — what landed and what did not."""

    model: Module
    version: int
    restored: list = field(default_factory=list)    # layer names, blob order
    skipped: dict = field(default_factory=dict)     # layer name → reason
    #: the IR embedded at pack time (``pack_model(model, ir=...)``), or
    #: None for blobs packed without one — re-lower it with
    #: :func:`repro.hardware.deploy.lower_to_plan`, no re-trace needed
    ir: ModelIR | None = None

    @property
    def complete(self) -> bool:
        return not self.skipped


def _encode_ir(ir: ModelIR | None) -> bytes:
    """Deterministic JSON bytes of the IR (empty when none embedded)."""
    if ir is None:
        return b""
    return json.dumps(ir.to_json(), sort_keys=True,
                      separators=(",", ":")).encode()


def pack_model(model: Module, ir: ModelIR | None = None) -> bytes:
    """Serialize every kernel layer of a compressed model (format v4).

    With ``ir`` (the model's annotated :class:`~repro.ir.ModelIR`,
    e.g. ``report.ir`` from a compression run) the blob embeds the IR
    and writes the manifest in IR order, making the checkpoint
    self-describing: :func:`restore_model` hands the IR back and the
    deployment plan can be re-lowered without the original float model.
    """
    manifest = io.BytesIO()
    payload = io.BytesIO()
    layers = layer_map(model)
    order = list(layers)
    if ir is not None:
        in_ir = [name for name in ir.layer_names if name in layers]
        order = in_ir + [name for name in order if name not in set(in_ir)]
    for name in order:
        module = layers[name]
        meta = get_annotation(module)
        blob = pack_layer(module.weight.data, meta.bits, meta.scheme)
        encoded_name = name.encode()
        shape = module.weight.data.shape
        manifest.write(struct.pack("<H", len(encoded_name)))
        manifest.write(encoded_name)
        manifest.write(struct.pack("<B", len(shape)))
        for dim in shape:
            manifest.write(struct.pack("<I", dim))
        manifest.write(struct.pack("<BBI", meta.bits,
                                   _SCHEME_CODES[meta.scheme], len(blob)))
        manifest.write(_checksum(blob))
        payload.write(blob)
    ir_bytes = _encode_ir(ir)
    body = (_MAGIC + struct.pack("<BI", _VERSION, len(layers))
            + struct.pack("<I", len(ir_bytes)) + ir_bytes
            + manifest.getvalue() + payload.getvalue())
    return body + _checksum(body)


def pack_ladder(rungs) -> list:
    """Pack every rung of a degradation ladder into blob-v4 bytes.

    ``rungs`` is any iterable of rung-shaped objects with ``name``,
    ``model`` and ``ir`` attributes (duck-typed — the runtime's
    :class:`~repro.runtime.engine.LadderRung` qualifies without this
    module importing the runtime).  Each blob embeds its rung's IR, so
    the receiving side (a serving replica spec rebuilding the ladder in
    a worker process) restores with zero re-trace; a rung *without* an
    IR raises :class:`ValueError` — extract it first, or the restored
    ladder would silently trace on every swap.
    """
    blobs = []
    for rung in rungs:
        if rung.ir is None:
            raise ValueError(
                f"rung {rung.name!r} has no extracted ModelIR — a packed "
                f"ladder must round-trip every rung's IR so restores "
                f"never re-trace")
        blobs.append(pack_model(rung.model, ir=rung.ir))
    return blobs


def _parse_manifest(buffer: io.BytesIO, count: int) -> list[_ManifestEntry]:
    entries = []
    for _ in range(count):
        name_len = struct.unpack(
            "<H", _read_exact(buffer, 2, "manifest name length"))[0]
        name = _read_exact(buffer, name_len, "manifest name").decode()
        ndim = struct.unpack(
            "<B", _read_exact(buffer, 1, "manifest rank"))[0]
        shape = tuple(
            struct.unpack("<I", _read_exact(buffer, 4, "manifest shape"))[0]
            for _ in range(ndim))
        bits, scheme_code, payload_len = struct.unpack(
            "<BBI", _read_exact(buffer, 6, "manifest layer header"))
        if scheme_code not in _SCHEME_NAMES:
            raise BlobCorruptionError(
                f"layer {name!r} declares unknown scheme {scheme_code}")
        checksum = buffer.read(_CHECKSUM_BYTES)
        if len(checksum) != _CHECKSUM_BYTES:
            raise BlobCorruptionError("truncated layer manifest")
        entries.append(_ManifestEntry(name=name, shape=shape, bits=bits,
                                      scheme=_SCHEME_NAMES[scheme_code],
                                      payload_len=payload_len,
                                      checksum=checksum))
    return entries


def restore_model(data: bytes, model: Module,
                  strict: bool = True) -> RestoreReport:
    """Restore a packed blob into ``model``, verifying integrity first.

    Check order: magic → version → trailer checksum (strict mode) →
    embedded IR section → layer manifest vs the model's architecture →
    per-layer payload checksums.  With ``strict=True`` (the default)
    any failed check raises before a single weight is touched; with
    ``strict=False`` layers whose payload checksum still verifies are
    restored and the bad ones are reported in
    :attr:`RestoreReport.skipped`.  Architecture mismatches raise in
    both modes — restoring *some* layers of the wrong model is never
    useful.
    """
    header_len = len(_MAGIC) + 5
    if data[:len(_MAGIC)] != _MAGIC:
        raise BlobCorruptionError("not a UPAQ packed model")
    if len(data) < header_len + 4 + _CHECKSUM_BYTES:
        raise BlobCorruptionError(
            f"blob truncated: {len(data)} bytes is smaller than the "
            f"fixed header and trailer")
    version, count = struct.unpack("<BI", data[len(_MAGIC):header_len])
    if version != _VERSION:
        raise BlobVersionError(
            f"unsupported pack version {version} (this reader handles "
            f"version {_VERSION})")
    body, trailer = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
    blob_ok = _checksum(body) == trailer
    if strict and not blob_ok:
        raise BlobCorruptionError(
            "packed blob failed its trailer checksum — at least one byte "
            "is corrupt")

    buffer = io.BytesIO(body[header_len:])
    try:
        ir_len = struct.unpack("<I", buffer.read(4))[0]
        ir_bytes = buffer.read(ir_len)
        if len(ir_bytes) != ir_len:
            raise BlobCorruptionError("truncated IR section")
        embedded_ir = ModelIR.from_json(json.loads(ir_bytes.decode())) \
            if ir_bytes else None
        entries = _parse_manifest(buffer, count)
        payloads = [buffer.read(entry.payload_len) for entry in entries]
    except BlobCorruptionError:
        raise
    except Exception as error:
        raise BlobCorruptionError(
            f"malformed blob manifest: {error}") from error

    # Architecture gate: every packed layer must exist, by name, with the
    # recorded shape — and the model must not expect layers the blob
    # lacks.  This rejects a blob from a different architecture even
    # when layer counts coincide.
    layers = layer_map(model)
    manifest_names = [entry.name for entry in entries]
    missing = [name for name in manifest_names if name not in layers]
    if missing:
        raise BlobArchitectureError(
            f"packed layer {missing[0]!r} missing from model — blob was "
            f"packed from a different architecture")
    extra = sorted(set(layers) - set(manifest_names))
    if extra:
        raise BlobArchitectureError(
            f"model layer {extra[0]!r} absent from the blob manifest — "
            f"blob was packed from a different architecture")
    for entry in entries:
        if layers[entry.name].weight.data.shape != entry.shape:
            raise BlobArchitectureError(
                f"shape mismatch restoring {entry.name!r}: blob has "
                f"{entry.shape}, model has "
                f"{layers[entry.name].weight.data.shape}")

    report = RestoreReport(model=model, version=version, ir=embedded_ir)
    from repro.hardware.deploy import CompressionMeta, annotate_layer
    for entry, payload in zip(entries, payloads):
        if len(payload) != entry.payload_len or \
                _checksum(payload) != entry.checksum:
            message = (f"layer {entry.name!r} payload failed its "
                       f"integrity checksum")
            if strict:
                raise BlobCorruptionError(message)
            report.skipped[entry.name] = message
            continue
        try:
            weights, bits, scheme = unpack_layer(payload)
        except Exception as error:
            message = f"layer {entry.name!r} payload is malformed: {error}"
            if strict:
                raise BlobCorruptionError(message) from error
            report.skipped[entry.name] = message
            continue
        if weights.shape != entry.shape:
            raise BlobArchitectureError(
                f"shape mismatch restoring {entry.name!r}")
        layers[entry.name].weight.data = weights
        # Re-attach the compression metadata so the device models price
        # the restored model the same as the one that was packed.
        annotate_layer(layers[entry.name],
                       CompressionMeta(bits=bits, scheme=scheme))
        report.restored.append(entry.name)
    return report


def unpack_model(data: bytes, model: Module,
                 strict: bool = True) -> Module:
    """Restore packed weights into a same-architecture model in place.

    Thin wrapper over :func:`restore_model`; use that directly when the
    caller needs the restored/skipped layer report of ``strict=False``.
    """
    return restore_model(data, model, strict=strict).model


def packed_size_report(model: Module) -> dict:
    """Measured bytes: packed blob vs dense fp32, per layer and total."""
    layers = layer_map(model)
    report = {"layers": {}, "packed_bytes": 0, "dense_bytes": 0}
    for name, module in layers.items():
        meta = get_annotation(module)
        blob = pack_layer(module.weight.data, meta.bits, meta.scheme)
        dense = module.weight.data.size * 4
        report["layers"][name] = {"packed": len(blob), "dense": dense}
        report["packed_bytes"] += len(blob)
        report["dense_bytes"] += dense
    report["measured_ratio"] = (report["dense_bytes"]
                                / max(report["packed_bytes"], 1))
    return report
