"""Packed storage of compressed models — the deployed artifact.

The compression-ratio column of Table 2 is a storage claim; this module
makes it concrete by actually serializing compressed layers into the
byte format the deployment plan assumes:

* semi-structured layers: one pattern id per kernel, one fp32 scale per
  kernel, and the surviving integer codes bit-packed at the layer's
  bitwidth;
* unstructured layers: 16-bit coordinates + packed codes;
* dense quantized layers: packed codes + a tensor scale.

``pack_model`` → bytes; ``unpack_model`` restores weights exactly (the
codes are lossless given the stored scales), which is asserted by tests
and lets a compressed checkpoint ship as a single binary blob.
"""

from __future__ import annotations

import io
import struct

import numpy as np

from repro.hardware.deploy import get_annotation
from repro.nn.graph import layer_map
from repro.nn.module import Module

__all__ = ["pack_bits", "unpack_bits", "pack_layer", "unpack_layer",
           "pack_model", "unpack_model", "packed_size_report"]

_MAGIC = b"UPAQ"
_VERSION = 2


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack signed integer codes into a little-endian bitstream."""
    if bits < 1 or bits > 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    offset = 1 << (bits - 1)
    unsigned = (np.asarray(codes, dtype=np.int64) + offset)
    if unsigned.min(initial=0) < 0 or \
            unsigned.max(initial=0) >= (1 << bits):
        raise ValueError("codes out of range for bit width")
    stream = bytearray()
    accumulator = 0
    filled = 0
    for value in unsigned.reshape(-1):
        accumulator |= int(value) << filled
        filled += bits
        while filled >= 8:
            stream.append(accumulator & 0xFF)
            accumulator >>= 8
            filled -= 8
    if filled:
        stream.append(accumulator & 0xFF)
    return bytes(stream)


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    offset = 1 << (bits - 1)
    mask = (1 << bits) - 1
    values = np.empty(count, dtype=np.int64)
    accumulator = 0
    filled = 0
    position = 0
    for i in range(count):
        while filled < bits:
            accumulator |= data[position] << filled
            position += 1
            filled += 8
        values[i] = accumulator & mask
        accumulator >>= bits
        filled -= bits
    return values - offset


def _write_array(buffer: io.BytesIO, array: np.ndarray) -> None:
    raw = np.ascontiguousarray(array).tobytes()
    buffer.write(struct.pack("<I", len(raw)))
    buffer.write(raw)


def _read_array(buffer: io.BytesIO, dtype, count: int) -> np.ndarray:
    size = struct.unpack("<I", buffer.read(4))[0]
    return np.frombuffer(buffer.read(size), dtype=dtype, count=count).copy()


def pack_layer(weights: np.ndarray, bits: int, scheme: str) -> bytes:
    """Serialize one layer's compressed weights.

    Quantization scales are recovered from the weights themselves: per
    kernel for semi-structured (matching how UPAQ quantizes), per tensor
    otherwise.
    """
    buffer = io.BytesIO()
    shape = weights.shape
    buffer.write(struct.pack("<B", len(shape)))
    for dim in shape:
        buffer.write(struct.pack("<I", dim))
    scheme_code = {"dense": 0, "unstructured": 1, "structured": 2,
                   "semi-structured": 3}[scheme]
    buffer.write(struct.pack("<BB", scheme_code, bits))

    flat = weights.reshape(-1).astype(np.float64)
    if scheme in ("unstructured",):
        nnz_idx = np.nonzero(flat)[0]
        values = flat[nnz_idx]
        max_code = 2 ** (bits - 1) - 1
        alpha = np.abs(values).max() if len(values) else 1.0
        scale = alpha / max_code if alpha > 0 else 1.0
        codes = np.clip(np.round(values / scale), -max_code, max_code)
        buffer.write(struct.pack("<Id", len(nnz_idx), scale))
        _write_array(buffer, nnz_idx.astype(np.uint32))
        packed = pack_bits(codes, bits)
        buffer.write(struct.pack("<I", len(packed)))
        buffer.write(packed)
    else:
        # Dense / structured / semi-structured: per-kernel scales plus a
        # *mask pool* — the distinct zero-patterns present in the layer
        # (for UPAQ these are the chosen Algorithm 2 patterns).  Each
        # kernel stores one pool index and only its surviving codes.
        # 1×1 convs and linears group per output channel instead, which
        # matches the per-channel scales of the quantize-only path.
        kernel_size = shape[-1] * shape[-2] if len(shape) >= 2 else flat.size
        if kernel_size == 1 and len(shape) >= 2:
            kernel_size = flat.size // shape[0]
        kernels = flat.reshape(-1, kernel_size)
        masks = (kernels != 0)
        pool, inverse = np.unique(masks, axis=0, return_inverse=True)
        if len(pool) > 255:      # degenerate sparsity; fall back to dense
            pool = np.ones((1, kernel_size), dtype=bool)
            inverse = np.zeros(len(kernels), dtype=np.int64)
        max_code = 2 ** (bits - 1) - 1
        alphas = np.abs(kernels).max(axis=1)
        scales = np.where(alphas > 0, alphas / max_code, 1.0)
        codes = np.clip(np.round(kernels / scales[:, None]),
                        -max_code, max_code).astype(np.int64)
        kept = pool[inverse]     # (N, ks) boolean keep-mask per kernel
        surviving = codes[kept]  # kernel-major, ascending positions

        buffer.write(struct.pack("<IIB", kernels.shape[0], kernel_size,
                                 len(pool)))
        _write_array(buffer, np.packbits(pool, axis=None))
        _write_array(buffer, inverse.astype(np.uint8))
        _write_array(buffer, scales.astype(np.float32))
        buffer.write(struct.pack("<I", len(surviving)))
        packed = pack_bits(surviving, bits)
        buffer.write(struct.pack("<I", len(packed)))
        buffer.write(packed)
    return buffer.getvalue()


def unpack_layer(data: bytes) -> tuple[np.ndarray, int, str]:
    """Inverse of :func:`pack_layer`: returns (weights, bits, scheme)."""
    buffer = io.BytesIO(data)
    ndim = struct.unpack("<B", buffer.read(1))[0]
    shape = tuple(struct.unpack("<I", buffer.read(4))[0]
                  for _ in range(ndim))
    scheme_code, bits = struct.unpack("<BB", buffer.read(2))
    scheme = {0: "dense", 1: "unstructured", 2: "structured",
              3: "semi-structured"}[scheme_code]
    total = int(np.prod(shape))

    if scheme == "unstructured":
        nnz, scale = struct.unpack("<Id", buffer.read(12))
        indices = _read_array(buffer, np.uint32, nnz)
        packed_len = struct.unpack("<I", buffer.read(4))[0]
        codes = unpack_bits(buffer.read(packed_len), bits, nnz)
        flat = np.zeros(total, dtype=np.float32)
        flat[indices] = (codes * scale).astype(np.float32)
    else:
        n_kernels, kernel_size, pool_size = struct.unpack(
            "<IIB", buffer.read(9))
        pool_bits = struct.unpack("<I", buffer.read(4))[0]
        pool_raw = np.frombuffer(buffer.read(pool_bits), dtype=np.uint8)
        pool = np.unpackbits(pool_raw)[:pool_size * kernel_size] \
            .reshape(pool_size, kernel_size).astype(bool)
        inverse = _read_array(buffer, np.uint8, n_kernels) \
            .astype(np.int64)
        scales = _read_array(buffer, np.float32, n_kernels)
        n_surviving = struct.unpack("<I", buffer.read(4))[0]
        packed_len = struct.unpack("<I", buffer.read(4))[0]
        codes = unpack_bits(buffer.read(packed_len), bits, n_surviving)
        kernels = np.zeros((n_kernels, kernel_size), dtype=np.float64)
        kept = pool[inverse]
        kernels[kept] = codes
        kernels *= scales[:, None].astype(np.float64)
        flat = kernels.reshape(-1).astype(np.float32)
    return flat.reshape(shape), bits, scheme


def pack_model(model: Module) -> bytes:
    """Serialize every kernel layer of a compressed model."""
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<B", _VERSION))
    layers = layer_map(model)
    buffer.write(struct.pack("<I", len(layers)))
    for name, module in layers.items():
        meta = get_annotation(module)
        encoded_name = name.encode()
        buffer.write(struct.pack("<H", len(encoded_name)))
        buffer.write(encoded_name)
        blob = pack_layer(module.weight.data, meta.bits, meta.scheme)
        buffer.write(struct.pack("<I", len(blob)))
        buffer.write(blob)
    return buffer.getvalue()


def unpack_model(data: bytes, model: Module) -> Module:
    """Restore packed weights into a same-architecture model in place."""
    buffer = io.BytesIO(data)
    if buffer.read(4) != _MAGIC:
        raise ValueError("not a UPAQ packed model")
    version = struct.unpack("<B", buffer.read(1))[0]
    if version != _VERSION:
        raise ValueError(f"unsupported pack version {version}")
    layers = layer_map(model)
    count = struct.unpack("<I", buffer.read(4))[0]
    for _ in range(count):
        name_len = struct.unpack("<H", buffer.read(2))[0]
        name = buffer.read(name_len).decode()
        blob_len = struct.unpack("<I", buffer.read(4))[0]
        weights, bits, scheme = unpack_layer(buffer.read(blob_len))
        if name not in layers:
            raise KeyError(f"packed layer {name!r} missing from model")
        if layers[name].weight.data.shape != weights.shape:
            raise ValueError(f"shape mismatch restoring {name!r}")
        layers[name].weight.data = weights
        # Re-attach the compression metadata so the device models price
        # the restored model the same as the one that was packed.
        from repro.hardware.deploy import CompressionMeta, annotate_layer
        annotate_layer(layers[name], CompressionMeta(bits=bits,
                                                     scheme=scheme))
    return model


def packed_size_report(model: Module) -> dict:
    """Measured bytes: packed blob vs dense fp32, per layer and total."""
    layers = layer_map(model)
    report = {"layers": {}, "packed_bytes": 0, "dense_bytes": 0}
    for name, module in layers.items():
        meta = get_annotation(module)
        blob = pack_layer(module.weight.data, meta.bits, meta.scheme)
        dense = module.weight.data.size * 4
        report["layers"][name] = {"packed": len(blob), "dense": dense}
        report["packed_bytes"] += len(blob)
        report["dense_bytes"] += dense
    report["measured_ratio"] = (report["dense_bytes"]
                                / max(report["packed_bytes"], 1))
    return report
