"""``repro.core`` — the UPAQ compression framework itself.

The paper's contribution: preprocessing (Algorithm 1, root→leaf layer
grouping), randomized semi-structured pattern generation (Algorithm 2),
the compression stage orchestrator (Algorithm 3), k×k and 1×1 kernel
compression (Algorithms 4/5), the mixed-precision symmetric quantizer
(Algorithm 6), and the on-device efficiency score (eq. 2) with the
paper's HCK/LCK presets.
"""

from .compressor import CompressionReport, LayerChoice, UPAQCompressor
from .config import UPAQConfig, hck_config, lck_config
from .efficiency import EfficiencyScorer, EfficiencyWeights
from .finetune import finetune_compressed, masked_finetune, requantize
from .kernel_compression import (BitCandidate, KernelCandidate,
                                 apply_patterns, best_candidate,
                                 compress_1x1, compress_kxk, evaluate_1x1,
                                 evaluate_kxk, evaluate_quant,
                                 quantize_only)
from .search import (LayerSearchStat, LeafSearchTask, MemoCache,
                     RootSearchTask, SearchEngine, SearchJournal,
                     SearchStats, SearchTaskError, content_digest,
                     content_key, resolve_backend, run_leaf_task,
                     run_root_task)
from .packing import (BlobArchitectureError, BlobCorruptionError, BlobError,
                      BlobVersionError, RestoreReport, pack_bits,
                      pack_layer, pack_model, packed_size_report,
                      restore_model, unpack_bits, unpack_layer,
                      unpack_model)
from .archive import (ArchiveCorruptionError, ArchiveEntry, ArchiveError,
                      ArchiveReader, ArchiveVersionError, ArchiveWriter,
                      DedupStats, SalvageReport, pack_archive, split_blob)
from .sensitivity import (LayerSensitivity, SensitivityProfile,
                          analyze_sensitivity, suggest_bit_allocation)
from .patterns import (KernelPattern, PATTERN_TYPES, generate_pattern,
                       generate_patterns, pattern_mask, pool_signature)
from .distill import DistillConfig, distill_finetune
from .preprocessing import (LayerGroups, find_root, group_layers,
                            preprocess_model)
from .structured import channel_prune_mask, filter_prune_mask
from .quantizer import (QuantResult, mp_quantizer, quantize_per_kernel,
                        quantize_to_int, sqnr_db)

__all__ = [
    "UPAQCompressor", "CompressionReport", "LayerChoice",
    "UPAQConfig", "hck_config", "lck_config",
    "EfficiencyScorer", "EfficiencyWeights",
    "KernelPattern", "PATTERN_TYPES", "generate_pattern",
    "generate_patterns", "pattern_mask", "pool_signature",
    "KernelCandidate", "BitCandidate", "compress_kxk", "compress_1x1",
    "apply_patterns", "evaluate_kxk", "evaluate_1x1", "evaluate_quant",
    "quantize_only", "best_candidate",
    "MemoCache", "SearchEngine", "SearchStats", "LayerSearchStat",
    "SearchJournal", "SearchTaskError",
    "RootSearchTask", "LeafSearchTask", "run_root_task", "run_leaf_task",
    "content_digest", "content_key", "resolve_backend",
    "pack_bits", "unpack_bits", "pack_layer", "unpack_layer",
    "pack_model", "unpack_model", "restore_model", "RestoreReport",
    "packed_size_report", "BlobError", "BlobCorruptionError",
    "BlobVersionError", "BlobArchitectureError",
    "ArchiveError", "ArchiveCorruptionError", "ArchiveVersionError",
    "ArchiveEntry", "ArchiveWriter", "ArchiveReader", "DedupStats",
    "SalvageReport", "pack_archive", "split_blob",
    "LayerSensitivity", "SensitivityProfile", "analyze_sensitivity",
    "suggest_bit_allocation",
    "LayerGroups", "preprocess_model", "group_layers", "find_root",
    "QuantResult", "mp_quantizer", "quantize_to_int", "sqnr_db",
    "quantize_per_kernel",
    "finetune_compressed", "masked_finetune", "requantize",
    "DistillConfig", "distill_finetune",
    "filter_prune_mask", "channel_prune_mask",
]
