"""UPAQ kernel compression (paper Algorithms 4 and 5).

``compress_kxk`` compresses a layer of k×k kernels *kernel-wise*: a pool
of random semi-structured patterns (Algorithm 2) is generated for the
layer, and every kernel picks the pattern that minimizes its combined
pruning + quantization error — the paper's "adaptive kernel mask
selection that accounts for quantization noise", its stated improvement
over R-TOSS's plain L2 ranking.  The layer's bitwidth is then chosen by
sweeping ``quant_bits`` and keeping the best efficiency score (eq. 2).

``compress_1x1`` first lifts a 1×1/linear layer's weights into k×k
tiles (the paper's 1×1→k×k transformation), applies the same kernel-wise
machinery to the tiles, and flattens the result back.

``apply_patterns`` replicates a root layer's decision onto its leaf
layers: the leaves reuse the root's pattern pool and bitwidth, with each
leaf kernel again picking its best mask from that pool (Algorithm 3
lines 9/12).

The heavy lifting is factored into *pure* evaluation functions
(``evaluate_kxk``, ``evaluate_1x1``, ``evaluate_quant``) that map
``(weights, pattern pool, bitwidths)`` to a list of :class:`BitCandidate`
without touching any scorer or random state.  The parallel search engine
(:mod:`repro.core.search`) dispatches exactly these functions to worker
pools and memoizes their results by content, while ``compress_kxk`` /
``compress_1x1`` remain the serial convenience wrappers that evaluate
and immediately pick the best-scoring candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .patterns import KernelPattern, generate_patterns
from .quantizer import quantize_per_kernel

__all__ = ["KernelCandidate", "BitCandidate", "compress_kxk",
           "compress_1x1", "apply_patterns", "evaluate_kxk",
           "evaluate_1x1", "evaluate_quant", "quantize_only",
           "best_candidate"]


@dataclass
class KernelCandidate:
    """One fully evaluated compression choice for a layer."""

    weights: np.ndarray          # pruned + fake-quantized layer weights
    mask: np.ndarray             # same shape as weights; 1 = retained
    patterns: list[KernelPattern] = field(default_factory=list)
    pattern_index: np.ndarray | None = None    # per-kernel chosen pattern
    bits: int = 32
    sqnr: float = float("inf")
    score: float = float("nan")

    @property
    def pattern_summary(self) -> str:
        """Human-readable distribution of chosen pattern types."""
        if self.pattern_index is None or not self.patterns:
            return "-"
        counts: dict[str, int] = {}
        for idx in self.pattern_index:
            key = self.patterns[int(idx)].pattern_type
            counts[key] = counts.get(key, 0) + 1
        inner = ",".join(f"{k}:{v}" for k, v in sorted(counts.items()))
        return f"mixed[{inner}]"


@dataclass
class BitCandidate:
    """One fully evaluated bitwidth, before efficiency scoring.

    ``values``/``mask`` are in the *original* weight shape.  ``sparsity``
    and ``sqnr`` are measured in the evaluation domain (tiles for lifted
    1×1 layers, including tail padding) so that scoring a
    :class:`BitCandidate` reproduces the serial search bit-for-bit.
    """

    bits: int
    values: np.ndarray
    mask: np.ndarray
    pattern_index: np.ndarray | None
    sqnr: float
    sparsity: float


def _layer_sqnr(original: np.ndarray, compressed: np.ndarray) -> float:
    noise_var = float((original - compressed).var())
    signal_var = float(original.var())
    if noise_var <= 1e-20:
        return float("inf") if signal_var > 0 else 1.0
    return signal_var / noise_var


def _select_per_kernel(kernels: np.ndarray,
                       patterns: list[KernelPattern],
                       bits: int) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
    """Per-kernel noise-aware mask selection at a fixed bitwidth.

    For every candidate pattern the whole layer is pruned + quantized,
    and each kernel keeps the pattern minimizing its own reconstruction
    error ``‖W_k − Q(W_k ∘ p)‖²`` — which folds quantization noise into
    the selection, unlike a pure L2-of-survivors ranking.

    Returns (compressed kernels, masks, chosen pattern index), all with
    the kernel axis leading.
    """
    n = kernels.shape[0]
    candidate_values = []
    candidate_masks = []
    errors = np.empty((len(patterns), n))
    for p_idx, pattern in enumerate(patterns):
        mask = pattern.mask()
        masked = kernels * mask
        quantized, _ = quantize_per_kernel(masked, bits)
        candidate_values.append(quantized)
        candidate_masks.append(np.broadcast_to(mask, kernels.shape))
        errors[p_idx] = ((kernels - quantized) ** 2).sum(axis=(1, 2))
    choice = errors.argmin(axis=0)
    values = np.stack(candidate_values)      # (P, N, k, k)
    masks = np.stack(candidate_masks)
    take = (choice, np.arange(n))
    return (values[take].astype(np.float32),
            masks[take].astype(np.float32),
            choice.astype(np.int64))


def _evaluate_bits(kernels: np.ndarray, patterns: list[KernelPattern],
                   quant_bits,
                   connectivity_percentile: float = 0.0
                   ) -> list[BitCandidate]:
    """Evaluate every candidate bitwidth on kernel-major weights."""
    candidates: list[BitCandidate] = []
    for bits in quant_bits:
        values, masks, choice = _select_per_kernel(kernels, patterns, bits)
        if connectivity_percentile > 0:
            values, masks = _connectivity_prune(kernels, values, masks,
                                                connectivity_percentile)
        sqnr = _layer_sqnr(kernels, values)
        sparsity = float((masks == 0).mean())
        candidates.append(BitCandidate(bits=bits, values=values, mask=masks,
                                       pattern_index=choice, sqnr=sqnr,
                                       sparsity=sparsity))
    return candidates


def best_candidate(candidates: list[BitCandidate],
                   patterns: list[KernelPattern],
                   score_fn) -> KernelCandidate:
    """Score evaluated candidates (eq. 2) and keep the winner.

    Candidates are visited in their given (``quant_bits``) order and a
    later candidate replaces an earlier one only on a strictly greater
    score — the tie-break the serial search has always used.
    """
    best: KernelCandidate | None = None
    for candidate in candidates:
        score = score_fn(sqnr=candidate.sqnr, bits=candidate.bits,
                         sparsity=candidate.sparsity)
        if best is None or score > best.score:
            best = KernelCandidate(weights=candidate.values,
                                   mask=candidate.mask,
                                   patterns=list(patterns),
                                   pattern_index=candidate.pattern_index,
                                   bits=candidate.bits,
                                   sqnr=candidate.sqnr, score=score)
    assert best is not None
    return best


def _connectivity_prune(kernels: np.ndarray, values: np.ndarray,
                        masks: np.ndarray,
                        percentile: float) -> tuple[np.ndarray, np.ndarray]:
    """Zero out whole kernels with the least retained energy (§III.A)."""
    energies = np.sqrt((values ** 2).sum(axis=tuple(
        range(1, values.ndim))))
    threshold = np.percentile(energies, percentile)
    dead = energies <= threshold
    values = values.copy()
    masks = masks.copy()
    values[dead] = 0.0
    masks[dead] = 0.0
    return values, masks


def evaluate_kxk(weights: np.ndarray, patterns: list[KernelPattern],
                 quant_bits,
                 connectivity_percentile: float = 0.0
                 ) -> list[BitCandidate]:
    """Pure bitwidth sweep of a k×k layer against a fixed pattern pool.

    No scoring, no random state: the result is fully determined by the
    arguments, which is what makes it safe to run on any worker process
    and to memoize by content.
    """
    k = weights.shape[-1]
    if k <= 1:
        raise ValueError("use evaluate_1x1 for 1×1 kernels")
    kernels = weights.reshape(-1, k, k).astype(np.float32)
    candidates = _evaluate_bits(kernels, patterns, quant_bits,
                                connectivity_percentile)
    for candidate in candidates:
        candidate.values = candidate.values.reshape(weights.shape)
        candidate.mask = candidate.mask.reshape(weights.shape)
    return candidates


def evaluate_1x1(weights: np.ndarray, patterns: list[KernelPattern],
                 quant_bits, tile: int = 3) -> list[BitCandidate]:
    """Pure bitwidth sweep of a lifted 1×1/linear layer (Algorithm 5).

    ``sqnr``/``sparsity`` are measured in the padded tile domain —
    exactly what the serial search scored — while ``values``/``mask``
    are trimmed back to the original layout.
    """
    original_shape = weights.shape
    flat = weights.reshape(-1).astype(np.float32)
    tile_elems = tile * tile
    n_tiles = int(np.ceil(flat.size / tile_elems))
    padded = np.zeros(n_tiles * tile_elems, dtype=np.float32)
    padded[:flat.size] = flat
    tiles = padded.reshape(n_tiles, tile, tile)
    candidates = _evaluate_bits(tiles, patterns, quant_bits)
    for candidate in candidates:
        candidate.values = candidate.values.reshape(-1)[:flat.size] \
            .reshape(original_shape).astype(np.float32)
        candidate.mask = candidate.mask.reshape(-1)[:flat.size] \
            .reshape(original_shape).astype(np.float32)
    return candidates


def evaluate_quant(weights: np.ndarray, quant_bits) -> list[BitCandidate]:
    """Pure per-output-channel quantization sweep (no pruning).

    The default treatment of 1×1/linear layers: the paper stresses
    "dynamically adjusting the 1×1 kernel weights" to preserve accuracy,
    realized as a per-channel scale search over the bitwidth range.
    """
    rows = weights.reshape(weights.shape[0], -1)
    candidates: list[BitCandidate] = []
    for bits in quant_bits:
        values, _ = quantize_per_kernel(rows, bits)
        noise_var = float((rows - values).var())
        signal_var = float(rows.var())
        sqnr = signal_var / noise_var if noise_var > 1e-20 \
            else float("inf")
        candidates.append(BitCandidate(
            bits=bits, values=values.reshape(weights.shape),
            mask=np.ones_like(weights, dtype=np.float32),
            pattern_index=None, sqnr=sqnr, sparsity=0.0))
    return candidates


def quantize_only(weights: np.ndarray, quant_bits,
                  score_fn) -> KernelCandidate:
    """Mixed-precision per-channel quantization, best score wins."""
    return best_candidate(evaluate_quant(weights, quant_bits), [], score_fn)


def compress_kxk(weights: np.ndarray, n_nonzero: int, quant_bits,
                 score_fn, rng: np.random.Generator,
                 num_patterns: int = 8,
                 pattern_types: tuple | None = None,
                 patterns: list[KernelPattern] | None = None,
                 connectivity_percentile: float = 0.0
                 ) -> KernelCandidate:
    """Algorithm 4: kernel-wise compression of a k×k layer.

    Parameters
    ----------
    weights:
        (out, in, k, k) conv weights (or (in, out, k, k) for deconv —
        the mask applies over the trailing k×k axes either way).
    n_nonzero:
        Retained weights per kernel (the HCK/LCK knob).
    quant_bits:
        Iterable of candidate bitwidths.
    score_fn:
        ``f(sqnr, bits, sparsity) -> float`` efficiency score (eq. 2).
    patterns:
        Optional pre-generated pattern pool (used when replicating a
        root layer's pool onto leaves); generated from ``rng`` otherwise.
    """
    k = weights.shape[-1]
    if k <= 1:
        raise ValueError("use compress_1x1 for 1×1 kernels")
    if patterns is None:
        patterns = generate_patterns(n_nonzero, k, num_patterns, rng,
                                     pattern_types=pattern_types)
    return best_candidate(
        evaluate_kxk(weights, patterns, quant_bits, connectivity_percentile),
        patterns, score_fn)


def compress_1x1(weights: np.ndarray, n_nonzero: int, quant_bits,
                 score_fn, rng: np.random.Generator,
                 tile: int = 3, num_patterns: int = 8,
                 pattern_types: tuple | None = None,
                 patterns: list[KernelPattern] | None = None
                 ) -> KernelCandidate:
    """Algorithm 5: lift 1×1 kernels into ``tile×tile`` groups, compress.

    The layer's 1×1 weights are flattened, regrouped into k×k tiles
    (zero-padded at the tail), pattern-pruned and quantized like ordinary
    kernels, then flattened back into the original 1×1 layout.  This
    gives the abundant 1×1 kernels of pillar feature networks the same
    semi-structured treatment instead of naive per-tensor quantization.
    """
    if patterns is None:
        patterns = generate_patterns(n_nonzero, tile, num_patterns, rng,
                                     pattern_types=pattern_types)
    return best_candidate(evaluate_1x1(weights, patterns, quant_bits, tile),
                          patterns, score_fn)


def apply_patterns(weights: np.ndarray, patterns: list[KernelPattern],
                   bits: int, tile: int = 3) -> KernelCandidate:
    """Replicate a root layer's (pattern pool, bits) onto a leaf layer.

    Each leaf kernel/tile picks its best mask from the root's pool at
    the root's bitwidth (Algorithm 3 lines 9/12).
    """
    if not patterns:
        raise ValueError("pattern pool is empty")

    def fixed_score(sqnr, bits, sparsity):
        return sqnr if np.isfinite(sqnr) else 1e12

    if weights.ndim == 4 and weights.shape[-1] > 1:
        if weights.shape[-1] != patterns[0].dim:
            raise ValueError(
                f"pattern dim {patterns[0].dim} does not fit kernel size "
                f"{weights.shape[-1]}")
        return best_candidate(evaluate_kxk(weights, patterns, (bits,)),
                              patterns, fixed_score)
    return best_candidate(
        evaluate_1x1(weights, patterns, (bits,), tile=patterns[0].dim),
        patterns, fixed_score)
