"""UPAQ mixed-precision symmetric quantizer (paper Algorithm 6).

Maps floating-point kernel weights to a symmetric integer grid centered
at zero, returns the de-quantized (fake-quantized) weights plus the
Signal-to-Quantization-Noise Ratio used by the efficiency score.  The
*mixed-precision* behaviour comes from the caller (Algorithms 4/5)
sweeping ``quant_bit`` over a range and keeping the best-scoring width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantResult", "mp_quantizer", "quantize_to_int", "sqnr_db",
           "quantize_per_kernel"]


@dataclass
class QuantResult:
    """Output of one quantization pass."""

    values: np.ndarray           # de-quantized weights (float32)
    integers: np.ndarray         # the raw integer codes
    scale: float
    bits: int
    sqnr: float                  # var(x) / var(x - dq(x)); inf if exact

    @property
    def sqnr_db(self) -> float:
        return sqnr_db(self.sqnr)


def sqnr_db(ratio: float) -> float:
    """SQNR ratio → decibels (capped for the exact-representation case)."""
    if not np.isfinite(ratio) or ratio <= 0:
        return 120.0 if ratio > 0 or not np.isfinite(ratio) else 0.0
    return float(min(10.0 * np.log10(ratio), 120.0))


def quantize_to_int(x: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric quantization to ``bits``-wide integers.

    Returns (integer codes, scale).  The representable range is
    ``[-(2^(b-1)-1), 2^(b-1)-1]`` — symmetric, zero maps to zero exactly,
    which keeps pruned weights pruned after quantization.
    """
    if bits < 2:
        raise ValueError(f"symmetric quantization needs ≥2 bits, got {bits}")
    x = np.asarray(x, dtype=np.float32)
    alpha = float(max(abs(x.min(initial=0.0)), abs(x.max(initial=0.0))))
    max_value = 2 ** (bits - 1) - 1
    min_value = -max_value
    if alpha == 0.0:
        return np.zeros_like(x, dtype=np.int64), 1.0
    scale = alpha / max_value
    codes = np.clip(np.round(x / scale), min_value, max_value) \
        .astype(np.int64)
    return codes, scale


def mp_quantizer(temp_kernel: np.ndarray, quant_bit: int) -> QuantResult:
    """Algorithm 6: quantize a (pruned) kernel and report its SQNR."""
    x = np.asarray(temp_kernel, dtype=np.float32)
    codes, scale = quantize_to_int(x, quant_bit)
    dequantized = (codes * scale).astype(np.float32)
    noise = x - dequantized
    # Variances in float64: float32 squares overflow for extreme weights.
    signal_var = float(x.astype(np.float64).var())
    noise_var = float(noise.astype(np.float64).var())
    if noise_var <= 1e-20:
        ratio = float("inf") if signal_var > 0 else 1.0
    else:
        ratio = signal_var / noise_var
    return QuantResult(values=dequantized, integers=codes, scale=scale,
                       bits=quant_bit, sqnr=ratio)


def quantize_per_kernel(kernels: np.ndarray,
                        bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric quantization with an independent scale per kernel.

    This is Algorithm 4's usage of ``mp_quantizer``: the quantizer runs
    on one kernel at a time, so every kernel gets its own scale — the
    per-kernel fp32 scales the deployment format stores and the storage
    model charges.  Vastly better low-bit SQNR than a per-layer scale.

    ``kernels`` is (N, ...) with the kernel axis leading; returns
    (de-quantized values, per-kernel scales).
    """
    if bits < 2:
        raise ValueError(f"symmetric quantization needs ≥2 bits, got {bits}")
    kernels = np.asarray(kernels, dtype=np.float32)
    n = kernels.shape[0]
    flat = kernels.reshape(n, -1)
    max_value = 2 ** (bits - 1) - 1
    alphas = np.abs(flat).max(axis=1)
    scales = np.where(alphas > 0, alphas / max_value, 1.0)
    codes = np.clip(np.round(flat / scales[:, None]), -max_value, max_value)
    values = (codes * scales[:, None]).astype(np.float32)
    return values.reshape(kernels.shape), scales.astype(np.float32)
