"""Parallel, memoized, fault-tolerant candidate search for UPAQ.

Algorithm 3's hot loop — score every root layer over pattern-family ×
bitwidth candidates — is embarrassingly parallel: each root layer's
evaluation depends only on its own weights and the search knobs.  This
module turns that loop into *pure, picklable work units*
(:class:`RootSearchTask` / :class:`LeafSearchTask`) dispatched over a
``concurrent.futures`` pool, with four properties the test suite pins
down:

**Determinism independent of scheduling.**  Each layer's randomized
pattern pool (Algorithm 2) is seeded from ``(base_seed, crc32(weights))``
rather than from a generator threaded through the layers sequentially,
so results do not depend on worker count, backend, or completion order.
Seeding from the weight *content* (not the layer name) has a second
benefit: two layers with identical weights draw identical pools, which
makes their entire evaluation cache-equivalent.

**Content-keyed memoization.**  A bounded, thread-safe
:class:`MemoCache` keyed on ``(weights digest, search knobs)`` lets
repeated kernels — duplicated heads, tied layers, repeated sweeps over
the same checkpoint — be evaluated once.  The cache sits in the
dispatching process, in front of the pool, so it works identically for
the serial, thread, and process backends.

**Fault tolerance.**  A flaky worker must not kill a long search:
:meth:`SearchEngine.map` gives every task a bounded number of retries
with exponential backoff and (on pooled backends) a per-task timeout,
and when a process pool dies outright (``BrokenProcessPool`` — a worker
segfaulted or was OOM-killed) the surviving tasks are re-dispatched on
the serial backend instead of aborting the run.  An optional
:class:`SearchJournal` checkpoints every completed task to a JSONL
file, so an interrupted search resumes without re-evaluating finished
groups — each journal line carries its own checksum, and corrupt or
truncated lines are skipped rather than trusted.

**Observable search cost.**  Every task reports wall time and candidate
counts; :class:`SearchStats` aggregates them (plus cache hit rates and
retry/timeout/resume counters) into the
:class:`~repro.core.compressor.CompressionReport` and the CLI.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
import time
import zlib
from collections import OrderedDict
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                ThreadPoolExecutor, TimeoutError
                                as FutureTimeoutError)
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock

import numpy as np

from .kernel_compression import (KernelCandidate, apply_patterns,
                                 evaluate_1x1, evaluate_kxk, evaluate_quant,
                                 quantize_only)
from .patterns import KernelPattern, generate_patterns, pool_signature

__all__ = ["MemoCache", "SearchEngine", "SearchStats", "SearchJournal",
           "SearchTaskError", "LayerSearchStat",
           "RootSearchTask", "RootSearchResult", "LeafSearchTask",
           "LeafSearchResult", "run_root_task", "run_leaf_task",
           "content_digest", "content_key", "resolve_backend",
           "SEARCH_BACKENDS"]

SEARCH_BACKENDS = ("auto", "serial", "thread", "process")


class SearchTaskError(RuntimeError):
    """A search task kept failing after its retry budget was spent."""


def content_digest(array: np.ndarray) -> int:
    """Cheap, stable 32-bit digest of an array's dtype, shape, and bytes.

    Used to seed per-layer rng pools, where a collision merely makes two
    layers draw the same (still valid) pattern pool.  Memo-cache keys
    need collision resistance instead — see :func:`content_key`.
    """
    contiguous = np.ascontiguousarray(array)
    header = f"{contiguous.dtype.str}|{contiguous.shape}".encode()
    return zlib.crc32(contiguous.tobytes(), zlib.crc32(header))


def content_key(array: np.ndarray) -> bytes:
    """Collision-resistant identity of an array's dtype, shape, and bytes.

    Memo-cache keys are built from this: a colliding key would silently
    substitute another layer's compressed weights and masks, so the
    32-bit :func:`content_digest` is not good enough here.
    """
    digest = hashlib.blake2b(digest_size=16)
    contiguous = np.ascontiguousarray(array)
    digest.update(f"{contiguous.dtype.str}|{contiguous.shape}".encode())
    digest.update(contiguous.tobytes())
    return digest.digest()


def resolve_backend(backend: str, workers: int) -> str:
    """Collapse ``auto`` and single-worker runs to a concrete backend."""
    if backend not in SEARCH_BACKENDS:
        raise ValueError(f"unknown search backend {backend!r}; "
                         f"expected one of {SEARCH_BACKENDS}")
    if workers <= 1:
        return "serial"
    if backend == "auto":
        # Process pools sidestep the GIL entirely; on platforms without
        # fork the spawn cost usually exceeds the win for these models.
        import multiprocessing
        return "process" \
            if "fork" in multiprocessing.get_all_start_methods() \
            else "thread"
    return backend


class MemoCache:
    """Bounded, thread-safe LRU cache with hit/miss accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """Return the cached value or ``None`` (counted as a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def count_hit(self) -> None:
        """Record a memoized reuse that bypassed the lookup (batch dedup)."""
        with self._lock:
            self.hits += 1

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SearchJournal:
    """Append-only JSONL-style checkpoint of completed search tasks.

    Each line is ``key_hex<TAB>payload_checksum<TAB>payload_b64`` where
    the payload is the pickled task result.  The format is deliberately
    paranoid: on load, lines that are truncated (a crash mid-write),
    fail their checksum, or do not unpickle are *skipped*, never
    trusted — resuming from a damaged journal merely re-evaluates the
    affected tasks.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._entries: dict[str, object] = {}
        self.corrupt_lines = 0
        if self.path.exists():
            self._load()

    @staticmethod
    def journal_key(cache_key) -> str:
        """Stable, filename-safe identity of an engine cache key."""
        return hashlib.blake2b(repr(cache_key).encode(),
                               digest_size=16).hexdigest()

    def _load(self) -> None:
        for line in self.path.read_bytes().splitlines():
            parts = line.split(b"\t")
            if len(parts) != 3:
                self.corrupt_lines += 1
                continue
            key, checksum, payload_b64 = parts
            try:
                payload = base64.b64decode(payload_b64, validate=True)
                if hashlib.blake2b(payload, digest_size=16).hexdigest() \
                        != checksum.decode():
                    raise ValueError("checksum mismatch")
                value = pickle.loads(payload)
            except Exception:
                self.corrupt_lines += 1
                continue
            self._entries[key.decode()] = value

    def get(self, cache_key):
        return self._entries.get(self.journal_key(cache_key))

    def record(self, cache_key, result) -> None:
        """Persist one completed task (flushed immediately)."""
        key = self.journal_key(cache_key)
        if key in self._entries:
            return
        payload = pickle.dumps(result, protocol=4)
        checksum = hashlib.blake2b(payload, digest_size=16).hexdigest()
        line = (key.encode() + b"\t" + checksum.encode() + b"\t"
                + base64.b64encode(payload) + b"\n")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(line)
            handle.flush()
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Work units — plain dataclasses + module-level functions, so every task
# pickles cleanly into a process pool.
# ----------------------------------------------------------------------
@dataclass
class RootSearchTask:
    """Everything needed to search one root layer, self-contained."""

    name: str
    weights: np.ndarray
    path: str                       # "kxk" | "tile" | "quant"
    n_nonzero: int
    quant_bits: tuple
    num_patterns: int
    pattern_types: tuple | None
    tile: int
    connectivity_percentile: float
    base_seed: int

    def cache_key(self) -> tuple:
        return ("root", content_key(self.weights), self.path,
                self.n_nonzero, tuple(self.quant_bits), self.num_patterns,
                self.pattern_types, self.tile,
                round(self.connectivity_percentile, 9), self.base_seed)


@dataclass
class RootSearchResult:
    """Unscored candidates for one root layer, plus measured cost."""

    name: str
    candidates: list                # list[BitCandidate], quant_bits order
    patterns: list[KernelPattern]
    evaluated: int                  # patterns × bitwidths
    wall_time_s: float


def run_root_task(task: RootSearchTask) -> RootSearchResult:
    """Evaluate one root layer's full candidate grid (pure function)."""
    start = time.perf_counter()
    rng = np.random.default_rng((task.base_seed,
                                 content_digest(task.weights)))
    if task.path == "kxk":
        patterns = generate_patterns(
            task.n_nonzero, task.weights.shape[-1], task.num_patterns, rng,
            pattern_types=task.pattern_types)
        candidates = evaluate_kxk(task.weights, patterns, task.quant_bits,
                                  task.connectivity_percentile)
    elif task.path == "tile":
        patterns = generate_patterns(task.n_nonzero, task.tile,
                                     task.num_patterns, rng,
                                     pattern_types=task.pattern_types)
        candidates = evaluate_1x1(task.weights, patterns, task.quant_bits,
                                  tile=task.tile)
    elif task.path == "quant":
        patterns = []
        candidates = evaluate_quant(task.weights, task.quant_bits)
    else:
        raise ValueError(f"unknown search path {task.path!r}")
    evaluated = max(len(patterns), 1) * len(candidates)
    return RootSearchResult(name=task.name, candidates=candidates,
                            patterns=patterns, evaluated=evaluated,
                            wall_time_s=time.perf_counter() - start)


@dataclass
class LeafSearchTask:
    """Replicate a root's decision onto one leaf layer (Algorithm 3)."""

    name: str
    root: str
    weights: np.ndarray
    patterns: list[KernelPattern]   # empty → quantize-only at root bits
    bits: int
    tile: int

    def cache_key(self) -> tuple:
        return ("leaf", content_key(self.weights),
                pool_signature(self.patterns), self.bits, self.tile)


@dataclass
class LeafSearchResult:
    name: str
    root: str
    candidate: KernelCandidate
    evaluated: int
    wall_time_s: float


def run_leaf_task(task: LeafSearchTask) -> LeafSearchResult:
    """Apply the root's pool/bits to a leaf layer (pure function)."""
    start = time.perf_counter()
    if task.patterns:
        candidate = apply_patterns(task.weights, task.patterns, task.bits,
                                   tile=task.tile)
        evaluated = len(task.patterns)
    else:   # root was quantize-only (1×1 default path)
        candidate = quantize_only(
            task.weights, (task.bits,),
            lambda sqnr, bits, sparsity: sqnr)
        evaluated = 1
    return LeafSearchResult(name=task.name, root=task.root,
                            candidate=candidate, evaluated=evaluated,
                            wall_time_s=time.perf_counter() - start)


# ----------------------------------------------------------------------
# Statistics surfaced in CompressionReport / the CLI
# ----------------------------------------------------------------------
@dataclass
class LayerSearchStat:
    """Search cost of a single layer."""

    layer: str
    role: str                       # "root" | "leaf"
    candidates: int
    wall_time_s: float
    cached: bool


@dataclass
class SearchStats:
    """Aggregate cost of one compression search."""

    workers: int = 1
    backend: str = "serial"
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    device_cache_hits: int = 0
    device_cache_misses: int = 0
    retries: int = 0                # task re-executions after failures
    timeouts: int = 0               # per-task deadline expiries
    pool_failures: int = 0          # broken pools recovered serially
    resumed_groups: int = 0         # tasks restored from the journal
    layers: list = field(default_factory=list)

    @property
    def candidates_evaluated(self) -> int:
        return sum(stat.candidates for stat in self.layers)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def device_cache_hit_rate(self) -> float:
        total = self.device_cache_hits + self.device_cache_misses
        return self.device_cache_hits / total if total else 0.0

    def summary(self) -> str:
        roots = sum(1 for stat in self.layers if stat.role == "root")
        text = (f"search: {len(self.layers)} layers ({roots} roots), "
                f"{self.candidates_evaluated} candidates, "
                f"cache {self.cache_hits}/"
                f"{self.cache_hits + self.cache_misses} hits "
                f"({self.cache_hit_rate:.0%}), "
                f"device cache {self.device_cache_hit_rate:.0%}, "
                f"wall {self.wall_time_s:.3f}s "
                f"[workers={self.workers}, {self.backend}]")
        if self.retries or self.timeouts or self.pool_failures:
            text += (f" — recovered from {self.retries} retries, "
                     f"{self.timeouts} timeouts, "
                     f"{self.pool_failures} pool failures")
        if self.resumed_groups:
            text += f" — resumed {self.resumed_groups} tasks from journal"
        return text


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SearchEngine:
    """Dispatches search tasks over a worker pool, memoizing by content.

    Results come back in task-submission order regardless of completion
    order, and a single-worker engine runs tasks inline — so for equal
    inputs every backend produces bit-identical results.

    Resilience knobs
    ----------------
    ``max_retries`` re-executes a task that raised (or timed out) up to
    that many extra times, sleeping ``retry_backoff_s × 2**attempt``
    between tries.  ``task_timeout_s`` bounds how long the dispatcher
    waits for any single pooled task (serial execution cannot be
    preempted, so the timeout only applies to thread/process backends).
    A ``BrokenProcessPool`` — a worker crashed hard — re-dispatches the
    not-yet-finished tasks on the serial backend.  All recoveries are
    counted on the engine (``retries`` / ``timeouts`` /
    ``pool_failures`` / ``resumed``) for :class:`SearchStats`.
    """

    def __init__(self, workers: int = 1, backend: str = "auto",
                 cache: MemoCache | None = None,
                 task_timeout_s: float | None = None,
                 max_retries: int = 0,
                 retry_backoff_s: float = 0.05,
                 journal: SearchJournal | None = None):
        self.workers = max(1, int(workers))
        self.backend = resolve_backend(backend, self.workers)
        self.cache = cache
        self.task_timeout_s = task_timeout_s
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = retry_backoff_s
        self.journal = journal
        self.retries = 0
        self.timeouts = 0
        self.pool_failures = 0
        self.resumed = 0

    # ------------------------------------------------------------------
    def _run_with_retries(self, fn, task):
        """Run ``fn(task)`` inline, honoring the retry budget."""
        for attempt in range(self.max_retries + 1):
            try:
                return fn(task)
            except Exception as error:
                if attempt >= self.max_retries:
                    name = getattr(task, "name", repr(task))
                    raise SearchTaskError(
                        f"search task {name!r} failed after "
                        f"{attempt + 1} attempts: {error}") from error
                self.retries += 1
                time.sleep(self.retry_backoff_s * (2 ** attempt))

    def _complete(self, index, keys, results, fresh_indices) -> None:
        """Bookkeeping shared by every execution path."""
        fresh_indices.append(index)
        if self.cache is not None:
            self.cache.put(keys[index], results[index])
        if self.journal is not None:
            self.journal.record(keys[index], results[index])

    def _execute_serial(self, fn, tasks, pending, keys, results,
                        fresh_indices) -> None:
        for index in pending:
            results[index] = self._run_with_retries(fn, tasks[index])
            self._complete(index, keys, results, fresh_indices)

    def _execute_pooled(self, fn, tasks, pending, keys, results,
                        fresh_indices) -> None:
        pool_cls = ThreadPoolExecutor if self.backend == "thread" \
            else ProcessPoolExecutor
        max_workers = min(self.workers, len(pending))
        attempts = {index: 0 for index in pending}
        remaining = list(pending)
        try:
            with pool_cls(max_workers=max_workers) as pool:
                futures = {index: pool.submit(fn, tasks[index])
                           for index in remaining}
                while remaining:
                    index = remaining[0]
                    try:
                        if futures[index] is None:
                            # A previous attempt timed out: its worker
                            # slot may still be hung, so retry inline in
                            # the dispatcher instead of queueing behind
                            # the stuck worker.
                            results[index] = fn(tasks[index])
                        else:
                            results[index] = futures[index].result(
                                timeout=self.task_timeout_s)
                    except BrokenExecutor:
                        raise
                    except Exception as error:
                        if isinstance(error, FutureTimeoutError):
                            self.timeouts += 1
                            futures[index].cancel()
                            futures[index] = None
                        if attempts[index] >= self.max_retries:
                            name = getattr(tasks[index], "name",
                                           repr(tasks[index]))
                            raise SearchTaskError(
                                f"search task {name!r} failed after "
                                f"{attempts[index] + 1} attempts: "
                                f"{error}") from error
                        attempts[index] += 1
                        self.retries += 1
                        time.sleep(self.retry_backoff_s
                                   * (2 ** (attempts[index] - 1)))
                        if futures[index] is not None:
                            futures[index] = pool.submit(fn, tasks[index])
                        continue
                    remaining.pop(0)
                    self._complete(index, keys, results, fresh_indices)
        except BrokenExecutor:
            # A worker died hard (segfault, OOM kill).  Finish the
            # surviving tasks inline rather than aborting the search.
            self.pool_failures += 1
            self._execute_serial(fn, tasks, remaining, keys, results,
                                 fresh_indices)

    # ------------------------------------------------------------------
    def map(self, fn, tasks: list) -> list[tuple[object, bool]]:
        """Run ``fn`` over ``tasks``; returns ``[(result, was_cached)]``.

        Tasks whose cache key repeats *within the batch* are evaluated
        once: the duplicates reuse the first occurrence's result and are
        reported as cache hits — this is what lets tied/duplicated
        layers submitted in the same phase be scored a single time.
        Tasks found in the resume journal are restored without
        re-evaluation and likewise reported as cached.
        """
        results: list = [None] * len(tasks)
        cached = [False] * len(tasks)
        keys = [task.cache_key() for task in tasks]
        first_index: dict = {}
        duplicates: list[int] = []
        pending: list[int] = []
        for index, key in enumerate(keys):
            if key in first_index:
                duplicates.append(index)
                continue
            first_index[key] = index
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[index] = hit
                cached[index] = True
                continue
            if self.journal is not None:
                restored = self.journal.get(key)
                if restored is not None:
                    results[index] = restored
                    cached[index] = True
                    self.resumed += 1
                    if self.cache is not None:
                        self.cache.put(key, restored)
                    continue
            pending.append(index)

        if pending:
            fresh_indices: list[int] = []
            if self.backend == "serial" or len(pending) == 1:
                self._execute_serial(fn, tasks, pending, keys, results,
                                     fresh_indices)
            else:
                self._execute_pooled(fn, tasks, pending, keys, results,
                                     fresh_indices)
        for index in duplicates:
            results[index] = results[first_index[keys[index]]]
            cached[index] = True
            if self.cache is not None:
                self.cache.count_hit()
        return list(zip(results, cached))
