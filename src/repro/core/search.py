"""Parallel, memoized candidate search for the UPAQ compression stage.

Algorithm 3's hot loop — score every root layer over pattern-family ×
bitwidth candidates — is embarrassingly parallel: each root layer's
evaluation depends only on its own weights and the search knobs.  This
module turns that loop into *pure, picklable work units*
(:class:`RootSearchTask` / :class:`LeafSearchTask`) dispatched over a
``concurrent.futures`` pool, with three properties the test suite pins
down:

**Determinism independent of scheduling.**  Each layer's randomized
pattern pool (Algorithm 2) is seeded from ``(base_seed, crc32(weights))``
rather than from a generator threaded through the layers sequentially,
so results do not depend on worker count, backend, or completion order.
Seeding from the weight *content* (not the layer name) has a second
benefit: two layers with identical weights draw identical pools, which
makes their entire evaluation cache-equivalent.

**Content-keyed memoization.**  A bounded, thread-safe
:class:`MemoCache` keyed on ``(weights digest, search knobs)`` lets
repeated kernels — duplicated heads, tied layers, repeated sweeps over
the same checkpoint — be evaluated once.  The cache sits in the
dispatching process, in front of the pool, so it works identically for
the serial, thread, and process backends.

**Observable search cost.**  Every task reports wall time and candidate
counts; :class:`SearchStats` aggregates them (plus cache hit rates) into
the :class:`~repro.core.compressor.CompressionReport` and the CLI.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from .kernel_compression import (KernelCandidate, apply_patterns,
                                 evaluate_1x1, evaluate_kxk, evaluate_quant,
                                 quantize_only)
from .patterns import KernelPattern, generate_patterns, pool_signature

__all__ = ["MemoCache", "SearchEngine", "SearchStats", "LayerSearchStat",
           "RootSearchTask", "RootSearchResult", "LeafSearchTask",
           "LeafSearchResult", "run_root_task", "run_leaf_task",
           "content_digest", "content_key", "resolve_backend",
           "SEARCH_BACKENDS"]

SEARCH_BACKENDS = ("auto", "serial", "thread", "process")


def content_digest(array: np.ndarray) -> int:
    """Cheap, stable 32-bit digest of an array's dtype, shape, and bytes.

    Used to seed per-layer rng pools, where a collision merely makes two
    layers draw the same (still valid) pattern pool.  Memo-cache keys
    need collision resistance instead — see :func:`content_key`.
    """
    contiguous = np.ascontiguousarray(array)
    header = f"{contiguous.dtype.str}|{contiguous.shape}".encode()
    return zlib.crc32(contiguous.tobytes(), zlib.crc32(header))


def content_key(array: np.ndarray) -> bytes:
    """Collision-resistant identity of an array's dtype, shape, and bytes.

    Memo-cache keys are built from this: a colliding key would silently
    substitute another layer's compressed weights and masks, so the
    32-bit :func:`content_digest` is not good enough here.
    """
    digest = hashlib.blake2b(digest_size=16)
    contiguous = np.ascontiguousarray(array)
    digest.update(f"{contiguous.dtype.str}|{contiguous.shape}".encode())
    digest.update(contiguous.tobytes())
    return digest.digest()


def resolve_backend(backend: str, workers: int) -> str:
    """Collapse ``auto`` and single-worker runs to a concrete backend."""
    if backend not in SEARCH_BACKENDS:
        raise ValueError(f"unknown search backend {backend!r}; "
                         f"expected one of {SEARCH_BACKENDS}")
    if workers <= 1:
        return "serial"
    if backend == "auto":
        # Process pools sidestep the GIL entirely; on platforms without
        # fork the spawn cost usually exceeds the win for these models.
        import multiprocessing
        return "process" \
            if "fork" in multiprocessing.get_all_start_methods() \
            else "thread"
    return backend


class MemoCache:
    """Bounded, thread-safe LRU cache with hit/miss accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """Return the cached value or ``None`` (counted as a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def count_hit(self) -> None:
        """Record a memoized reuse that bypassed the lookup (batch dedup)."""
        with self._lock:
            self.hits += 1

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ----------------------------------------------------------------------
# Work units — plain dataclasses + module-level functions, so every task
# pickles cleanly into a process pool.
# ----------------------------------------------------------------------
@dataclass
class RootSearchTask:
    """Everything needed to search one root layer, self-contained."""

    name: str
    weights: np.ndarray
    path: str                       # "kxk" | "tile" | "quant"
    n_nonzero: int
    quant_bits: tuple
    num_patterns: int
    pattern_types: tuple | None
    tile: int
    connectivity_percentile: float
    base_seed: int

    def cache_key(self) -> tuple:
        return ("root", content_key(self.weights), self.path,
                self.n_nonzero, tuple(self.quant_bits), self.num_patterns,
                self.pattern_types, self.tile,
                round(self.connectivity_percentile, 9), self.base_seed)


@dataclass
class RootSearchResult:
    """Unscored candidates for one root layer, plus measured cost."""

    name: str
    candidates: list                # list[BitCandidate], quant_bits order
    patterns: list[KernelPattern]
    evaluated: int                  # patterns × bitwidths
    wall_time_s: float


def run_root_task(task: RootSearchTask) -> RootSearchResult:
    """Evaluate one root layer's full candidate grid (pure function)."""
    start = time.perf_counter()
    rng = np.random.default_rng((task.base_seed,
                                 content_digest(task.weights)))
    if task.path == "kxk":
        patterns = generate_patterns(
            task.n_nonzero, task.weights.shape[-1], task.num_patterns, rng,
            pattern_types=task.pattern_types)
        candidates = evaluate_kxk(task.weights, patterns, task.quant_bits,
                                  task.connectivity_percentile)
    elif task.path == "tile":
        patterns = generate_patterns(task.n_nonzero, task.tile,
                                     task.num_patterns, rng,
                                     pattern_types=task.pattern_types)
        candidates = evaluate_1x1(task.weights, patterns, task.quant_bits,
                                  tile=task.tile)
    elif task.path == "quant":
        patterns = []
        candidates = evaluate_quant(task.weights, task.quant_bits)
    else:
        raise ValueError(f"unknown search path {task.path!r}")
    evaluated = max(len(patterns), 1) * len(candidates)
    return RootSearchResult(name=task.name, candidates=candidates,
                            patterns=patterns, evaluated=evaluated,
                            wall_time_s=time.perf_counter() - start)


@dataclass
class LeafSearchTask:
    """Replicate a root's decision onto one leaf layer (Algorithm 3)."""

    name: str
    root: str
    weights: np.ndarray
    patterns: list[KernelPattern]   # empty → quantize-only at root bits
    bits: int
    tile: int

    def cache_key(self) -> tuple:
        return ("leaf", content_key(self.weights),
                pool_signature(self.patterns), self.bits, self.tile)


@dataclass
class LeafSearchResult:
    name: str
    root: str
    candidate: KernelCandidate
    evaluated: int
    wall_time_s: float


def run_leaf_task(task: LeafSearchTask) -> LeafSearchResult:
    """Apply the root's pool/bits to a leaf layer (pure function)."""
    start = time.perf_counter()
    if task.patterns:
        candidate = apply_patterns(task.weights, task.patterns, task.bits,
                                   tile=task.tile)
        evaluated = len(task.patterns)
    else:   # root was quantize-only (1×1 default path)
        candidate = quantize_only(
            task.weights, (task.bits,),
            lambda sqnr, bits, sparsity: sqnr)
        evaluated = 1
    return LeafSearchResult(name=task.name, root=task.root,
                            candidate=candidate, evaluated=evaluated,
                            wall_time_s=time.perf_counter() - start)


# ----------------------------------------------------------------------
# Statistics surfaced in CompressionReport / the CLI
# ----------------------------------------------------------------------
@dataclass
class LayerSearchStat:
    """Search cost of a single layer."""

    layer: str
    role: str                       # "root" | "leaf"
    candidates: int
    wall_time_s: float
    cached: bool


@dataclass
class SearchStats:
    """Aggregate cost of one compression search."""

    workers: int = 1
    backend: str = "serial"
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    device_cache_hits: int = 0
    device_cache_misses: int = 0
    layers: list = field(default_factory=list)

    @property
    def candidates_evaluated(self) -> int:
        return sum(stat.candidates for stat in self.layers)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def device_cache_hit_rate(self) -> float:
        total = self.device_cache_hits + self.device_cache_misses
        return self.device_cache_hits / total if total else 0.0

    def summary(self) -> str:
        roots = sum(1 for stat in self.layers if stat.role == "root")
        return (f"search: {len(self.layers)} layers ({roots} roots), "
                f"{self.candidates_evaluated} candidates, "
                f"cache {self.cache_hits}/"
                f"{self.cache_hits + self.cache_misses} hits "
                f"({self.cache_hit_rate:.0%}), "
                f"device cache {self.device_cache_hit_rate:.0%}, "
                f"wall {self.wall_time_s:.3f}s "
                f"[workers={self.workers}, {self.backend}]")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SearchEngine:
    """Dispatches search tasks over a worker pool, memoizing by content.

    Results come back in task-submission order regardless of completion
    order, and a single-worker engine runs tasks inline — so for equal
    inputs every backend produces bit-identical results.
    """

    def __init__(self, workers: int = 1, backend: str = "auto",
                 cache: MemoCache | None = None):
        self.workers = max(1, int(workers))
        self.backend = resolve_backend(backend, self.workers)
        self.cache = cache

    def map(self, fn, tasks: list) -> list[tuple[object, bool]]:
        """Run ``fn`` over ``tasks``; returns ``[(result, was_cached)]``.

        Tasks whose cache key repeats *within the batch* are evaluated
        once: the duplicates reuse the first occurrence's result and are
        reported as cache hits — this is what lets tied/duplicated
        layers submitted in the same phase be scored a single time.
        """
        results: list = [None] * len(tasks)
        cached = [False] * len(tasks)
        keys = [task.cache_key() for task in tasks]
        first_index: dict = {}
        duplicates: list[int] = []
        pending: list[int] = []
        for index, key in enumerate(keys):
            if key in first_index:
                duplicates.append(index)
                continue
            first_index[key] = index
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[index] = hit
                cached[index] = True
            else:
                pending.append(index)

        if pending:
            if self.backend == "serial" or len(pending) == 1:
                fresh = [fn(tasks[index]) for index in pending]
            else:
                pool_cls = ThreadPoolExecutor if self.backend == "thread" \
                    else ProcessPoolExecutor
                max_workers = min(self.workers, len(pending))
                with pool_cls(max_workers=max_workers) as pool:
                    fresh = list(pool.map(fn, (tasks[index]
                                               for index in pending)))
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache is not None:
                    self.cache.put(keys[index], result)
        for index in duplicates:
            results[index] = results[first_index[keys[index]]]
            cached[index] = True
            if self.cache is not None:
                self.cache.count_hit()
        return list(zip(results, cached))
