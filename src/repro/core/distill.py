"""Knowledge-distillation fine-tuning for compressed detectors.

The paper lists knowledge distillation among the model-compression
families (§I) and leaves combining it with UPAQ to future work; this
module implements that extension.  The uncompressed *teacher* supervises
the compressed *student* during masked fine-tuning: the student minimizes
its ordinary detection loss plus an imitation term that matches its head
outputs to the teacher's on the same frame.  Because the teacher encodes
dark knowledge about near-threshold anchors, distillation recovers more
of the pruning-induced accuracy drop than label-only fine-tuning,
especially at HCK-level sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn.graph import layer_map

__all__ = ["DistillConfig", "distill_finetune"]


@dataclass
class DistillConfig:
    """Weights of the distillation objective."""

    epochs: int = 3
    lr: float = 5e-4
    task_weight: float = 1.0       # ground-truth detection loss
    imitation_weight: float = 1.0  # teacher-output matching
    #: imitate only where the teacher is confident (sigmoid prob above
    #: this) plus an equal share of random background — full-map
    #: imitation drowns the signal in easy negatives
    confidence_threshold: float = 0.2


def _imitation_loss(student_out: dict, teacher_out: dict,
                    config: DistillConfig,
                    rng: np.random.Generator) -> Tensor:
    """Masked L2 between student and teacher head maps."""
    total: Tensor | None = None
    for key, teacher_tensor in teacher_out.items():
        student_tensor = student_out[key]
        teacher_data = teacher_tensor.data
        if key in ("cls", "heatmap"):
            prob = 1.0 / (1.0 + np.exp(-teacher_data))
            confident = prob >= config.confidence_threshold
            background = rng.random(teacher_data.shape) \
                < max(confident.mean(), 1e-3)
            mask = (confident | background).astype(np.float32)
        else:
            mask = np.ones_like(teacher_data, dtype=np.float32)
        diff = (student_tensor - Tensor(teacher_data)) * Tensor(mask)
        term = (diff * diff).sum() / max(float(mask.sum()), 1.0)
        total = term if total is None else total + term
    assert total is not None
    return total


def distill_finetune(report, teacher, scenes,
                     config: DistillConfig | None = None) -> list[float]:
    """Fine-tune ``report.model`` against ``teacher`` on ``scenes``.

    ``report`` is a :class:`repro.core.compressor.CompressionReport`;
    pruned positions stay zero via optimizer masks, and weights are
    re-quantized to their selected bitwidths afterwards.  Returns the
    per-epoch mean combined losses.
    """
    config = config or DistillConfig()
    student = report.model
    rng = np.random.default_rng(0)

    layers = layer_map(student)
    optimizer = nn.optim.Adam(student.parameters(), lr=config.lr)
    for layer_name, mask in report.masks.items():
        if layer_name in layers:
            optimizer.set_mask(layers[layer_name].weight, mask)

    teacher.eval()
    history: list[float] = []
    for _ in range(config.epochs):
        losses = []
        for scene in scenes:
            with nn.no_grad():
                teacher_out = teacher(*teacher.preprocess(scene))
            # Freeze batch-norm at the pretrained running stats: the
            # student must imitate the teacher in the *deployment*
            # regime, otherwise BN drift undoes the imitation at eval.
            student.eval()
            optimizer.zero_grad()
            student_out = student(*student.preprocess(scene))
            task = student.loss(student_out, scene)
            imitation = _imitation_loss(student_out, teacher_out, config,
                                        rng)
            loss = config.task_weight * task \
                + config.imitation_weight * imitation
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))

    from .finetune import requantize
    bits_by_layer = {choice.layer: choice.bits for choice in report.choices}
    requantize(student, bits_by_layer, report.masks, per_kernel=True)
    return history
