"""UPAQ pattern generation (paper Algorithm 2).

Generates randomized kernel-mask patterns that place ``n`` non-zero
weights along one of four arrangements — main diagonal, anti-diagonal, a
random row, or a random column — inside a ``d × d`` kernel.  Unlike a
fixed pattern dictionary (R-TOSS's entry patterns), the randomized
family lets the compression stage search a richer mask space while
remaining semi-structured (hardware-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PATTERN_TYPES", "KernelPattern", "generate_pattern",
           "generate_patterns", "pattern_mask", "pool_signature"]

PATTERN_TYPES = ("main_diagonal", "anti_diagonal", "row", "column")


@dataclass(frozen=True)
class KernelPattern:
    """A semi-structured kernel mask."""

    pattern_type: str
    positions: tuple            # tuple of (row, col) pairs
    dim: int

    @property
    def num_nonzero(self) -> int:
        return len(self.positions)

    def mask(self) -> np.ndarray:
        """(d, d) float mask with 1 at retained positions."""
        mask = np.zeros((self.dim, self.dim), dtype=np.float32)
        for row, col in self.positions:
            mask[row, col] = 1.0
        return mask

    def __str__(self) -> str:
        return f"{self.pattern_type}[n={self.num_nonzero}, d={self.dim}]"


def generate_pattern(n: int, d: int,
                     rng: np.random.Generator,
                     pattern_type: str | None = None) -> KernelPattern:
    """Algorithm 2: random semi-structured pattern of ``n`` non-zeros.

    Parameters
    ----------
    n:
        Number of non-zero weights to retain.
    d:
        Kernel dimension (the kernel is d × d).
    rng:
        Random source (pattern type, row/column placement).
    pattern_type:
        Force a specific arrangement instead of sampling one.
    """
    if n < 1:
        raise ValueError(f"need at least one non-zero weight, got {n}")
    if d < 1:
        raise ValueError(f"kernel dimension must be positive, got {d}")
    if pattern_type is None:
        pattern_type = str(rng.choice(PATTERN_TYPES))
    if pattern_type not in PATTERN_TYPES:
        raise ValueError(f"unknown pattern type {pattern_type!r}")

    count = min(n, d)
    if pattern_type == "main_diagonal":
        positions = [(i, i) for i in range(count)]
    elif pattern_type == "anti_diagonal":
        positions = [(i, d - i - 1) for i in range(count)]
    elif pattern_type == "row":
        row = int(rng.integers(0, d))
        start_col = int(rng.integers(0, max(d - count, 0) + 1))
        positions = [(row, start_col + i) for i in range(count)]
    else:  # column
        col = int(rng.integers(0, d))
        start_row = int(rng.integers(0, max(d - count, 0) + 1))
        positions = [(start_row + i, col) for i in range(count)]
    return KernelPattern(pattern_type=pattern_type,
                         positions=tuple(positions), dim=d)


def generate_patterns(n: int, d: int, count: int,
                      rng: np.random.Generator,
                      pattern_types: tuple | None = None
                      ) -> list[KernelPattern]:
    """Sample ``count`` distinct patterns (best-effort de-duplication).

    ``pattern_types`` optionally restricts the arrangements drawn from
    (used by the pattern-family ablation).
    """
    allowed = pattern_types or PATTERN_TYPES
    seen: set[tuple] = set()
    patterns: list[KernelPattern] = []
    attempts = 0
    while len(patterns) < count and attempts < count * 20:
        attempts += 1
        pattern = generate_pattern(n, d, rng,
                                   pattern_type=str(rng.choice(allowed)))
        key = (pattern.pattern_type, pattern.positions)
        if key in seen:
            continue
        seen.add(key)
        patterns.append(pattern)
    return patterns


def pattern_mask(pattern: KernelPattern) -> np.ndarray:
    """Convenience alias for :meth:`KernelPattern.mask`."""
    return pattern.mask()


def pool_signature(patterns) -> tuple:
    """Hashable identity of a pattern pool, for content-keyed caches.

    Two pools with the same signature produce identical masks, so any
    computation keyed on (weights, pool, bits) may be shared between
    them.
    """
    return tuple((p.pattern_type, p.positions, p.dim) for p in patterns)
