"""Model-variant archive (format v1) — many packed models, one file.

Blob v4 (:mod:`repro.core.packing`) stores *one* compressed model per
file.  A deployed fleet needs many: the same detector compressed at
several (preset, bitwidth) operating points, shipped together so the
runtime's degradation ladder can hot-swap between them without a
re-trace.  This module packs any number of blob-v4 entries into one
checksummed, TOC-indexed archive, following the rocm-kpack layout
referenced in ROADMAP.md:

* **magic/version header** — ``b"UPAK"`` + version byte;
* **JSON TOC** — entry names with per-entry blake2b-128 digests,
  lengths and chunk references, plus the chunk table with absolute
  byte offsets into the data region; the TOC carries its own digest so
  a reader can trust the index even when the data region is damaged;
* **content-addressed chunk store** — each entry is split at its
  blob-v4 layer-payload boundaries and every segment is stored once,
  keyed by digest: identical packed layers *shared across variants*
  (same weights, bits and scheme — common for layers the bitwidth
  ladder leaves untouched) occupy one chunk no matter how many entries
  reference them;
* **lazy per-entry loading** — :class:`ArchiveReader` parses only the
  header and TOC up front; entry bytes are read (and digest-verified)
  on demand, chunk by chunk, so opening a fleet archive never touches
  the variants the ladder does not use;
* **salvage mode** — :meth:`ArchiveReader.salvage` verifies every
  entry and reports the corrupt ones instead of failing the whole
  archive; a truncated or bit-flipped entry never blocks restoring the
  intact ones.

Determinism: chunks are stored in order of first reference and the TOC
is serialized with sorted keys and canonical separators, so packing the
same entries in the same order is byte-identical — the golden archive
under ``tests/core/golden/`` pins this.

Typed errors mirror the blob hierarchy: :class:`ArchiveError` (base),
:class:`ArchiveCorruptionError`, :class:`ArchiveVersionError`.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from dataclasses import dataclass, field

from .packing import (_CHECKSUM_BYTES, _MAGIC, BlobError, _parse_manifest,
                      _read_exact, restore_model)

__all__ = ["ArchiveError", "ArchiveCorruptionError", "ArchiveVersionError",
           "ArchiveEntry", "DedupStats", "SalvageReport", "ArchiveWriter",
           "ArchiveReader", "pack_archive", "split_blob"]

_ARCHIVE_MAGIC = b"UPAK"
_ARCHIVE_VERSION = 1
_DIGEST_BYTES = 16


class ArchiveError(ValueError):
    """Base class for every model-archive failure."""


class ArchiveCorruptionError(ArchiveError):
    """The archive's bytes fail an integrity check (magic, digest, …)."""


class ArchiveVersionError(ArchiveCorruptionError):
    """The version byte is not one this reader supports.

    Subclasses :class:`ArchiveCorruptionError` for the same reason the
    blob hierarchy does: on a checksummed file an unexpected version
    byte is indistinguishable from a header bit flip.
    """


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=_DIGEST_BYTES).hexdigest()


def split_blob(blob: bytes) -> list[bytes]:
    """Split a blob-v4 into its dedup segments, concatenating back exactly.

    Segments: ``[header+IR+manifest, payload_1, …, payload_N,
    trailer]``.  The per-layer payloads are the dedup unit — two
    variants that compress a layer identically (same weights, bits,
    scheme) produce byte-identical payload segments.  Raises
    :class:`ArchiveError` when ``blob`` is not a structurally valid
    packed model.
    """
    try:
        if blob[:len(_MAGIC)] != _MAGIC:
            raise ArchiveError("entry is not a UPAQ packed model blob")
        buffer = io.BytesIO(blob)
        _read_exact(buffer, len(_MAGIC), "blob magic")
        _, count = struct.unpack(
            "<BI", _read_exact(buffer, 5, "blob header"))
        ir_len = struct.unpack(
            "<I", _read_exact(buffer, 4, "IR section length"))[0]
        _read_exact(buffer, ir_len, "IR section")
        entries = _parse_manifest(buffer, count)
        header_end = buffer.tell()
        segments = [blob[:header_end]]
        offset = header_end
        for entry in entries:
            end = offset + entry.payload_len
            if end > len(blob) - _CHECKSUM_BYTES:
                raise ArchiveError(
                    "blob payloads overrun the trailer — truncated or "
                    "inconsistent manifest")
            segments.append(blob[offset:end])
            offset = end
        if offset != len(blob) - _CHECKSUM_BYTES:
            raise ArchiveError(
                "blob has trailing bytes between payloads and trailer")
        segments.append(blob[offset:])
        return segments
    except ArchiveError:
        raise
    except (BlobError, struct.error, IndexError) as error:
        raise ArchiveError(
            f"entry is not a valid packed model blob: {error}") from error


@dataclass(frozen=True)
class ArchiveEntry:
    """One TOC entry: a named blob-v4 variant and where its bytes live."""

    name: str
    length: int
    #: blake2b-128 hex digest of the reassembled entry blob
    digest: str
    #: indices into the archive's chunk table, in concatenation order
    chunks: tuple
    #: free-form metadata recorded at pack time (model, preset, bits, …)
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DedupStats:
    """Content-addressed sharing accounting for one archive."""

    entries: int
    #: chunk references across all entries (pre-dedup count)
    chunks_referenced: int
    #: distinct chunks actually stored
    chunks_stored: int
    #: sum of entry lengths (what N separate blob files would occupy)
    logical_bytes: int
    #: bytes the data region actually holds
    stored_bytes: int

    @property
    def saved_bytes(self) -> int:
        return self.logical_bytes - self.stored_bytes

    @property
    def shared_chunks(self) -> int:
        return self.chunks_referenced - self.chunks_stored


@dataclass
class SalvageReport:
    """Outcome of a full-archive verification pass."""

    #: entry names whose bytes verified end to end, TOC order
    intact: list = field(default_factory=list)
    #: entry name → human-readable corruption reason
    corrupt: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.corrupt


class ArchiveWriter:
    """Accumulates named blob-v4 entries; :meth:`finish` emits the bytes.

    Entries are split at layer-payload boundaries and stored through a
    content-addressed chunk table — adding the same packed layer twice
    (under two variants) stores it once.  Add order is preserved in the
    TOC and in chunk storage order, so the output is a pure function of
    the (name, blob, meta) sequence.
    """

    def __init__(self):
        self._entries: dict[str, ArchiveEntry] = {}
        self._chunk_index: dict[str, int] = {}
        self._chunks: list[bytes] = []

    def add(self, name: str, blob: bytes, **meta) -> ArchiveEntry:
        """Add one packed-model blob under ``name``.

        ``meta`` keys (e.g. ``model=``, ``preset=``, ``bits=``) land in
        the TOC verbatim and come back on :class:`ArchiveEntry.meta`.
        Raises :class:`ArchiveError` on duplicate names or a blob that
        does not parse as a packed model.
        """
        if name in self._entries:
            raise ArchiveError(f"duplicate archive entry {name!r}")
        if not name:
            raise ArchiveError("archive entry name must be non-empty")
        indices = []
        for segment in split_blob(blob):
            key = _digest(segment)
            index = self._chunk_index.get(key)
            if index is None:
                index = len(self._chunks)
                self._chunk_index[key] = index
                self._chunks.append(segment)
            indices.append(index)
        entry = ArchiveEntry(name=name, length=len(blob),
                             digest=_digest(blob), chunks=tuple(indices),
                             meta=dict(meta))
        self._entries[name] = entry
        return entry

    @property
    def stats(self) -> DedupStats:
        return DedupStats(
            entries=len(self._entries),
            chunks_referenced=sum(len(e.chunks)
                                  for e in self._entries.values()),
            chunks_stored=len(self._chunks),
            logical_bytes=sum(e.length for e in self._entries.values()),
            stored_bytes=sum(len(c) for c in self._chunks))

    def finish(self) -> bytes:
        """Serialize: header + TOC(+digest) + data region + trailer."""
        if not self._entries:
            raise ArchiveError("cannot finish an empty archive")
        offsets = []
        position = 0
        for chunk in self._chunks:
            offsets.append(position)
            position += len(chunk)
        digests = {index: key
                   for key, index in self._chunk_index.items()}
        toc = {
            "chunks": [{"digest": digests[i], "length": len(chunk),
                        "offset": offsets[i]}
                       for i, chunk in enumerate(self._chunks)],
            # a list, not a mapping: sort_keys would alphabetize a
            # mapping and lose the pack order (= default ladder order)
            "entries": [
                {
                    "name": entry.name,
                    "chunks": list(entry.chunks),
                    "digest": entry.digest,
                    "length": entry.length,
                    "meta": entry.meta,
                } for entry in self._entries.values()
            ],
        }
        toc_bytes = json.dumps(toc, sort_keys=True,
                               separators=(",", ":")).encode()
        body = (_ARCHIVE_MAGIC
                + struct.pack("<B", _ARCHIVE_VERSION)
                + struct.pack("<I", len(toc_bytes)) + toc_bytes
                + hashlib.blake2b(toc_bytes,
                                  digest_size=_DIGEST_BYTES).digest()
                + b"".join(self._chunks))
        return body + hashlib.blake2b(
            body, digest_size=_DIGEST_BYTES).digest()


def pack_archive(named_blobs, metadata: dict | None = None) -> bytes:
    """One-shot archive from ``{name: blob}`` (+ optional per-name meta)."""
    writer = ArchiveWriter()
    metadata = metadata or {}
    for name, blob in named_blobs.items():
        writer.add(name, blob, **metadata.get(name, {}))
    return writer.finish()


class _ByteSource:
    """Random-access reads over bytes or a seekable binary file."""

    def __init__(self, source):
        if isinstance(source, (bytes, bytearray)):
            self._data = bytes(source)
            self._handle = None
        else:
            self._data = None
            self._handle = source

    def read_at(self, offset: int, length: int) -> bytes:
        if self._data is not None:
            return self._data[offset:offset + length]
        self._handle.seek(offset)
        return self._handle.read(length)

    def read_all(self) -> bytes:
        if self._data is not None:
            return self._data
        self._handle.seek(0)
        return self._handle.read()


class ArchiveReader:
    """Lazy, integrity-checking view over a model-variant archive.

    Construction parses only the fixed header and the TOC (verified
    against its embedded digest); entry bytes are fetched and verified
    on :meth:`load`.  Accepts raw ``bytes`` or any seekable binary
    file object; :meth:`open` is the path convenience.
    """

    def __init__(self, source):
        #: Filesystem path when constructed via :meth:`open`, else
        #: ``None`` — lets consumers that must rebuild the reader in
        #: another process (serving replica specs) ship the path
        #: instead of the bytes.
        self.path: str | None = None
        self._source = _ByteSource(source)
        head_len = len(_ARCHIVE_MAGIC) + 5
        head = self._source.read_at(0, head_len)
        if head[:len(_ARCHIVE_MAGIC)] != _ARCHIVE_MAGIC:
            raise ArchiveCorruptionError("not a UPAQ model archive")
        if len(head) < head_len:
            raise ArchiveCorruptionError(
                "archive truncated inside the fixed header")
        version, toc_len = struct.unpack(
            "<BI", head[len(_ARCHIVE_MAGIC):])
        if version != _ARCHIVE_VERSION:
            raise ArchiveVersionError(
                f"unsupported archive version {version} (this reader "
                f"handles version {_ARCHIVE_VERSION})")
        toc_bytes = self._source.read_at(head_len, toc_len)
        toc_digest = self._source.read_at(head_len + toc_len,
                                          _DIGEST_BYTES)
        if len(toc_bytes) != toc_len or len(toc_digest) != _DIGEST_BYTES:
            raise ArchiveCorruptionError("archive truncated inside the TOC")
        if hashlib.blake2b(toc_bytes,
                           digest_size=_DIGEST_BYTES).digest() \
                != toc_digest:
            raise ArchiveCorruptionError(
                "archive TOC failed its digest — the index cannot be "
                "trusted")
        try:
            toc = json.loads(toc_bytes.decode())
            self._chunks = [(chunk["digest"], int(chunk["offset"]),
                             int(chunk["length"]))
                            for chunk in toc["chunks"]]
            self._entries = {
                spec["name"]: ArchiveEntry(
                    name=spec["name"], length=int(spec["length"]),
                    digest=spec["digest"],
                    chunks=tuple(int(i) for i in spec["chunks"]),
                    meta=dict(spec.get("meta", {})))
                for spec in toc["entries"]}
        except (KeyError, TypeError, ValueError) as error:
            raise ArchiveCorruptionError(
                f"malformed archive TOC: {error}") from error
        self._data_start = head_len + toc_len + _DIGEST_BYTES

    @classmethod
    def open(cls, path) -> "ArchiveReader":
        reader = cls(open(path, "rb"))
        reader.path = str(path)
        return reader

    # ------------------------------------------------------------------
    @property
    def names(self) -> list[str]:
        """Entry names in TOC (= pack) order."""
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, name: str) -> ArchiveEntry:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries) or "<none>"
            raise KeyError(
                f"no archive entry {name!r}; known: {known}") from None

    @property
    def entries(self) -> list[ArchiveEntry]:
        return list(self._entries.values())

    @property
    def stats(self) -> DedupStats:
        return DedupStats(
            entries=len(self._entries),
            chunks_referenced=sum(len(e.chunks)
                                  for e in self._entries.values()),
            chunks_stored=len(self._chunks),
            logical_bytes=sum(e.length for e in self._entries.values()),
            stored_bytes=sum(length for _, _, length in self._chunks))

    # ------------------------------------------------------------------
    def _chunk(self, index: int) -> bytes:
        try:
            digest, offset, length = self._chunks[index]
        except IndexError:
            raise ArchiveCorruptionError(
                f"entry references chunk {index} beyond the chunk "
                f"table") from None
        data = self._source.read_at(self._data_start + offset, length)
        if len(data) != length:
            raise ArchiveCorruptionError(
                f"chunk {index} truncated: wanted {length} bytes, got "
                f"{len(data)}")
        if _digest(data) != digest:
            raise ArchiveCorruptionError(
                f"chunk {index} failed its content digest")
        return data

    def load(self, name: str) -> bytes:
        """The verified blob-v4 bytes of one entry (lazy, per chunk)."""
        entry = self.entry(name)
        blob = b"".join(self._chunk(index) for index in entry.chunks)
        if len(blob) != entry.length or _digest(blob) != entry.digest:
            raise ArchiveCorruptionError(
                f"entry {name!r} failed its digest after reassembly")
        return blob

    def restore(self, name: str, model, strict: bool = True):
        """Restore one entry into ``model``; returns the RestoreReport.

        The archive-level digests run first (:meth:`load`), then the
        blob's own integrity checks — double bookkeeping, by design:
        the archive detects storage corruption, the blob detects a bad
        pack.
        """
        return restore_model(self.load(name), model, strict=strict)

    def salvage(self) -> SalvageReport:
        """Verify every entry; corrupt ones are reported, not raised.

        The per-entry, per-chunk digests make damage local: a truncated
        file or a flipped bit corrupts only the entries whose chunks it
        touches, and every other entry stays loadable.
        """
        report = SalvageReport()
        for name in self._entries:
            try:
                self.load(name)
            except ArchiveError as error:
                report.corrupt[name] = str(error)
            else:
                report.intact.append(name)
        return report

    def verify(self) -> None:
        """Strict whole-file check: trailer checksum plus every entry."""
        data = self._source.read_all()
        body, trailer = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
        if hashlib.blake2b(body, digest_size=_DIGEST_BYTES).digest() \
                != trailer:
            raise ArchiveCorruptionError(
                "archive failed its trailer checksum — at least one "
                "byte is corrupt")
        report = self.salvage()
        if not report.complete:
            name, reason = next(iter(report.corrupt.items()))
            raise ArchiveCorruptionError(
                f"entry {name!r} is corrupt: {reason}")

    def summary(self) -> str:
        stats = self.stats
        return (f"archive: {stats.entries} entries, "
                f"{stats.chunks_stored} chunks stored "
                f"({stats.shared_chunks} deduplicated), "
                f"{stats.stored_bytes / 1024:.1f} KiB stored / "
                f"{stats.logical_bytes / 1024:.1f} KiB logical")
