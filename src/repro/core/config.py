"""UPAQ configuration and the paper's HCK/LCK presets."""

from __future__ import annotations

from dataclasses import dataclass, field

from .efficiency import EfficiencyWeights

__all__ = ["UPAQConfig", "hck_config", "lck_config"]


@dataclass
class UPAQConfig:
    """All knobs of the UPAQ compression pipeline.

    The two presets from the paper:

    * **HCK** (high-compression kernels): 2 non-zeros per 3×3 kernel,
      aggressive 4/8-bit quantization.
    * **LCK** (low-compression kernels): 3 non-zeros per 3×3 kernel,
      gentler 8/16-bit quantization.
    """

    name: str = "UPAQ"
    n_nonzero_kxk: int = 3          # retained weights per k×k kernel
    n_nonzero_1x1: int = 3          # retained weights per lifted 1×1 tile
    quant_bits: tuple = (4, 6, 8, 12, 16)
    tile: int = 3                   # 1×1 → tile×tile transformation size
    num_patterns: int = 8           # patterns drawn per root layer
    weights: EfficiencyWeights = field(default_factory=EfficiencyWeights)
    device: str = "jetson"          # device model scoring E_s
    finetune_epochs: int = 3        # masked fine-tuning after compression
    finetune_lr: float = 5e-4
    #: Apply Algorithm 5's 1×1→k×k tile *pruning*.  Off by default:
    #: line patterns on a 3×3 tile retain at most 3 of 9 weights, which
    #: reduced-scale models cannot absorb in their 1×1 feature/head
    #: layers; the default instead gives 1×1 layers the mixed-precision
    #: per-channel quantization search ("dynamically adjusting the 1×1
    #: kernel weights", paper §II).  Enable for the Algorithm 5 path and
    #: the DESIGN.md §6 ablation.
    compress_1x1_layers: bool = False
    #: Connectivity pruning (paper §III.A): additionally remove whole
    #: kernels whose retained (pattern-masked) energy falls in this
    #: bottom percentile, raising sparsity beyond what patterns alone
    #: reach.  0 disables it — the UPAQ default, since the paper notes
    #: it "can end up reducing model accuracy by removing critical
    #: weights"; R-TOSS relies on it.
    connectivity_percentile: float = 0.0
    use_root_groups: bool = True        # ablation: Algorithm 1 on/off
    pattern_types: tuple | None = None  # ablation: restrict Algorithm 2
    seed: int = 0
    #: Worker count for the candidate search (Algorithm 3's root-layer
    #: loop).  1 runs fully serial; results are bit-identical for every
    #: worker count and backend because pattern pools are seeded from
    #: ``(seed, crc32(layer weights))``, not from scheduling order.
    search_workers: int = 1
    #: ``auto`` | ``serial`` | ``thread`` | ``process`` — ``auto`` picks
    #: a process pool where fork is available (sidesteps the GIL), a
    #: thread pool otherwise.
    search_backend: str = "auto"
    #: Entry cap of the content-keyed memo caches (candidate evaluations
    #: and device latency/energy lookups).
    memo_cache_size: int = 256
    #: Per-task deadline (seconds) for pooled search backends; ``None``
    #: waits forever.  A task that times out is cancelled and retried.
    search_timeout_s: float | None = None
    #: Extra attempts granted to a search task that raised or timed out
    #: before the run is abandoned (exponential backoff between tries).
    search_retries: int = 0
    #: Base sleep between retry attempts (doubles per attempt).
    search_backoff_s: float = 0.05
    #: Path of a JSONL checkpoint journal for the candidate search.
    #: When set, every completed task is persisted as it finishes and an
    #: interrupted ``compress()`` resumes from it instead of
    #: re-evaluating finished groups (``SearchStats.resumed_groups``).
    search_journal: str | None = None


def hck_config(**overrides) -> UPAQConfig:
    """High-compression preset (paper's UPAQ (HCK) column)."""
    config = UPAQConfig(name="UPAQ (HCK)", n_nonzero_kxk=2, n_nonzero_1x1=2,
                        quant_bits=(4, 6, 8))
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def lck_config(**overrides) -> UPAQConfig:
    """Accuracy-biased preset (paper's UPAQ (LCK) column)."""
    config = UPAQConfig(name="UPAQ (LCK)", n_nonzero_kxk=3, n_nonzero_1x1=3,
                        quant_bits=(8, 12, 16))
    for key, value in overrides.items():
        setattr(config, key, value)
    return config
