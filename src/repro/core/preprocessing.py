"""UPAQ preprocessing stage (paper Algorithm 1).

Computes the model's computational graph through a traced forward/
backward structure (``repro.nn.compute_graph``) and runs DFS to group
layers into *root → leaf* sets.  A layer joins the group of its nearest
upstream layer with matching kernel properties (same spatial kernel
size, so a k×k mask transfers); otherwise it roots its own group.
UPAQ then searches patterns/bitwidths only on root layers and replicates
the winning choice onto leaves, shrinking the search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.nn.graph import compute_graph, layer_map
from repro.nn.module import Module

__all__ = ["LayerGroups", "preprocess_model", "find_root"]


@dataclass
class LayerGroups:
    """Root→leaves grouping of a model's kernel layers."""

    groups: dict = field(default_factory=dict)   # root name → [leaf names]
    roots: dict = field(default_factory=dict)    # layer name → root name

    def group_of(self, layer_name: str) -> list[str]:
        return self.groups[self.roots[layer_name]]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_layers(self) -> int:
        return sum(len(members) for members in self.groups.values())

    def __iter__(self):
        return iter(self.groups.items())


def _kernel_signature(module: Module) -> tuple:
    """Kernel properties that must match for a pattern to transfer."""
    kernel_size = getattr(module, "kernel_size", 1)
    return (type(module).__name__, kernel_size)


def find_root(graph: nx.DiGraph, layer: str, layers: dict,
              roots: dict) -> str:
    """DFS upward from ``layer`` for the nearest compatible ancestor root.

    Mirrors the paper's ``find_root``: a layer with no compatible
    predecessor becomes its own root; otherwise it inherits the root of
    the closest compatible predecessor (BFS over incoming edges).
    """
    signature = _kernel_signature(layers[layer])
    frontier = list(graph.predecessors(layer))
    seen = set(frontier)
    while frontier:
        next_frontier: list[str] = []
        for predecessor in frontier:
            if _kernel_signature(layers[predecessor]) == signature \
                    and predecessor in roots:
                return roots[predecessor]
            for upstream in graph.predecessors(predecessor):
                if upstream not in seen:
                    seen.add(upstream)
                    next_frontier.append(upstream)
        frontier = next_frontier
    return layer


def preprocess_model(model: Module, *example_inputs) -> LayerGroups:
    """Algorithm 1: group the model's layers into root→leaf sets."""
    graph = compute_graph(model, *example_inputs)
    layers = layer_map(model)
    order = list(nx.topological_sort(graph))

    result = LayerGroups()
    for layer_name in order:
        root = find_root(graph, layer_name, layers, result.roots)
        result.roots[layer_name] = root
        result.groups.setdefault(root, [])
        result.groups[root].append(layer_name)
    # Layers outside the traced graph (should not happen, but keep total).
    for layer_name in layers:
        if layer_name not in result.roots:
            result.roots[layer_name] = layer_name
            result.groups[layer_name] = [layer_name]
    return result
