"""UPAQ preprocessing stage (paper Algorithm 1).

Groups a model's kernel layers into *root → leaf* sets by walking the
layer-level IR (:class:`repro.ir.ModelIR`): a layer joins the group of
its nearest upstream layer with matching kernel properties (same kind
and spatial kernel size, so a k×k mask transfers); otherwise it roots
its own group.  UPAQ then searches patterns/bitwidths only on root
layers and replicates the winning choice onto leaves, shrinking the
search space.

:func:`group_layers` consumes an already-extracted IR — the normal path
inside :class:`~repro.core.compressor.UPAQCompressor`, which extracts
the IR once and shares it with profiling and plan lowering.
:func:`preprocess_model` remains the one-call convenience wrapper
(extract, then group); it no longer re-traces anything itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.nn.module import Module

__all__ = ["LayerGroups", "preprocess_model", "group_layers", "find_root"]

#: Module class name → IR node kind, so module dicts and IR node dicts
#: produce identical grouping signatures.
_KIND_BY_TYPE = {"Conv2d": "conv", "ConvTranspose2d": "deconv",
                 "Linear": "linear"}


@dataclass
class LayerGroups:
    """Root→leaves grouping of a model's kernel layers."""

    groups: dict = field(default_factory=dict)   # root name → [leaf names]
    roots: dict = field(default_factory=dict)    # layer name → root name

    def group_of(self, layer_name: str) -> list[str]:
        return self.groups[self.roots[layer_name]]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_layers(self) -> int:
        return sum(len(members) for members in self.groups.values())

    def __iter__(self):
        return iter(self.groups.items())


def _kernel_signature(layer) -> tuple:
    """Kernel properties that must match for a pattern to transfer.

    Accepts either an :class:`~repro.ir.IRNode` (which carries ``kind``)
    or a live module; both map onto the same (kind, kernel_size) space.
    """
    kind = getattr(layer, "kind", None)
    if kind is None:
        kind = _KIND_BY_TYPE.get(type(layer).__name__,
                                 type(layer).__name__)
    return (kind, getattr(layer, "kernel_size", 1))


def find_root(graph: nx.DiGraph, layer: str, layers: dict,
              roots: dict) -> str:
    """DFS upward from ``layer`` for the nearest compatible ancestor root.

    Mirrors the paper's ``find_root``: a layer with no compatible
    predecessor becomes its own root; otherwise it inherits the root of
    the closest compatible predecessor (BFS over incoming edges).
    ``layers`` may map names to modules or to IR nodes.
    """
    signature = _kernel_signature(layers[layer])
    frontier = list(graph.predecessors(layer))
    seen = set(frontier)
    while frontier:
        next_frontier: list[str] = []
        for predecessor in frontier:
            if _kernel_signature(layers[predecessor]) == signature \
                    and predecessor in roots:
                return roots[predecessor]
            for upstream in graph.predecessors(predecessor):
                if upstream not in seen:
                    seen.add(upstream)
                    next_frontier.append(upstream)
        frontier = next_frontier
    return layer


def group_layers(ir) -> LayerGroups:
    """Algorithm 1 over an extracted IR: root→leaf sets from IR edges."""
    graph = ir.graph()
    nodes = ir.by_name()
    result = LayerGroups()
    for node in ir:
        root = find_root(graph, node.name, nodes, result.roots)
        result.roots[node.name] = root
        result.groups.setdefault(root, [])
        result.groups[root].append(node.name)
    return result


def preprocess_model(model: Module, *example_inputs) -> LayerGroups:
    """Algorithm 1 one-call form: extract the IR, then group it."""
    from repro.ir import extract_ir
    return group_layers(extract_ir(model, *example_inputs))
