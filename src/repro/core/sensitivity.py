"""Per-layer quantization sensitivity analysis.

The paper motivates mixed precision with "a distinct difference in
sensitivity to quantization from layer to layer".  This module measures
that difference directly: for each kernel layer, quantize *only that
layer* at each candidate bitwidth and record (a) the weight-space SQNR
and (b) the perturbation of the model's output on a probe input.  The
resulting profile shows which layers tolerate 4-bit weights and which
need 16 — exactly the structure UPAQ's efficiency-score search exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph import layer_map
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

from .quantizer import mp_quantizer, sqnr_db

__all__ = ["LayerSensitivity", "SensitivityProfile", "analyze_sensitivity",
           "suggest_bit_allocation"]


@dataclass
class LayerSensitivity:
    """Quantization response of one layer across bitwidths."""

    layer: str
    weight_count: int
    sqnr_db_by_bits: dict = field(default_factory=dict)
    output_error_by_bits: dict = field(default_factory=dict)

    def min_bits_for(self, max_output_error: float) -> int:
        """Smallest bitwidth whose output perturbation stays tolerable."""
        for bits in sorted(self.output_error_by_bits):
            if self.output_error_by_bits[bits] <= max_output_error:
                return bits
        return max(self.output_error_by_bits)


@dataclass
class SensitivityProfile:
    layers: list[LayerSensitivity] = field(default_factory=list)

    def by_name(self) -> dict:
        return {layer.layer: layer for layer in self.layers}

    def most_sensitive(self, bits: int = 8) -> list[str]:
        """Layer names sorted by output error at ``bits`` (worst first)."""
        return [l.layer for l in sorted(
            self.layers,
            key=lambda l: -l.output_error_by_bits.get(bits, 0.0))]


def _flatten_outputs(result) -> np.ndarray:
    if isinstance(result, Tensor):
        return result.data.reshape(-1)
    if isinstance(result, dict):
        return np.concatenate([_flatten_outputs(v)
                               for v in result.values()])
    if isinstance(result, (list, tuple)):
        return np.concatenate([_flatten_outputs(v) for v in result])
    return np.zeros(0, dtype=np.float32)


def analyze_sensitivity(model: Module, *example_inputs,
                        quant_bits=(4, 6, 8, 12, 16)) -> SensitivityProfile:
    """Quantize one layer at a time; measure SQNR and output drift."""
    layers = layer_map(model)
    model.eval()
    with no_grad():
        reference = _flatten_outputs(model(*example_inputs))
    ref_norm = float(np.linalg.norm(reference)) or 1.0

    profile = SensitivityProfile()
    for name, module in layers.items():
        original = module.weight.data.copy()
        entry = LayerSensitivity(layer=name, weight_count=original.size)
        for bits in quant_bits:
            result = mp_quantizer(original, bits)
            module.weight.data = result.values
            with no_grad():
                perturbed = _flatten_outputs(model(*example_inputs))
            error = float(np.linalg.norm(perturbed - reference)) / ref_norm
            entry.sqnr_db_by_bits[bits] = sqnr_db(result.sqnr)
            entry.output_error_by_bits[bits] = error
            module.weight.data = original
        profile.layers.append(entry)
    return profile


def suggest_bit_allocation(profile: SensitivityProfile,
                           max_output_error: float = 0.05) -> dict:
    """Greedy per-layer bit assignment from a sensitivity profile.

    A cheap alternative to UPAQ's E_s search: give every layer the
    smallest bitwidth whose solo-quantization output error is below the
    budget.  Useful as a sanity baseline for the mixed-precision search.
    """
    return {entry.layer: entry.min_bits_for(max_output_error)
            for entry in profile.layers}
