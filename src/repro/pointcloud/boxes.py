"""3D bounding boxes and IoU geometry.

Boxes follow the KITTI/OpenPCDet convention used by both detectors:
center ``(x, y, z)`` in LiDAR coordinates (x forward, y left, z up, with
z at the box *center*), size ``(dx, dy, dz)`` (length, width, height),
and ``yaw`` rotation around +z.  BEV overlap of rotated boxes is computed
exactly with Sutherland–Hodgman polygon clipping; 3D IoU multiplies BEV
intersection by the z-extent overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Box3D", "boxes_to_array", "array_to_boxes", "bev_corners",
    "polygon_area", "clip_polygon", "bev_intersection_area",
    "iou_bev", "iou_3d", "iou_matrix_bev", "iou_matrix_3d",
    "points_in_box", "CLASS_NAMES", "CLASS_IDS",
]

CLASS_NAMES = ("Car", "Pedestrian", "Cyclist")
CLASS_IDS = {name: i for i, name in enumerate(CLASS_NAMES)}


@dataclass
class Box3D:
    """An oriented 3D bounding box with a class label and score."""

    x: float
    y: float
    z: float
    dx: float
    dy: float
    dz: float
    yaw: float
    label: str = "Car"
    score: float = 1.0
    difficulty: int = 0  # 0 easy, 1 moderate, 2 hard (KITTI convention)
    meta: dict = field(default_factory=dict)

    @property
    def center(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=np.float32)

    @property
    def size(self) -> np.ndarray:
        return np.array([self.dx, self.dy, self.dz], dtype=np.float32)

    def as_vector(self) -> np.ndarray:
        """(x, y, z, dx, dy, dz, yaw) array."""
        return np.array([self.x, self.y, self.z,
                         self.dx, self.dy, self.dz, self.yaw],
                        dtype=np.float32)

    def corners(self) -> np.ndarray:
        """(8, 3) corner coordinates, bottom face first."""
        dx, dy, dz = self.dx / 2, self.dy / 2, self.dz / 2
        template = np.array([
            [dx, dy, -dz], [dx, -dy, -dz], [-dx, -dy, -dz], [-dx, dy, -dz],
            [dx, dy, dz], [dx, -dy, dz], [-dx, -dy, dz], [-dx, dy, dz],
        ], dtype=np.float32)
        c, s = np.cos(self.yaw), np.sin(self.yaw)
        rot = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=np.float32)
        return template @ rot.T + self.center

    def volume(self) -> float:
        return float(self.dx * self.dy * self.dz)

    def range_from_origin(self) -> float:
        """Ground distance of the box center from the sensor."""
        return float(np.hypot(self.x, self.y))


def boxes_to_array(boxes: list[Box3D]) -> np.ndarray:
    """Stack boxes into an (N, 7) array of [x y z dx dy dz yaw]."""
    if not boxes:
        return np.zeros((0, 7), dtype=np.float32)
    return np.stack([b.as_vector() for b in boxes])


def array_to_boxes(array: np.ndarray, labels=None, scores=None) -> list[Box3D]:
    """Inverse of :func:`boxes_to_array`."""
    boxes = []
    for i, row in enumerate(np.asarray(array, dtype=np.float32)):
        boxes.append(Box3D(
            *[float(v) for v in row[:7]],
            label=labels[i] if labels is not None else "Car",
            score=float(scores[i]) if scores is not None else 1.0,
        ))
    return boxes


def bev_corners(box: np.ndarray) -> np.ndarray:
    """(4, 2) BEV footprint corners of a [x y z dx dy dz yaw] box."""
    x, y = box[0], box[1]
    dx, dy = box[3] / 2, box[4] / 2
    yaw = box[6]
    template = np.array([[dx, dy], [dx, -dy], [-dx, -dy], [-dx, dy]],
                        dtype=np.float64)
    c, s = np.cos(yaw), np.sin(yaw)
    rot = np.array([[c, -s], [s, c]])
    return template @ rot.T + np.array([x, y])


def polygon_area(poly: np.ndarray) -> float:
    """Signed shoelace area of a 2D polygon (positive if CCW)."""
    if len(poly) < 3:
        return 0.0
    x, y = poly[:, 0], poly[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def clip_polygon(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Sutherland–Hodgman clipping of ``subject`` against convex ``clip``.

    Both polygons must be wound counter-clockwise.  Returns the (possibly
    empty) intersection polygon.
    """
    output = list(subject)
    n = len(clip)
    for i in range(n):
        if not output:
            break
        a = clip[i]
        b = clip[(i + 1) % n]
        edge = b - a
        input_list = output
        output = []

        def inside(p):
            return edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0]) >= -1e-12

        m = len(input_list)
        for j in range(m):
            current = input_list[j]
            prev = input_list[j - 1]
            cur_in = inside(current)
            prev_in = inside(prev)
            if cur_in:
                if not prev_in:
                    output.append(_segment_intersection(prev, current, a, b))
                output.append(current)
            elif prev_in:
                output.append(_segment_intersection(prev, current, a, b))
    return np.array(output) if output else np.zeros((0, 2))


def _segment_intersection(p1, p2, a, b) -> np.ndarray:
    """Intersection of line p1→p2 with (infinite) line a→b."""
    d1 = p2 - p1
    d2 = b - a
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) < 1e-12:
        return p2
    t = ((a[0] - p1[0]) * d2[1] - (a[1] - p1[1]) * d2[0]) / denom
    return p1 + t * d1


def _ccw(poly: np.ndarray) -> np.ndarray:
    return poly if polygon_area(poly) >= 0 else poly[::-1]


def bev_intersection_area(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Exact BEV overlap area of two [x y z dx dy dz yaw] boxes."""
    pa = _ccw(bev_corners(box_a))
    pb = _ccw(bev_corners(box_b))
    inter = clip_polygon(pa, pb)
    return abs(polygon_area(inter))


def iou_bev(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Rotated IoU of the BEV footprints."""
    inter = bev_intersection_area(box_a, box_b)
    area_a = float(box_a[3] * box_a[4])
    area_b = float(box_b[3] * box_b[4])
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def iou_3d(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Full 3D IoU: BEV intersection × vertical overlap."""
    inter_bev = bev_intersection_area(box_a, box_b)
    za_lo, za_hi = box_a[2] - box_a[5] / 2, box_a[2] + box_a[5] / 2
    zb_lo, zb_hi = box_b[2] - box_b[5] / 2, box_b[2] + box_b[5] / 2
    overlap_z = max(0.0, min(za_hi, zb_hi) - max(za_lo, zb_lo))
    inter = inter_bev * overlap_z
    vol_a = float(box_a[3] * box_a[4] * box_a[5])
    vol_b = float(box_b[3] * box_b[4] * box_b[5])
    union = vol_a + vol_b - inter
    return inter / union if union > 0 else 0.0


def _pairwise(boxes_a: np.ndarray, boxes_b: np.ndarray, fn) -> np.ndarray:
    matrix = np.zeros((len(boxes_a), len(boxes_b)), dtype=np.float32)
    for i, box_a in enumerate(boxes_a):
        # Cheap circumscribed-circle rejection before exact clipping.
        radius_a = 0.5 * np.hypot(box_a[3], box_a[4])
        for j, box_b in enumerate(boxes_b):
            radius_b = 0.5 * np.hypot(box_b[3], box_b[4])
            dist = np.hypot(box_a[0] - box_b[0], box_a[1] - box_b[1])
            if dist > radius_a + radius_b:
                continue
            matrix[i, j] = fn(box_a, box_b)
    return matrix


def iou_matrix_bev(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """(Na, Nb) matrix of rotated BEV IoUs."""
    return _pairwise(boxes_a, boxes_b, iou_bev)


def iou_matrix_3d(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """(Na, Nb) matrix of 3D IoUs."""
    return _pairwise(boxes_a, boxes_b, iou_3d)


def points_in_box(points: np.ndarray, box: Box3D,
                  margin: float = 0.0) -> np.ndarray:
    """Boolean mask of LiDAR points inside an oriented box."""
    local = points[:, :3] - box.center
    c, s = np.cos(-box.yaw), np.sin(-box.yaw)
    x = local[:, 0] * c - local[:, 1] * s
    y = local[:, 0] * s + local[:, 1] * c
    z = local[:, 2]
    return ((np.abs(x) <= box.dx / 2 + margin)
            & (np.abs(y) <= box.dy / 2 + margin)
            & (np.abs(z) <= box.dz / 2 + margin))
