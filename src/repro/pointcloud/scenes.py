"""Synthetic KITTI-like driving scenes.

Stands in for the KITTI dataset: each scene is a forward-facing road
strip populated with cars, pedestrians and cyclists at plausible poses,
scanned by the simulated LiDAR (:mod:`repro.pointcloud.lidar`) and
rendered by the synthetic camera (:mod:`repro.camera.render`).
Difficulty follows KITTI's spirit: distance and occlusion push objects
from *easy* toward *hard*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .boxes import Box3D, iou_matrix_bev, boxes_to_array
from .lidar import LidarConfig, LidarScanner

__all__ = ["SceneConfig", "Scene", "SceneGenerator", "make_dataset"]

# Mean object dimensions (dx=length, dy=width, dz=height), from KITTI stats.
_CLASS_DIMS = {
    "Car": (3.9, 1.6, 1.56),
    "Pedestrian": (0.8, 0.6, 1.73),
    "Cyclist": (1.76, 0.6, 1.73),
}
_CLASS_DIM_STD = {
    "Car": (0.4, 0.1, 0.1),
    "Pedestrian": (0.1, 0.1, 0.1),
    "Cyclist": (0.2, 0.1, 0.1),
}
_CLASS_REFLECTIVITY = {"Car": 0.7, "Pedestrian": 0.4, "Cyclist": 0.5}


@dataclass
class SceneConfig:
    """Knobs for scene content and the attached sensors."""

    x_range: tuple = (5.0, 48.0)      # forward extent of object placement
    y_range: tuple = (-16.0, 16.0)    # lateral extent
    max_cars: int = 6
    max_pedestrians: int = 3
    max_cyclists: int = 2
    lane_width: float = 3.5
    lidar: LidarConfig = field(default_factory=LidarConfig)
    min_points_per_object: int = 5    # objects with fewer points get culled
    easy_range: float = 18.0          # distance thresholds for difficulty
    moderate_range: float = 32.0


@dataclass
class Scene:
    """One synthetic frame: LiDAR points, camera image, and labels."""

    points: np.ndarray                 # (N, 4) x y z intensity
    boxes: list[Box3D]                 # ground-truth annotations
    image: np.ndarray | None = None    # (3, H, W) float image, optional
    calib: dict = field(default_factory=dict)
    frame_id: int = 0


class SceneGenerator:
    """Randomized but reproducible generator of KITTI-like scenes."""

    def __init__(self, config: SceneConfig | None = None, seed: int = 0):
        self.config = config or SceneConfig()
        self.seed = seed

    def _sample_box(self, rng: np.random.Generator, label: str,
                    lane: float | None = None) -> Box3D:
        cfg = self.config
        dims = np.array(_CLASS_DIMS[label])
        dims = dims + rng.normal(0, _CLASS_DIM_STD[label])
        dims = np.maximum(dims, 0.3)
        x = rng.uniform(*cfg.x_range)
        if lane is not None:
            y = lane + rng.normal(0, 0.3)
        else:
            y = rng.uniform(*cfg.y_range)
        if label == "Car":
            yaw = rng.choice([0.0, np.pi]) + rng.normal(0, 0.08)
        else:
            yaw = rng.uniform(-np.pi, np.pi)
        return Box3D(float(x), float(y), float(dims[2] / 2),
                     float(dims[0]), float(dims[1]), float(dims[2]),
                     float(yaw), label=label,
                     meta={"reflectivity": _CLASS_REFLECTIVITY[label]})

    def _place_objects(self, rng: np.random.Generator) -> list[Box3D]:
        cfg = self.config
        boxes: list[Box3D] = []
        lanes = [-cfg.lane_width / 2, cfg.lane_width / 2,
                 -3 * cfg.lane_width / 2, 3 * cfg.lane_width / 2]
        n_cars = rng.integers(1, cfg.max_cars + 1)
        n_peds = rng.integers(0, cfg.max_pedestrians + 1)
        n_cyc = rng.integers(0, cfg.max_cyclists + 1)
        wanted = (["Car"] * n_cars + ["Pedestrian"] * n_peds
                  + ["Cyclist"] * n_cyc)
        for label in wanted:
            lane = float(rng.choice(lanes)) if label == "Car" else None
            for _ in range(10):  # rejection sampling against overlap
                candidate = self._sample_box(rng, label, lane)
                if not boxes:
                    boxes.append(candidate)
                    break
                ious = iou_matrix_bev(
                    boxes_to_array([candidate]), boxes_to_array(boxes))
                if ious.max() < 1e-3:
                    boxes.append(candidate)
                    break
        return boxes

    def _assign_difficulty(self, boxes: list[Box3D],
                           points: np.ndarray) -> list[Box3D]:
        from .boxes import points_in_box
        cfg = self.config
        kept = []
        for box in boxes:
            n_points = int(points_in_box(points, box).sum())
            box.meta["num_points"] = n_points
            if n_points < cfg.min_points_per_object:
                continue
            distance = box.range_from_origin()
            if distance <= cfg.easy_range and n_points >= 40:
                box.difficulty = 0
            elif distance <= cfg.moderate_range and n_points >= 15:
                box.difficulty = 1
            else:
                box.difficulty = 2
            kept.append(box)
        return kept

    def generate(self, frame_id: int = 0,
                 with_image: bool = True) -> Scene:
        """Generate scene ``frame_id`` (deterministic per generator seed)."""
        rng = np.random.default_rng(self.seed * 100003 + frame_id)
        boxes = self._place_objects(rng)
        scanner = LidarScanner(self.config.lidar, rng=rng)
        points = scanner.scan(boxes)
        boxes = self._assign_difficulty(boxes, points)
        image = None
        calib: dict = {}
        if with_image:
            from repro.camera import CameraModel, render_scene
            camera = CameraModel.kitti_like()
            image = render_scene(camera, boxes, rng=rng)
            calib = {"K": camera.intrinsics(), "height": camera.height}
        return Scene(points=points, boxes=boxes, image=image,
                     calib=calib, frame_id=frame_id)


def make_dataset(num_frames: int, config: SceneConfig | None = None,
                 seed: int = 0, with_image: bool = True,
                 splits=(0.8, 0.1, 0.1)) -> dict[str, list[Scene]]:
    """Generate frames and split them 80:10:10 like the paper's KITTI use.

    Returns a dict with ``train``/``val``/``test`` scene lists.
    """
    if abs(sum(splits) - 1.0) > 1e-6:
        raise ValueError("splits must sum to 1")
    generator = SceneGenerator(config, seed=seed)
    scenes = [generator.generate(i, with_image=with_image)
              for i in range(num_frames)]
    n_train = int(round(num_frames * splits[0]))
    n_val = int(round(num_frames * splits[1]))
    return {
        "train": scenes[:n_train],
        "val": scenes[n_train:n_train + n_val],
        "test": scenes[n_train + n_val:],
    }
