"""Synthetic KITTI-like driving scenes and the adverse-scenario matrix.

Stands in for the KITTI dataset: each scene is a forward-facing road
strip populated with cars, pedestrians and cyclists at plausible poses,
scanned by the simulated LiDAR (:mod:`repro.pointcloud.lidar`) and
rendered by the synthetic camera (:mod:`repro.camera.render`).
Difficulty follows KITTI's spirit: distance and occlusion push objects
from *easy* toward *hard*.

Beyond the parametric base scene, :data:`SCENARIOS` names a matrix of
adverse **scenario families** (dense traffic, occlusion chains,
night/rain noise, sensor-dropout bursts, adversarial near-duplicate
boxes, long-range sparsity) built on the same generator.  Every family
is fully seed-deterministic — ``ScenarioGenerator(spec, seed)`` draws
every decision from a generator keyed on ``(seed, family, frame_id)``,
so the same seed always reproduces bit-identical point clouds and
ground truth (pinned by golden digests in
``tests/pointcloud/golden/``).  The fuzzing harness
(:mod:`repro.fuzzing`) sweeps these families against compression
presets and runtime conditions.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .boxes import Box3D, iou_matrix_bev, boxes_to_array
from .lidar import LidarConfig, LidarScanner

__all__ = ["SceneConfig", "Scene", "SceneGenerator", "make_dataset",
           "ScenarioSpec", "ScenarioGenerator", "SCENARIOS",
           "scenario_names", "get_scenario", "make_scenario_scenes",
           "scene_digest", "scenario_digest"]

# Mean object dimensions (dx=length, dy=width, dz=height), from KITTI stats.
_CLASS_DIMS = {
    "Car": (3.9, 1.6, 1.56),
    "Pedestrian": (0.8, 0.6, 1.73),
    "Cyclist": (1.76, 0.6, 1.73),
}
_CLASS_DIM_STD = {
    "Car": (0.4, 0.1, 0.1),
    "Pedestrian": (0.1, 0.1, 0.1),
    "Cyclist": (0.2, 0.1, 0.1),
}
_CLASS_REFLECTIVITY = {"Car": 0.7, "Pedestrian": 0.4, "Cyclist": 0.5}


@dataclass
class SceneConfig:
    """Knobs for scene content and the attached sensors."""

    x_range: tuple = (5.0, 48.0)      # forward extent of object placement
    y_range: tuple = (-16.0, 16.0)    # lateral extent
    max_cars: int = 6
    max_pedestrians: int = 3
    max_cyclists: int = 2
    lane_width: float = 3.5
    lidar: LidarConfig = field(default_factory=LidarConfig)
    min_points_per_object: int = 5    # objects with fewer points get culled
    easy_range: float = 18.0          # distance thresholds for difficulty
    moderate_range: float = 32.0


@dataclass
class Scene:
    """One synthetic frame: LiDAR points, camera image, and labels."""

    points: np.ndarray                 # (N, 4) x y z intensity
    boxes: list[Box3D]                 # ground-truth annotations
    image: np.ndarray | None = None    # (3, H, W) float image, optional
    calib: dict = field(default_factory=dict)
    frame_id: int = 0


class SceneGenerator:
    """Randomized but reproducible generator of KITTI-like scenes."""

    def __init__(self, config: SceneConfig | None = None, seed: int = 0):
        self.config = config or SceneConfig()
        self.seed = seed

    def _sample_box(self, rng: np.random.Generator, label: str,
                    lane: float | None = None) -> Box3D:
        cfg = self.config
        dims = np.array(_CLASS_DIMS[label])
        dims = dims + rng.normal(0, _CLASS_DIM_STD[label])
        dims = np.maximum(dims, 0.3)
        x = rng.uniform(*cfg.x_range)
        if lane is not None:
            y = lane + rng.normal(0, 0.3)
        else:
            y = rng.uniform(*cfg.y_range)
        if label == "Car":
            yaw = rng.choice([0.0, np.pi]) + rng.normal(0, 0.08)
        else:
            yaw = rng.uniform(-np.pi, np.pi)
        return Box3D(float(x), float(y), float(dims[2] / 2),
                     float(dims[0]), float(dims[1]), float(dims[2]),
                     float(yaw), label=label,
                     meta={"reflectivity": _CLASS_REFLECTIVITY[label]})

    def _place_objects(self, rng: np.random.Generator) -> list[Box3D]:
        cfg = self.config
        boxes: list[Box3D] = []
        lanes = [-cfg.lane_width / 2, cfg.lane_width / 2,
                 -3 * cfg.lane_width / 2, 3 * cfg.lane_width / 2]
        n_cars = rng.integers(1, cfg.max_cars + 1)
        n_peds = rng.integers(0, cfg.max_pedestrians + 1)
        n_cyc = rng.integers(0, cfg.max_cyclists + 1)
        wanted = (["Car"] * n_cars + ["Pedestrian"] * n_peds
                  + ["Cyclist"] * n_cyc)
        for label in wanted:
            lane = float(rng.choice(lanes)) if label == "Car" else None
            for _ in range(10):  # rejection sampling against overlap
                candidate = self._sample_box(rng, label, lane)
                if not boxes:
                    boxes.append(candidate)
                    break
                ious = iou_matrix_bev(
                    boxes_to_array([candidate]), boxes_to_array(boxes))
                if ious.max() < 1e-3:
                    boxes.append(candidate)
                    break
        return boxes

    def _assign_difficulty(self, boxes: list[Box3D],
                           points: np.ndarray) -> list[Box3D]:
        from .boxes import points_in_box
        cfg = self.config
        kept = []
        for box in boxes:
            n_points = int(points_in_box(points, box).sum())
            box.meta["num_points"] = n_points
            if n_points < cfg.min_points_per_object:
                continue
            distance = box.range_from_origin()
            if distance <= cfg.easy_range and n_points >= 40:
                box.difficulty = 0
            elif distance <= cfg.moderate_range and n_points >= 15:
                box.difficulty = 1
            else:
                box.difficulty = 2
            kept.append(box)
        return kept

    def generate(self, frame_id: int = 0,
                 with_image: bool = True) -> Scene:
        """Generate scene ``frame_id`` (deterministic per generator seed)."""
        rng = np.random.default_rng(self.seed * 100003 + frame_id)
        boxes = self._place_objects(rng)
        scanner = LidarScanner(self.config.lidar, rng=rng)
        points = scanner.scan(boxes)
        boxes = self._assign_difficulty(boxes, points)
        image = None
        calib: dict = {}
        if with_image:
            from repro.camera import CameraModel, render_scene
            camera = CameraModel.kitti_like()
            image = render_scene(camera, boxes, rng=rng)
            calib = {"K": camera.intrinsics(), "height": camera.height}
        return Scene(points=points, boxes=boxes, image=image,
                     calib=calib, frame_id=frame_id)


def make_dataset(num_frames: int, config: SceneConfig | None = None,
                 seed: int = 0, with_image: bool = True,
                 splits=(0.8, 0.1, 0.1)) -> dict[str, list[Scene]]:
    """Generate frames and split them 80:10:10 like the paper's KITTI use.

    Returns a dict with ``train``/``val``/``test`` scene lists.
    """
    if abs(sum(splits) - 1.0) > 1e-6:
        raise ValueError("splits must sum to 1")
    generator = SceneGenerator(config, seed=seed)
    scenes = [generator.generate(i, with_image=with_image)
              for i in range(num_frames)]
    n_train = int(round(num_frames * splits[0]))
    n_val = int(round(num_frames * splits[1]))
    return {
        "train": scenes[:n_train],
        "val": scenes[n_train:n_train + n_val],
        "test": scenes[n_train + n_val:],
    }


# ---------------------------------------------------------------------------
# Scenario matrix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One named adverse-scenario family.

    A spec owns its :class:`SceneConfig` (via ``config_factory`` so each
    generator gets a fresh config) plus two optional hooks:

    * ``place(rng, generator)`` replaces the default object placement —
      this is where a family shapes its ground truth (traffic density,
      occlusion chains, near-duplicate clones, ...).
    * ``mutate_points(rng, points)`` edits the scanned cloud — weather
      clutter, intensity attenuation, azimuth-sector dropout bursts.

    Both hooks draw exclusively from the ``rng`` they are handed, which
    :class:`ScenarioGenerator` seeds from ``(seed, family, frame_id)``,
    so a spec is deterministic by construction.
    """

    name: str
    description: str
    config_factory: Callable[[], SceneConfig]
    place: Callable | None = None
    mutate_points: Callable | None = None


class ScenarioGenerator(SceneGenerator):
    """Seed-deterministic generator for one :class:`ScenarioSpec`.

    Reuses the base generator's sampling/culling machinery but seeds
    every frame from ``(seed, crc32(family name), frame_id)`` so
    distinct families draw from distinct streams even at equal seeds.
    """

    def __init__(self, spec: ScenarioSpec, seed: int = 0):
        super().__init__(spec.config_factory(), seed=seed)
        self.spec = spec

    def generate(self, frame_id: int = 0,
                 with_image: bool = False) -> Scene:
        spec = self.spec
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(spec.name.encode("utf-8")), frame_id))
        if spec.place is not None:
            boxes = spec.place(rng, self)
        else:
            boxes = self._place_objects(rng)
        scanner = LidarScanner(self.config.lidar, rng=rng)
        points = scanner.scan(boxes)
        if spec.mutate_points is not None:
            points = spec.mutate_points(rng, points)
        boxes = self._assign_difficulty(boxes, points)
        image = None
        calib: dict = {}
        if with_image:
            from repro.camera import CameraModel, render_scene
            camera = CameraModel.kitti_like()
            image = render_scene(camera, boxes, rng=rng)
            calib = {"K": camera.intrinsics(), "height": camera.height}
        return Scene(points=points, boxes=boxes, image=image,
                     calib=calib, frame_id=frame_id)


def _scenario_lidar(**overrides) -> LidarConfig:
    """The reduced scanner the scenario matrix standardizes on."""
    kwargs = dict(channels=20, azimuth_steps=180)
    kwargs.update(overrides)
    return LidarConfig(**kwargs)


def _lanes(cfg: SceneConfig) -> list[float]:
    return [-cfg.lane_width / 2, cfg.lane_width / 2,
            -3 * cfg.lane_width / 2, 3 * cfg.lane_width / 2]


def _accepts(candidate: Box3D, boxes: list[Box3D],
             max_iou: float = 1e-3) -> bool:
    if not boxes:
        return True
    ious = iou_matrix_bev(boxes_to_array([candidate]),
                          boxes_to_array(boxes))
    return float(ious.max()) < max_iou


# --- family: dense traffic -------------------------------------------------

def _place_dense_traffic(rng: np.random.Generator,
                         gen: SceneGenerator) -> list[Box3D]:
    """Base placement topped up to a crowded scene (≥ 8 objects)."""
    cfg = gen.config
    boxes = gen._place_objects(rng)
    lanes = _lanes(cfg)
    attempts = 0
    while len(boxes) < 8 and attempts < 60:
        attempts += 1
        label = str(rng.choice(["Car", "Car", "Car", "Pedestrian",
                                "Cyclist"]))
        lane = float(rng.choice(lanes)) if label == "Car" else None
        candidate = gen._sample_box(rng, label, lane)
        if _accepts(candidate, boxes):
            boxes.append(candidate)
    return boxes


# --- family: occlusion chain ----------------------------------------------

def _place_occlusion_chain(rng: np.random.Generator,
                           gen: SceneGenerator) -> list[Box3D]:
    """Cars queued nose-to-tail in one lane: each occludes the next."""
    cfg = gen.config
    lane = float(rng.choice(_lanes(cfg)[:2]))
    n_chain = int(rng.integers(3, 6))
    boxes: list[Box3D] = []
    x = float(rng.uniform(7.0, 10.0))
    for _ in range(n_chain):
        car = gen._sample_box(rng, "Car", lane)
        car.x = x
        car.y = lane + float(rng.normal(0, 0.12))
        car.yaw = float(rng.normal(0, 0.03))
        boxes.append(car)
        x += float(rng.uniform(5.5, 8.0))
    # A pedestrian shadowed behind the chain stresses small-object recall.
    pedestrian = gen._sample_box(rng, "Pedestrian")
    pedestrian.x = x + float(rng.uniform(1.0, 3.0))
    pedestrian.y = lane + float(rng.normal(0, 0.4))
    if _accepts(pedestrian, boxes):
        boxes.append(pedestrian)
    return boxes


# --- family: night / rain noise -------------------------------------------

def _mutate_night_rain(rng: np.random.Generator,
                       points: np.ndarray) -> np.ndarray:
    """Attenuated returns plus near-range rain clutter."""
    out = np.array(points, dtype=points.dtype, copy=True)
    if out.size:
        out[:, 3] *= 0.5            # wet surfaces reflect less
    n_clutter = max(4, int(round(0.04 * len(out))))
    az = rng.uniform(np.deg2rad(-45), np.deg2rad(45), n_clutter)
    el = rng.uniform(np.deg2rad(-10), np.deg2rad(3), n_clutter)
    rad = rng.uniform(1.0, 12.0, n_clutter)
    clutter = np.stack([
        rad * np.cos(el) * np.cos(az),
        rad * np.cos(el) * np.sin(az),
        rad * np.sin(el) + 1.73,
        np.full(n_clutter, 0.05),
    ], axis=1).astype(points.dtype if points.size else np.float32)
    return np.concatenate([out, clutter], axis=0) if out.size else clutter


# --- family: sensor dropout bursts ----------------------------------------

def _mutate_sensor_dropout(rng: np.random.Generator,
                           points: np.ndarray) -> np.ndarray:
    """Kill one or two contiguous azimuth sectors (bus stalls, blockage)."""
    out = np.array(points, dtype=points.dtype, copy=True)
    n_bursts = int(rng.integers(1, 3))
    centers = rng.uniform(-40.0, 40.0, n_bursts)
    widths = rng.uniform(8.0, 18.0, n_bursts)
    if not out.size:
        return out
    azimuth = np.rad2deg(np.arctan2(out[:, 1], out[:, 0]))
    keep = np.ones(len(out), dtype=bool)
    for center, width in zip(centers, widths):
        keep &= np.abs(azimuth - center) > width / 2
    return out[keep]


# --- family: adversarial near-duplicates ----------------------------------

def _place_near_duplicates(rng: np.random.Generator,
                           gen: SceneGenerator) -> list[Box3D]:
    """Clone objects at sub-meter offsets to stress NMS and matching."""
    boxes = gen._place_objects(rng)
    clones: list[Box3D] = []
    for box in boxes:
        if rng.random() >= 0.7:
            continue
        angle = float(rng.uniform(-np.pi, np.pi))
        shift = float(rng.uniform(0.25, 0.7))
        clone = Box3D(box.x + shift * np.cos(angle),
                      box.y + shift * np.sin(angle),
                      box.z,
                      box.dx * float(rng.uniform(0.95, 1.05)),
                      box.dy * float(rng.uniform(0.95, 1.05)),
                      box.dz,
                      box.yaw + float(rng.normal(0, 0.05)),
                      label=box.label,
                      meta=dict(box.meta, near_duplicate=True))
        clones.append(clone)
    return boxes + clones


# --- family: long-range sparsity ------------------------------------------

def _place_far_sparse(rng: np.random.Generator,
                      gen: SceneGenerator) -> list[Box3D]:
    boxes = gen._place_objects(rng)
    # Guarantee at least two distant objects survive the id draw.
    while len(boxes) < 2:
        candidate = gen._sample_box(rng, "Car",
                                    float(rng.choice(_lanes(gen.config))))
        if _accepts(candidate, boxes):
            boxes.append(candidate)
    return boxes


SCENARIOS: dict[str, ScenarioSpec] = {
    "dense_traffic": ScenarioSpec(
        name="dense_traffic",
        description="crowded multi-lane scene (≥8 objects before culling)",
        config_factory=lambda: SceneConfig(
            x_range=(5.0, 42.0), max_cars=10, max_pedestrians=5,
            max_cyclists=3, lidar=_scenario_lidar()),
        place=_place_dense_traffic),
    "occlusion_chain": ScenarioSpec(
        name="occlusion_chain",
        description="cars queued in one lane, each occluding the next, "
                    "with a pedestrian shadowed behind the chain",
        config_factory=lambda: SceneConfig(
            x_range=(6.0, 48.0), lidar=_scenario_lidar()),
        place=_place_occlusion_chain),
    "night_rain": ScenarioSpec(
        name="night_rain",
        description="weather noise model: range noise + extra dropout, "
                    "attenuated intensity, near-range rain clutter",
        config_factory=lambda: SceneConfig(
            lidar=_scenario_lidar(range_noise=0.06, dropout=0.10)),
        mutate_points=_mutate_night_rain),
    "sensor_dropout": ScenarioSpec(
        name="sensor_dropout",
        description="burst loss of one or two contiguous azimuth sectors",
        config_factory=lambda: SceneConfig(lidar=_scenario_lidar()),
        mutate_points=_mutate_sensor_dropout),
    "near_duplicate": ScenarioSpec(
        name="near_duplicate",
        description="adversarial sub-meter near-duplicate ground-truth "
                    "boxes stressing NMS and greedy matching",
        config_factory=lambda: SceneConfig(lidar=_scenario_lidar()),
        place=_place_near_duplicates),
    "far_sparse": ScenarioSpec(
        name="far_sparse",
        description="objects only beyond 28 m — few returns per object, "
                    "moderate/hard difficulty dominated",
        config_factory=lambda: SceneConfig(
            x_range=(28.0, 58.0),
            lidar=_scenario_lidar(max_range=80.0)),
        place=_place_far_sparse),
}


def scenario_names() -> tuple:
    """The registered scenario families, in registry order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r}; known: {known}") \
            from None


def make_scenario_scenes(name: str, num_frames: int, seed: int = 0,
                         with_image: bool = False) -> list[Scene]:
    """Generate ``num_frames`` frames of one scenario family."""
    generator = ScenarioGenerator(get_scenario(name), seed=seed)
    return [generator.generate(i, with_image=with_image)
            for i in range(num_frames)]


# ---------------------------------------------------------------------------
# Determinism digests
# ---------------------------------------------------------------------------

def scene_digest(scene: Scene) -> str:
    """Content digest of a scene's points and ground truth.

    Covers the point cloud bytes and every box's geometry, label and
    difficulty — two scenes digest equal iff their detector-visible
    content is bit-identical.  Images/calibration are excluded (camera
    rendering is covered by its own tests).
    """
    h = hashlib.blake2b(digest_size=16)
    points = np.ascontiguousarray(scene.points, dtype=np.float32)
    h.update(str(points.shape).encode())
    h.update(points.tobytes())
    for box in scene.boxes:
        h.update(np.ascontiguousarray(box.as_vector()).tobytes())
        h.update(box.label.encode())
        h.update(bytes([box.difficulty & 0xFF]))
    return h.hexdigest()


def scenario_digest(name: str, num_frames: int = 2, seed: int = 0) -> str:
    """Digest of a scenario family's first ``num_frames`` frames."""
    h = hashlib.blake2b(digest_size=16)
    for scene in make_scenario_scenes(name, num_frames, seed=seed):
        h.update(scene_digest(scene).encode())
    return h.hexdigest()
