"""Pillar and voxel encodings of point clouds.

``PillarEncoder`` implements the PointPillars front end: points are
binned into vertical columns (pillars) on a BEV grid, and each point is
augmented to the 9-dimensional feature used by the Pillar Feature
Network: ``[x, y, z, intensity, xc, yc, zc, xp, yp]`` where ``c`` offsets
are to the pillar's point centroid and ``p`` offsets to the pillar's
geometric center.  ``VoxelEncoder`` produces the sparse 3D voxel grid
that SECOND-style middle encoders consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PillarConfig", "Pillars", "PillarEncoder",
           "VoxelConfig", "Voxels", "VoxelEncoder"]


@dataclass
class PillarConfig:
    """BEV grid geometry and pillar capacity limits."""

    x_range: tuple = (0.0, 51.2)
    y_range: tuple = (-25.6, 25.6)
    z_range: tuple = (-1.0, 3.0)
    pillar_size: float = 0.8          # meters per BEV cell
    max_points_per_pillar: int = 24
    max_pillars: int = 4096

    @property
    def grid_shape(self) -> tuple[int, int]:
        """(rows, cols) == (y cells, x cells) of the BEV canvas."""
        nx = int(round((self.x_range[1] - self.x_range[0]) / self.pillar_size))
        ny = int(round((self.y_range[1] - self.y_range[0]) / self.pillar_size))
        return ny, nx


@dataclass
class Pillars:
    """Encoded pillars ready for the Pillar Feature Network."""

    features: np.ndarray    # (P, max_points, 9)
    mask: np.ndarray        # (P, max_points) 1 where a real point exists
    indices: np.ndarray     # (P, 2) (row, col) BEV cell per pillar
    grid_shape: tuple[int, int]

    @property
    def num_pillars(self) -> int:
        return len(self.features)


class PillarEncoder:
    """Points → pillars, deterministic given the input order."""

    FEATURE_DIM = 9

    def __init__(self, config: PillarConfig | None = None):
        self.config = config or PillarConfig()

    def encode(self, points: np.ndarray) -> Pillars:
        cfg = self.config
        pts = np.asarray(points, dtype=np.float32)
        in_range = ((pts[:, 0] >= cfg.x_range[0]) & (pts[:, 0] < cfg.x_range[1])
                    & (pts[:, 1] >= cfg.y_range[0]) & (pts[:, 1] < cfg.y_range[1])
                    & (pts[:, 2] >= cfg.z_range[0]) & (pts[:, 2] < cfg.z_range[1]))
        pts = pts[in_range]
        rows = ((pts[:, 1] - cfg.y_range[0]) / cfg.pillar_size).astype(np.int64)
        cols = ((pts[:, 0] - cfg.x_range[0]) / cfg.pillar_size).astype(np.int64)
        ny, nx = cfg.grid_shape
        flat = rows * nx + cols

        unique_cells, inverse = np.unique(flat, return_inverse=True)
        if len(unique_cells) > cfg.max_pillars:
            # Keep the most populated pillars.
            counts = np.bincount(inverse)
            keep = np.argsort(-counts)[:cfg.max_pillars]
            keep_set = np.zeros(len(unique_cells), dtype=bool)
            keep_set[keep] = True
            point_keep = keep_set[inverse]
            pts = pts[point_keep]
            flat = flat[point_keep]
            unique_cells, inverse = np.unique(flat, return_inverse=True)

        n_pillars = len(unique_cells)
        max_pts = cfg.max_points_per_pillar
        features = np.zeros((n_pillars, max_pts, self.FEATURE_DIM),
                            dtype=np.float32)
        mask = np.zeros((n_pillars, max_pts), dtype=np.float32)
        fill = np.zeros(n_pillars, dtype=np.int64)

        order = np.argsort(inverse, kind="stable")
        for point_idx in order:
            pillar = inverse[point_idx]
            slot = fill[pillar]
            if slot >= max_pts:
                continue
            features[pillar, slot, :4] = pts[point_idx]
            mask[pillar, slot] = 1.0
            fill[pillar] += 1

        indices = np.stack([unique_cells // nx, unique_cells % nx], axis=1)

        # Offsets to the per-pillar centroid of real points.
        counts = mask.sum(axis=1, keepdims=True)
        centroid = (features[:, :, :3] * mask[:, :, None]).sum(axis=1,
                                                               keepdims=True)
        centroid = centroid / np.maximum(counts[:, :, None], 1.0)
        features[:, :, 4:7] = (features[:, :, :3] - centroid) * mask[:, :, None]

        # Offsets to the pillar's geometric center.
        center_x = cfg.x_range[0] + (indices[:, 1] + 0.5) * cfg.pillar_size
        center_y = cfg.y_range[0] + (indices[:, 0] + 0.5) * cfg.pillar_size
        features[:, :, 7] = (features[:, :, 0] - center_x[:, None]) * mask
        features[:, :, 8] = (features[:, :, 1] - center_y[:, None]) * mask

        return Pillars(features=features, mask=mask, indices=indices,
                       grid_shape=cfg.grid_shape)


@dataclass
class VoxelConfig:
    """3D voxel grid geometry for SECOND-style encoders."""

    x_range: tuple = (0.0, 51.2)
    y_range: tuple = (-25.6, 25.6)
    z_range: tuple = (-1.0, 3.0)
    voxel_size: tuple = (0.8, 0.8, 0.5)
    max_points_per_voxel: int = 8
    max_voxels: int = 8192

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """(nz, ny, nx) voxel counts."""
        nx = int(round((self.x_range[1] - self.x_range[0]) / self.voxel_size[0]))
        ny = int(round((self.y_range[1] - self.y_range[0]) / self.voxel_size[1]))
        nz = int(round((self.z_range[1] - self.z_range[0]) / self.voxel_size[2]))
        return nz, ny, nx


@dataclass
class Voxels:
    """Sparse voxelized cloud: mean feature per occupied voxel."""

    features: np.ndarray    # (V, 4) mean [x y z intensity] per voxel
    coords: np.ndarray      # (V, 3) (z, y, x) integer voxel coordinates
    grid_shape: tuple[int, int, int]

    @property
    def num_voxels(self) -> int:
        return len(self.features)

    def to_dense(self) -> np.ndarray:
        """(4, nz, ny, nx) dense grid (zeros where empty)."""
        nz, ny, nx = self.grid_shape
        dense = np.zeros((4, nz, ny, nx), dtype=np.float32)
        z, y, x = self.coords.T
        dense[:, z, y, x] = self.features.T
        return dense


class VoxelEncoder:
    """Points → sparse mean-feature voxels."""

    def __init__(self, config: VoxelConfig | None = None):
        self.config = config or VoxelConfig()

    def encode(self, points: np.ndarray) -> Voxels:
        cfg = self.config
        pts = np.asarray(points, dtype=np.float32)
        in_range = ((pts[:, 0] >= cfg.x_range[0]) & (pts[:, 0] < cfg.x_range[1])
                    & (pts[:, 1] >= cfg.y_range[0]) & (pts[:, 1] < cfg.y_range[1])
                    & (pts[:, 2] >= cfg.z_range[0]) & (pts[:, 2] < cfg.z_range[1]))
        pts = pts[in_range]
        vx = ((pts[:, 0] - cfg.x_range[0]) / cfg.voxel_size[0]).astype(np.int64)
        vy = ((pts[:, 1] - cfg.y_range[0]) / cfg.voxel_size[1]).astype(np.int64)
        vz = ((pts[:, 2] - cfg.z_range[0]) / cfg.voxel_size[2]).astype(np.int64)
        nz, ny, nx = cfg.grid_shape
        flat = (vz * ny + vy) * nx + vx

        unique_cells, inverse = np.unique(flat, return_inverse=True)
        if len(unique_cells) > cfg.max_voxels:
            counts = np.bincount(inverse)
            keep = np.argsort(-counts)[:cfg.max_voxels]
            keep_set = np.zeros(len(unique_cells), dtype=bool)
            keep_set[keep] = True
            point_keep = keep_set[inverse]
            pts = pts[point_keep]
            flat = flat[point_keep]
            unique_cells, inverse = np.unique(flat, return_inverse=True)

        n_voxels = len(unique_cells)
        sums = np.zeros((n_voxels, 4), dtype=np.float64)
        np.add.at(sums, inverse, pts[:, :4])
        counts = np.bincount(inverse, minlength=n_voxels)[:, None]
        features = (sums / np.maximum(counts, 1)).astype(np.float32)

        z = unique_cells // (ny * nx)
        rem = unique_cells % (ny * nx)
        coords = np.stack([z, rem // nx, rem % nx], axis=1)
        return Voxels(features=features, coords=coords,
                      grid_shape=cfg.grid_shape)
