"""KITTI label / calibration file IO and dataset export.

The paper trains and evaluates on the KITTI automotive dataset.  This
module implements the KITTI *interchange format* — the canonical
space-separated label lines (type, truncated, occluded, alpha, 2D bbox,
dimensions h/w/l, location, rotation_y) plus the calib and velodyne
``.bin`` layouts — so synthetic scenes can be written to and read from a
KITTI-shaped directory tree, exercising the same IO paths a real-KITTI
pipeline would.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from .boxes import Box3D
from .scenes import Scene

if TYPE_CHECKING:   # avoid the camera↔pointcloud import cycle at runtime
    from repro.camera.projection import CameraModel

__all__ = [
    "format_label_line", "parse_label_line", "write_labels", "read_labels",
    "write_velodyne", "read_velodyne", "write_calib", "read_calib",
    "export_kitti", "load_kitti",
]

_OCCLUSION_BY_DIFFICULTY = {0: 0, 1: 1, 2: 2}


def format_label_line(box: Box3D, camera: "CameraModel | None" = None) -> str:
    """Render one KITTI label line for a box.

    KITTI stores dimensions as (h, w, l) and the location at the bottom
    center of the box in *camera* coordinates; we keep our ground-frame
    convention for location but honor the field ordering so files are
    structurally valid KITTI.
    """
    if camera is not None:
        from repro.camera.projection import project_box
        bbox2d = project_box(box, camera)
        if bbox2d is None:
            bbox2d = np.zeros(4)
    else:
        bbox2d = np.zeros(4)
    occluded = _OCCLUSION_BY_DIFFICULTY.get(box.difficulty, 3)
    alpha = float(np.arctan2(-box.y, box.x)) - box.yaw
    fields = [
        box.label, f"{0.0:.2f}", str(occluded), f"{alpha:.2f}",
        f"{bbox2d[0]:.2f}", f"{bbox2d[1]:.2f}",
        f"{bbox2d[2]:.2f}", f"{bbox2d[3]:.2f}",
        f"{box.dz:.2f}", f"{box.dy:.2f}", f"{box.dx:.2f}",
        f"{box.x:.2f}", f"{box.y:.2f}", f"{box.z:.2f}",
        f"{box.yaw:.2f}",
    ]
    if box.score != 1.0:
        fields.append(f"{box.score:.4f}")
    return " ".join(fields)


def parse_label_line(line: str) -> Box3D:
    """Parse a KITTI label line back into a Box3D."""
    parts = line.split()
    if len(parts) < 15:
        raise ValueError(f"malformed KITTI label line: {line!r}")
    label = parts[0]
    occluded = int(parts[2])
    dz, dy, dx = (float(parts[8]), float(parts[9]), float(parts[10]))
    x, y, z = (float(parts[11]), float(parts[12]), float(parts[13]))
    yaw = float(parts[14])
    score = float(parts[15]) if len(parts) > 15 else 1.0
    box = Box3D(x, y, z, dx, dy, dz, yaw, label=label, score=score,
                difficulty=min(occluded, 2))
    return box


def write_labels(boxes: list[Box3D], path: str,
                 camera: "CameraModel | None" = None) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        for box in boxes:
            handle.write(format_label_line(box, camera) + "\n")


def read_labels(path: str) -> list[Box3D]:
    boxes = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line and not line.startswith("DontCare"):
                boxes.append(parse_label_line(line))
    return boxes


def write_velodyne(points: np.ndarray, path: str) -> None:
    """Write the raw float32 x,y,z,intensity binary KITTI uses."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.asarray(points, dtype=np.float32).tofile(path)


def read_velodyne(path: str) -> np.ndarray:
    return np.fromfile(path, dtype=np.float32).reshape(-1, 4)


def write_calib(calib: dict, path: str) -> None:
    """Write a calib file with the P2 camera matrix (KITTI layout)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    k = np.asarray(calib.get("K", np.eye(3)))
    p2 = np.zeros((3, 4))
    p2[:, :3] = k
    with open(path, "w") as handle:
        handle.write("P2: " + " ".join(f"{v:.6e}" for v in p2.reshape(-1))
                     + "\n")


def read_calib(path: str) -> dict:
    calib = {}
    with open(path) as handle:
        for line in handle:
            if line.startswith("P2:"):
                values = np.array([float(v) for v in line.split()[1:]])
                calib["K"] = values.reshape(3, 4)[:, :3]
    return calib


def export_kitti(scenes: list[Scene], root: str,
                 camera: "CameraModel | None" = None) -> None:
    """Write scenes as a KITTI-shaped tree: velodyne/, label_2/, calib/."""
    for scene in scenes:
        stem = f"{scene.frame_id:06d}"
        write_velodyne(scene.points, os.path.join(root, "velodyne",
                                                  stem + ".bin"))
        write_labels(scene.boxes, os.path.join(root, "label_2", stem + ".txt"),
                     camera)
        write_calib(scene.calib, os.path.join(root, "calib", stem + ".txt"))
        if scene.image is not None:
            image_path = os.path.join(root, "image_2", stem + ".npy")
            os.makedirs(os.path.dirname(image_path), exist_ok=True)
            np.save(image_path, scene.image)


def load_kitti(root: str) -> list[Scene]:
    """Read back a KITTI-shaped tree written by :func:`export_kitti`."""
    velodyne_dir = os.path.join(root, "velodyne")
    scenes = []
    for name in sorted(os.listdir(velodyne_dir)):
        stem = os.path.splitext(name)[0]
        points = read_velodyne(os.path.join(velodyne_dir, name))
        boxes = read_labels(os.path.join(root, "label_2", stem + ".txt"))
        calib = read_calib(os.path.join(root, "calib", stem + ".txt"))
        image_path = os.path.join(root, "image_2", stem + ".npy")
        image = np.load(image_path) if os.path.exists(image_path) else None
        scenes.append(Scene(points=points, boxes=boxes, image=image,
                            calib=calib, frame_id=int(stem)))
    return scenes
