"""``repro.pointcloud`` — LiDAR data substrate.

Provides everything the paper gets from KITTI + Velodyne hardware:
oriented 3D boxes with exact rotated IoU, a ray-casting LiDAR simulator,
a synthetic scene generator, KITTI-format file IO, and the pillar/voxel
encoders that feed the detectors.
"""

from .boxes import (CLASS_IDS, CLASS_NAMES, Box3D, array_to_boxes,
                    bev_corners, bev_intersection_area, boxes_to_array,
                    clip_polygon, iou_3d, iou_bev, iou_matrix_3d,
                    iou_matrix_bev, points_in_box, polygon_area)
from .kitti import export_kitti, load_kitti, read_labels, write_labels
from .lidar import LidarConfig, LidarScanner
from .scenes import (SCENARIOS, Scene, SceneConfig, SceneGenerator,
                     ScenarioGenerator, ScenarioSpec, get_scenario,
                     make_dataset, make_scenario_scenes, scenario_digest,
                     scenario_names, scene_digest)
from .voxelize import (PillarConfig, PillarEncoder, Pillars, VoxelConfig,
                       VoxelEncoder, Voxels)

__all__ = [
    "Box3D", "boxes_to_array", "array_to_boxes", "bev_corners",
    "polygon_area", "clip_polygon", "bev_intersection_area", "iou_bev",
    "iou_3d", "iou_matrix_bev", "iou_matrix_3d", "points_in_box",
    "CLASS_NAMES", "CLASS_IDS",
    "LidarConfig", "LidarScanner",
    "Scene", "SceneConfig", "SceneGenerator", "make_dataset",
    "ScenarioSpec", "ScenarioGenerator", "SCENARIOS", "scenario_names",
    "get_scenario", "make_scenario_scenes", "scene_digest",
    "scenario_digest",
    "PillarConfig", "PillarEncoder", "Pillars",
    "VoxelConfig", "VoxelEncoder", "Voxels",
    "export_kitti", "load_kitti", "read_labels", "write_labels",
]
