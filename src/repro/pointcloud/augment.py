"""Point-cloud data augmentation (SECOND/PointPillars style).

Global transforms applied jointly to the point cloud and its box labels:
rotation around the sensor, lateral flip, scale jitter, and per-object
ground-truth jitter.  Used by the training loop to stretch the synthetic
dataset's pose diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .boxes import Box3D
from .scenes import Scene

__all__ = ["AugmentConfig", "global_rotation", "global_flip_y",
           "global_scaling", "object_jitter", "augment_scene"]


@dataclass
class AugmentConfig:
    rotation_range: float = np.pi / 8   # ± radians around +z
    flip_probability: float = 0.5
    scale_range: tuple = (0.95, 1.05)
    object_translation_std: float = 0.15
    enabled: bool = True


def _copy_box(box: Box3D) -> Box3D:
    return Box3D(box.x, box.y, box.z, box.dx, box.dy, box.dz, box.yaw,
                 label=box.label, score=box.score,
                 difficulty=box.difficulty, meta=dict(box.meta))


def global_rotation(scene: Scene, angle: float) -> Scene:
    """Rotate points and boxes by ``angle`` around the sensor's z axis."""
    c, s = np.cos(angle), np.sin(angle)
    points = scene.points.copy()
    x, y = points[:, 0].copy(), points[:, 1].copy()
    points[:, 0] = c * x - s * y
    points[:, 1] = s * x + c * y
    boxes = []
    for box in scene.boxes:
        rotated = _copy_box(box)
        rotated.x = float(c * box.x - s * box.y)
        rotated.y = float(s * box.x + c * box.y)
        rotated.yaw = float(box.yaw + angle)
        boxes.append(rotated)
    return Scene(points=points, boxes=boxes, image=scene.image,
                 calib=scene.calib, frame_id=scene.frame_id)


def global_flip_y(scene: Scene) -> Scene:
    """Mirror the scene across the x axis (left/right flip)."""
    points = scene.points.copy()
    points[:, 1] = -points[:, 1]
    boxes = []
    for box in scene.boxes:
        flipped = _copy_box(box)
        flipped.y = -box.y
        flipped.yaw = -box.yaw
        boxes.append(flipped)
    return Scene(points=points, boxes=boxes, image=scene.image,
                 calib=scene.calib, frame_id=scene.frame_id)


def global_scaling(scene: Scene, factor: float) -> Scene:
    """Scale the whole scene uniformly (range + object sizes)."""
    points = scene.points.copy()
    points[:, :3] *= factor
    boxes = []
    for box in scene.boxes:
        scaled = _copy_box(box)
        scaled.x, scaled.y, scaled.z = (box.x * factor, box.y * factor,
                                        box.z * factor)
        scaled.dx, scaled.dy, scaled.dz = (box.dx * factor, box.dy * factor,
                                           box.dz * factor)
        boxes.append(scaled)
    return Scene(points=points, boxes=boxes, image=scene.image,
                 calib=scene.calib, frame_id=scene.frame_id)


def object_jitter(scene: Scene, std: float,
                  rng: np.random.Generator) -> Scene:
    """Translate each object (and the points inside it) independently."""
    from .boxes import points_in_box
    points = scene.points.copy()
    boxes = []
    for box in scene.boxes:
        offset = rng.normal(0, std, 2)
        inside = points_in_box(points, box, margin=0.05)
        points[inside, 0] += offset[0]
        points[inside, 1] += offset[1]
        moved = _copy_box(box)
        moved.x = float(box.x + offset[0])
        moved.y = float(box.y + offset[1])
        boxes.append(moved)
    return Scene(points=points, boxes=boxes, image=scene.image,
                 calib=scene.calib, frame_id=scene.frame_id)


def augment_scene(scene: Scene, config: AugmentConfig | None = None,
                  rng: np.random.Generator | None = None) -> Scene:
    """Apply the full augmentation pipeline to a LiDAR scene.

    Camera images are invalidated by geometric augmentation and dropped;
    use augmentation only for LiDAR-model training.
    """
    config = config or AugmentConfig()
    if not config.enabled:
        return scene
    rng = rng or np.random.default_rng()
    out = scene
    angle = rng.uniform(-config.rotation_range, config.rotation_range)
    out = global_rotation(out, angle)
    if rng.random() < config.flip_probability:
        out = global_flip_y(out)
    out = global_scaling(out, rng.uniform(*config.scale_range))
    if config.object_translation_std > 0:
        out = object_jitter(out, config.object_translation_std, rng)
    out.image = None
    return out
