"""Simulated spinning LiDAR.

Stands in for the Velodyne HDL-64E that recorded KITTI: a configurable
number of elevation channels sweep the azimuth range; each ray is
intersected against the ground plane and every object box in the scene,
and the nearest hit (plus range noise and per-surface intensity) becomes
a point.  The output is the familiar (N, 4) ``[x y z intensity]`` cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .boxes import Box3D

__all__ = ["LidarConfig", "LidarScanner"]


@dataclass
class LidarConfig:
    """Geometry and noise parameters of the simulated scanner."""

    channels: int = 32                 # elevation channels
    azimuth_steps: int = 360           # rays per channel over the FOV
    azimuth_fov: tuple = (-45.0, 45.0)  # degrees, forward sector
    elevation_fov: tuple = (-18.0, 4.0)  # degrees
    max_range: float = 70.0
    range_noise: float = 0.02          # std-dev of radial noise (meters)
    height: float = 1.73               # sensor height above ground
    ground_intensity: float = 0.15
    dropout: float = 0.02              # probability a return is lost


class LidarScanner:
    """Ray-casting scanner producing KITTI-style point clouds."""

    def __init__(self, config: LidarConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.config = config or LidarConfig()
        self.rng = rng or np.random.default_rng(0)
        self._directions = self._build_directions()

    def _build_directions(self) -> np.ndarray:
        cfg = self.config
        az = np.deg2rad(np.linspace(cfg.azimuth_fov[0], cfg.azimuth_fov[1],
                                    cfg.azimuth_steps))
        el = np.deg2rad(np.linspace(cfg.elevation_fov[0], cfg.elevation_fov[1],
                                    cfg.channels))
        az_grid, el_grid = np.meshgrid(az, el)
        cos_el = np.cos(el_grid)
        dirs = np.stack([cos_el * np.cos(az_grid),
                         cos_el * np.sin(az_grid),
                         np.sin(el_grid)], axis=-1)
        return dirs.reshape(-1, 3).astype(np.float64)

    def scan(self, boxes: list[Box3D]) -> np.ndarray:
        """Scan a scene of boxes standing on the z=0 ground plane.

        Returns an (N, 4) array of points in LiDAR coordinates with the
        sensor at ``(0, 0, 0)`` (so the ground sits at ``-height``).
        """
        cfg = self.config
        dirs = self._directions
        n_rays = len(dirs)
        ranges = np.full(n_rays, np.inf)
        intensity = np.zeros(n_rays)

        # Ground plane z = -height.
        dz = dirs[:, 2]
        descending = dz < -1e-9
        t_ground = np.where(descending, -cfg.height / np.where(
            descending, dz, 1.0), np.inf)
        hits_ground = (t_ground > 0) & (t_ground < cfg.max_range)
        ranges = np.where(hits_ground, t_ground, ranges)
        intensity = np.where(hits_ground, cfg.ground_intensity, intensity)

        # Object boxes via slab intersection in each box frame.  Boxes are
        # given in ground coordinates (z measured from the ground up); the
        # sensor frame has the ground at -height.
        for box in boxes:
            center = np.array([box.x, box.y, box.z - cfg.height])
            c, s = np.cos(box.yaw), np.sin(box.yaw)
            rot = np.array([[c, s, 0], [-s, c, 0], [0, 0, 1]])
            origin_local = rot @ (-center)
            dirs_local = dirs @ rot.T
            half = np.array([box.dx / 2, box.dy / 2, box.dz / 2])

            with np.errstate(divide="ignore", invalid="ignore"):
                inv = 1.0 / dirs_local
                t1 = (-half - origin_local) * inv
                t2 = (half - origin_local) * inv
            t_near = np.nanmax(np.minimum(t1, t2), axis=1)
            t_far = np.nanmin(np.maximum(t1, t2), axis=1)
            hit = (t_far >= t_near) & (t_far > 0)
            t_hit = np.where(t_near > 0, t_near, t_far)
            closer = hit & (t_hit < ranges) & (t_hit > 0.5)
            ranges = np.where(closer, t_hit, ranges)
            reflectivity = box.meta.get("reflectivity", 0.6)
            intensity = np.where(closer, reflectivity, intensity)

        valid = np.isfinite(ranges)
        if cfg.dropout > 0:
            valid &= self.rng.random(n_rays) >= cfg.dropout
        ranges = ranges[valid]
        dirs = dirs[valid]
        intensity = intensity[valid]

        if cfg.range_noise > 0:
            ranges = ranges + self.rng.normal(0, cfg.range_noise, len(ranges))

        points = dirs * ranges[:, None]
        # Shift to ground coordinates so z=0 is the road surface, matching
        # the box convention used everywhere else in the repo.
        points[:, 2] += cfg.height
        cloud = np.concatenate([points, intensity[:, None]], axis=1)
        return cloud.astype(np.float32)
