"""``repro.runtime`` — deployment-style streaming inference.

Runs detectors over scene streams with per-frame simulated device
latency/energy accounting and real-time deadline tracking; loads packed
compressed checkpoints produced by :mod:`repro.core.packing`.  The
fault-tolerance layer — seeded fault injection, degradation policies,
and the deadline watchdog — lives in :mod:`repro.runtime.faults` and
:class:`~repro.runtime.engine.DegradationPolicy`; see
``docs/ROBUSTNESS.md`` for the taxonomy.
"""

from .engine import (DegradationPolicy, FrameRecord, InferenceEngine,
                     StreamReport)
from .faults import FaultInjector, FaultSpec, FrameFaults

__all__ = ["InferenceEngine", "StreamReport", "FrameRecord",
           "DegradationPolicy", "FaultInjector", "FaultSpec",
           "FrameFaults"]
