"""``repro.runtime`` — deployment-style streaming inference.

Runs detectors over scene streams with per-frame simulated device
latency/energy accounting and real-time deadline tracking; loads packed
compressed checkpoints produced by :mod:`repro.core.packing`.
"""

from .engine import FrameRecord, InferenceEngine, StreamReport

__all__ = ["InferenceEngine", "StreamReport", "FrameRecord"]
