"""``repro.runtime`` — deployment-style streaming inference.

Runs detectors over scene streams with per-frame simulated device
latency/energy accounting and real-time deadline tracking; loads packed
compressed checkpoints produced by :mod:`repro.core.packing`.  Quantized
layers execute through integer kernels lowered from the model's
:class:`~repro.ir.ModelIR` (:mod:`repro.runtime.executors`) in either
``"lowered"`` (int64) or ``"reference"`` (float64 fake-quant) mode.
The fault-tolerance layer — seeded fault injection, degradation
policies, and the deadline watchdog — lives in
:mod:`repro.runtime.faults` and
:class:`~repro.runtime.engine.DegradationPolicy`; see
``docs/ROBUSTNESS.md`` for the taxonomy.  Opt-in observability —
per-layer executor counters and per-frame deadline-miss cost
attribution — lives in :mod:`repro.runtime.telemetry`; see
``docs/OBSERVABILITY.md``.  Multi-stream serving — N concurrent client
streams multiplexed over shared compiled programs with per-stream SLOs,
admission control, backpressure and cross-stream micro-batching — lives
in :mod:`repro.runtime.serving`; see ``docs/SERVING.md``.
"""

from .engine import (DegradationLadder, DegradationPolicy, FrameRecord,
                     InferenceEngine, LadderRung, StreamReport,
                     SwapEvent)
from .executors import EXECUTION_MODES, LoweredProgram
from .faults import FaultInjector, FaultSpec, FrameFaults
from .serving import (SERVING_BACKENDS, AdmissionError,
                      BackpressureError, ReplicaSpec, ServingEngine,
                      ServingError, ServingStats, StreamHandle,
                      StreamSLO)
from .telemetry import (LayerAttribution, LayerTelemetry, TraceEvent,
                        aggregate_telemetry, export_trace)

__all__ = ["InferenceEngine", "StreamReport", "FrameRecord",
           "DegradationPolicy", "DegradationLadder", "LadderRung",
           "SwapEvent", "FaultInjector", "FaultSpec",
           "FrameFaults", "LoweredProgram", "EXECUTION_MODES",
           "LayerTelemetry", "TraceEvent", "LayerAttribution",
           "aggregate_telemetry", "export_trace",
           "ServingEngine", "StreamSLO", "StreamHandle", "ServingStats",
           "ReplicaSpec", "SERVING_BACKENDS",
           "ServingError", "AdmissionError", "BackpressureError"]
