"""Binding lowered integer executors to a live model forward pass.

:func:`repro.ir.lowering.lower_executors` compiles a compressed
:class:`~repro.ir.ModelIR` into per-layer integer executors;
:class:`LoweredProgram` is the runtime object that owns them and swaps
them into the model's kernel layers for the duration of a forward pass
(the same ``object.__setattr__`` patching discipline the profiler
uses — no model surgery, fully reversible, exception-safe).

The program runs in one of two modes sharing the same executors:

* ``"lowered"`` — int64 multiply-accumulate per layer;
* ``"reference"`` — float64 fake-quant reference semantics.

The two are bit-for-bit identical after the final rescale (see
:mod:`repro.nn.quantized`), which is what lets the engine's parity
tests compare whole detection outputs with ``==``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.nn.graph import layer_map
from repro.nn.module import Module

__all__ = ["LoweredProgram", "EXECUTION_MODES"]

EXECUTION_MODES = ("reference", "lowered")


class LoweredProgram:
    """A model's quantized layers compiled to executable integer kernels.

    Parameters
    ----------
    executors:
        ``layer name → executor`` as produced by
        :func:`repro.ir.lowering.lower_executors`.
    mode:
        ``"lowered"`` runs the integer path, ``"reference"`` the
        float64 fake-quant reference path of the same executors.
    """

    def __init__(self, executors: dict[str, Module],
                 mode: str = "lowered"):
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}; "
                             f"expected one of {EXECUTION_MODES}")
        self.executors = dict(executors)
        self.mode = mode

    def __len__(self) -> int:
        return len(self.executors)

    @property
    def layer_names(self) -> list[str]:
        return list(self.executors)

    def _run_fn(self, executor: Module):
        if self.mode == "reference":
            return executor.reference
        return executor.forward

    @contextmanager
    def attached(self, model: Module):
        """Patch ``model``'s layers to run through the executors.

        Layers without an executor (unquantized, or absent from the
        IR) keep their float forward.  Original forwards are restored
        on exit even when inference raises.
        """
        layers = layer_map(model)
        patched: list[tuple[Module, object]] = []
        for name, executor in self.executors.items():
            module = layers.get(name)
            if module is None:
                continue
            original = module.forward
            run = self._run_fn(executor)

            def routed(*args, _run=run, **kwargs):
                return _run(args[0])

            object.__setattr__(module, "forward", routed)
            patched.append((module, original))
        try:
            yield model
        finally:
            for module, original in patched:
                object.__setattr__(module, "forward", original)

    def summary(self) -> str:
        return (f"lowered program: {len(self.executors)} integer "
                f"executors, mode={self.mode}")
