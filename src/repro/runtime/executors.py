"""Binding lowered integer executors to a live model forward pass.

:func:`repro.ir.lowering.lower_executors` compiles a compressed
:class:`~repro.ir.ModelIR` into per-layer integer executors;
:class:`LoweredProgram` is the runtime object that owns them and swaps
them into the model's kernel layers for the duration of a forward pass
(the same ``object.__setattr__`` patching discipline the profiler
uses — no model surgery, fully reversible, exception-safe).

The program runs in one of three modes sharing the same executors:

* ``"lowered"`` — int64 multiply-accumulate per layer;
* ``"lowered-sparse"`` — the same integer path, but each prediction
  runs inside an activated :class:`~repro.nn.occupancy.OccupancyContext`
  so the scatter reports the frame's occupied-canvas bbox and the
  executors skip verified all-zero input columns at runtime;
* ``"reference"`` — float64 fake-quant reference semantics.

All modes are bit-for-bit identical after the final rescale (see
:mod:`repro.nn.quantized`; the sparse mode verifies every window
against the actual codes before using it), which is what lets the
engine's parity tests compare whole detection outputs with ``==``.

The program also owns the per-layer telemetry collectors
(:meth:`LoweredProgram.enable_telemetry`): one
:class:`~repro.runtime.telemetry.LayerTelemetry` per executor, strictly
opt-in, populated by the executors while they run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext

from repro.nn.graph import layer_map
from repro.nn.layers import Conv2d, ConvTranspose2d, Linear
from repro.nn.module import Module
from repro.nn.occupancy import activate_occupancy

from .telemetry import LayerTelemetry, telemetry_digest

__all__ = ["LoweredProgram", "EXECUTION_MODES"]

EXECUTION_MODES = ("reference", "lowered", "lowered-sparse")


class LoweredProgram:
    """A model's quantized layers compiled to executable integer kernels.

    Parameters
    ----------
    executors:
        ``layer name → executor`` as produced by
        :func:`repro.ir.lowering.lower_executors`.
    mode:
        ``"lowered"`` runs the integer path, ``"lowered-sparse"`` the
        integer path under a per-frame occupancy context (skipping
        verified all-zero columns), ``"reference"`` the float64
        fake-quant reference path of the same executors.
    telemetry:
        When true, attach a per-layer counter to every executor on
        construction (equivalent to calling :meth:`enable_telemetry`).
    """

    def __init__(self, executors: dict[str, Module],
                 mode: str = "lowered", telemetry: bool = False):
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}; "
                             f"expected one of {EXECUTION_MODES}")
        self.executors = dict(executors)
        self.mode = mode
        #: ``layer name → LayerTelemetry`` — empty until telemetry is
        #: enabled; the counters are live objects the executors update.
        self.telemetry: dict[str, LayerTelemetry] = {}
        # Attachment mutates shared state (module.forward slots, the
        # executors' telemetry slots), so a program shared by several
        # workers must be attached by one at a time; the serving layer
        # leases whole replicas, and this lock is the hard backstop.
        # Re-entrant so one thread may enable telemetry around its own
        # attachment.
        self._attach_lock = threading.RLock()
        if telemetry:
            self.enable_telemetry()

    def __len__(self) -> int:
        return len(self.executors)

    # ------------------------------------------------------------------
    # Pickling (process-backed serving replicas)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Everything but the attach lock, which is process-local."""
        state = dict(self.__dict__)
        del state["_attach_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._attach_lock = threading.RLock()

    @property
    def layer_names(self) -> list[str]:
        return list(self.executors)

    # ------------------------------------------------------------------
    # Telemetry ownership
    # ------------------------------------------------------------------
    def enable_telemetry(self, collectors: dict[str, LayerTelemetry]
                         | None = None) -> dict[str, LayerTelemetry]:
        """Attach one counter per executor; returns the collector map.

        ``collectors`` lets a caller (the engine) supply a long-lived
        map so counters survive the program being re-lowered — e.g.
        across a watchdog fallback swap; missing entries are created.
        Telemetry is strictly opt-in: until this is called, executors
        carry ``telemetry = None`` and count nothing.
        """
        with self._attach_lock:
            store = self.telemetry if collectors is None else collectors
            for name, executor in self.executors.items():
                counter = store.get(name)
                if counter is None:
                    counter = LayerTelemetry(layer=name)
                    store[name] = counter
                object.__setattr__(executor, "telemetry", counter)
            self.telemetry = store
            return store

    def disable_telemetry(self) -> None:
        """Detach counters from the executors (the map is kept)."""
        with self._attach_lock:
            for executor in self.executors.values():
                object.__setattr__(executor, "telemetry", None)

    def reset_telemetry(self) -> None:
        for counter in self.telemetry.values():
            counter.reset()

    def telemetry_summary(self) -> str:
        """One-line digest of the attached counters."""
        if not self.telemetry:
            return "telemetry: disabled"
        return telemetry_digest(self.telemetry)

    # ------------------------------------------------------------------
    def _run_fn(self, executor: Module):
        if self.mode == "reference":
            return executor.reference
        return executor.forward

    @contextmanager
    def attached(self, model: Module):
        """Patch ``model``'s layers to run through the executors.

        Layers without an executor (unquantized, or absent from the
        IR) keep their float forward.  Original forwards are restored
        on exit even when inference raises.  Restoration walks the
        patch list in *reverse* order: when two IR names resolve to the
        same shared module, the second patch captured the first
        ``routed`` as its "original", and only a LIFO unwind puts the
        true original back.  Patched forwards pass every argument
        through to the executor, so a call the executor cannot satisfy
        fails loudly instead of silently dropping arguments.

        In ``"lowered-sparse"`` mode the whole attachment additionally
        runs under a fresh :func:`~repro.nn.occupancy.activate_occupancy`
        context: the scatter(s) executed inside the block observe the
        occupied canvas, and the executors use the resulting bbox — for
        a micro-batched window the bbox is the union across the member
        frames, because every scatter observes into this one context.

        Attachment is exclusive: the whole block holds the program's
        attach lock, because patching rewrites ``module.forward`` slots
        that every thread sharing the model would see.  Concurrency
        comes from a *pool* of program/model replicas (the serving
        engine leases one per in-flight window), never from attaching
        one replica on two threads at once.
        """
        with self._attach_lock:
            layers = layer_map(model)
            patched: list[tuple[Module, object]] = []
            for name, executor in self.executors.items():
                module = layers.get(name)
                if module is None:
                    continue
                original = module.forward
                run = self._run_fn(executor)

                def routed(*args, _run=run, **kwargs):
                    return _run(*args, **kwargs)

                object.__setattr__(module, "forward", routed)
                patched.append((module, original))
            occupancy = (activate_occupancy()
                         if self.mode == "lowered-sparse" else nullcontext())
            try:
                with occupancy:
                    yield model
            finally:
                for module, original in reversed(patched):
                    object.__setattr__(module, "forward", original)

    def covers_kernels(self, model: Module) -> bool:
        """Whether every kernel layer of ``model`` has an executor.

        The micro-batching window is only byte-identical to sequential
        execution when every conv/deconv/linear runs through an exact
        integer executor — float32 kernels batched through BLAS may
        round differently per batch shape.  Elementwise trunk ops
        (BN eval, activations, pooling, upsampling) are per-sample and
        always safe.
        """
        if not self.executors:
            return False
        kernel_types = (Conv2d, ConvTranspose2d, Linear)
        return all(name in self.executors
                   for name, module in layer_map(model).items()
                   if isinstance(module, kernel_types))

    def predict_window(self, model: Module, scenes) -> list:
        """Run a micro-batch window of scenes through ``model``.

        Uses the model's batched trunk (:meth:`Detector3D.predict_batch`)
        with the executors attached when batching is certified exact
        (:meth:`covers_kernels`); otherwise falls back to sequential
        single-frame predicts, which define the semantics either way.

        In sparse mode the batched trunk naturally sees the union bbox
        of the window (every per-scene scatter observes into the
        attachment's context); the sequential fallback instead nests a
        fresh context per frame, which keeps each frame's window tight
        instead of unioning it with its predecessors'.
        """
        scenes = list(scenes)
        if not self.executors:
            return [model.predict(scene) for scene in scenes]
        with self.attached(model):
            if len(scenes) > 1 and self.covers_kernels(model):
                return model.predict_batch(scenes)
            if self.mode == "lowered-sparse":
                results = []
                for scene in scenes:
                    with activate_occupancy():
                        results.append(model.predict(scene))
                return results
            return [model.predict(scene) for scene in scenes]

    def summary(self) -> str:
        return (f"lowered program: {len(self.executors)} integer "
                f"executors, mode={self.mode}")
