"""Deployment runtime: run a (compressed) detector over a scene stream.

Ties the whole stack together the way an on-vehicle deployment would:
a detector (optionally restored from a packed UPAQ blob) is compiled
once into a device plan, then consumes scenes frame by frame while the
engine accounts simulated device latency and energy per frame, enforces
a real-time deadline, and accumulates detection quality statistics.

Failure is a modeled part of the stream, not an abort: frames that
never arrive are recorded as ``dropped``, frames whose point cloud
fails validation (NaN/Inf returns) are handled by a
:class:`DegradationPolicy` — hold the last good detections or emit an
empty frame — and a deadline watchdog walks a
:class:`DegradationLadder` of model variants: consecutive misses demote
execution to the next-cheaper rung (zero-retrace, via each rung's
pre-extracted :class:`~repro.ir.ModelIR`), consecutive on-deadline
frames promote it back up through a probation window, and every swap is
recorded as a :class:`SwapEvent`.  The single ``fallback_model`` of the
original watchdog is the degenerate two-rung, never-promote ladder and
keeps its exact semantics.  Every degraded path leaves an explicit
trace in :class:`FrameRecord.status` / :class:`FrameRecord.rung` and
the :class:`StreamReport` counters, so graceful degradation is
measurable rather than anecdotal (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.detection import DetectionResult, evaluate_map
from repro.hardware import CompiledPlan, DeviceModel, lower_to_plan
from repro.ir import ModelIR, extract_ir, lower_executors
from repro.models.base import Detector3D

from .executors import EXECUTION_MODES, LoweredProgram
from .faults import FaultInjector, FrameFaults
from .telemetry import (JITTER_LAYER, OVERHEAD_LAYER, LayerAttribution,
                        LayerTelemetry, TraceEvent, attribute_trace,
                        telemetry_digest)

__all__ = ["FrameRecord", "StreamReport", "DegradationPolicy",
           "SwapEvent", "LadderRung", "DegradationLadder",
           "InferenceEngine"]

FRAME_STATUSES = ("ok", "degraded", "dropped", "failed")


@dataclass
class FrameRecord:
    """Accounting for one processed frame."""

    frame_id: int
    num_detections: int
    device_latency_s: float
    device_energy_j: float
    deadline_met: bool
    #: ``ok`` — inference ran on a valid frame; ``degraded`` — the frame
    #: was corrupt and the policy substituted detections; ``dropped`` —
    #: the frame never reached (or was discarded by) the engine;
    #: ``failed`` — an admitted frame's execution raised (e.g. a worker
    #: crash mid-window) and the frame was finalized with an empty
    #: prediction instead of stalling its stream.
    status: str = "ok"
    #: True while the watchdog has execution on any rung below the
    #: primary (the legacy "on the fallback model" flag).
    fallback: bool = False
    #: Name of the ladder rung that served this frame; ``None`` on the
    #: primary.  Makes mixed-rung streams attributable per frame.
    rung: str | None = None


@dataclass(frozen=True)
class SwapEvent:
    """One watchdog hot swap between ladder rungs.

    ``frame_id`` is the frame whose deadline outcome *triggered* the
    swap; the swap takes effect from the next processed frame, so this
    frame's :class:`FrameRecord.rung` still names ``from_rung``.
    """

    frame_id: int
    #: ``"demote"`` (deadline misses) or ``"promote"`` (recovery)
    kind: str
    from_rung: str | None
    to_rung: str | None


@dataclass
class LadderRung:
    """One operating point of a :class:`DegradationLadder`.

    ``ir`` is the rung's pre-extracted (typically archive-embedded)
    :class:`~repro.ir.ModelIR`; when every rung carries one, hot swaps
    are zero-retrace — the engine never traces a model after
    construction.  ``miss_limit`` overrides the policy's
    ``max_consecutive_misses`` for demotion *off* this rung (``None``
    inherits the policy value).
    """

    name: str
    model: Detector3D
    ir: ModelIR | None = None
    miss_limit: int | None = None


class DegradationLadder:
    """An ordered list of model variants the watchdog walks at runtime.

    ``rungs[0]`` is the primary; each later rung is the next-cheaper
    variant to demote to (e.g. LCK-16 → LCK-8 → HCK-8 → HCK-4).
    ``promote_after`` consecutive on-deadline frames on a lower rung
    promote execution one rung back up (``0`` disables promotion — the
    legacy one-way watchdog).  Each promotion opens a ``probation``
    window of that many processed frames during which a *single*
    deadline miss demotes immediately, so a rung that only looked
    healthy under falling load cannot flap.
    """

    def __init__(self, rungs, promote_after: int = 5,
                 probation: int = 3):
        rungs = list(rungs)
        if not rungs:
            raise ValueError("a degradation ladder needs at least one rung")
        names = [rung.name for rung in rungs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rung names in ladder: {names}")
        if promote_after < 0:
            raise ValueError("promote_after must be >= 0 (0 disables)")
        if probation < 0:
            raise ValueError("probation must be >= 0")
        self.rungs = rungs
        self.promote_after = promote_after
        self.probation = probation

    def __len__(self) -> int:
        return len(self.rungs)

    @property
    def names(self) -> list[str]:
        return [rung.name for rung in self.rungs]

    @staticmethod
    def from_archive(reader, names, model_factory,
                     promote_after: int = 5, probation: int = 3,
                     miss_limits=None) -> "DegradationLadder":
        """Restore the named archive entries into a ready ladder.

        ``reader`` is a :class:`~repro.core.archive.ArchiveReader`;
        ``names`` orders the rungs, primary first.  ``model_factory``
        builds a fresh architecture per rung — called either with no
        arguments or, if that raises ``TypeError``, with the entry's
        recorded ``meta`` dict.  Every rung adopts the IR embedded in
        its blob, so the resulting engine hot-swaps with zero re-trace.
        Raises :class:`ValueError` when an entry lacks an embedded IR —
        a ladder without IRs would silently re-trace on every swap.
        """
        names = list(names)
        if not names:
            raise ValueError("ladder needs at least one archive entry name")
        miss_limits = dict(miss_limits or {})
        rungs = []
        for name in names:
            entry = reader.entry(name)
            try:
                model = model_factory()
            except TypeError:
                model = model_factory(entry.meta)
            report = reader.restore(name, model)
            if report.ir is None:
                raise ValueError(
                    f"archive entry {name!r} has no embedded ModelIR — "
                    f"pack variants with pack_model(model, ir=...) so "
                    f"ladder swaps never re-trace")
            model.eval()
            rungs.append(LadderRung(name=name, model=model, ir=report.ir,
                                    miss_limit=miss_limits.get(name)))
        return DegradationLadder(rungs, promote_after=promote_after,
                                 probation=probation)


@dataclass
class DegradationPolicy:
    """How the engine degrades instead of failing.

    ``on_corrupt`` selects what a corrupted frame emits: ``last_good``
    repeats the most recent valid detections (a tracking-style hold),
    ``skip`` discards the frame entirely (recorded as ``dropped``).
    ``max_consecutive_misses`` arms the deadline watchdog: after that
    many back-to-back deadline misses the engine swaps to its fallback
    model (when one was provided at construction).  ``0`` disables the
    watchdog.
    """

    on_corrupt: str = "last_good"       # "last_good" | "skip"
    max_consecutive_misses: int = 3

    def __post_init__(self):
        if self.on_corrupt not in ("last_good", "skip"):
            raise ValueError(
                f"unknown corruption policy {self.on_corrupt!r}")
        if self.max_consecutive_misses < 0:
            raise ValueError("max_consecutive_misses must be >= 0")


@dataclass
class StreamReport:
    """Aggregate results of a streaming run."""

    frames: list[FrameRecord] = field(default_factory=list)
    predictions: list[DetectionResult] = field(default_factory=list)
    deadline_s: float = 0.1
    #: Times the watchdog demoted to a lower rung (legacy counter: for
    #: a single-fallback engine this is the fallback activation count).
    fallback_activations: int = 0
    #: Every watchdog hot swap, in stream order (demotions *and*
    #: promotions) — the frame that triggered each is recorded, so swap
    #: events reconcile exactly with per-frame ``FrameRecord.rung``.
    swap_events: list[SwapEvent] = field(default_factory=list)
    #: Per-frame per-layer cost attributions (engine ``trace=True``).
    trace: list[TraceEvent] = field(default_factory=list)
    #: Per-layer executor counters (engine ``telemetry=True``) —
    #: snapshots taken when the run finished.
    telemetry: dict[str, LayerTelemetry] = field(default_factory=dict)

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def ok_frames(self) -> int:
        return sum(1 for f in self.frames if f.status == "ok")

    @property
    def degraded_frames(self) -> int:
        return sum(1 for f in self.frames if f.status == "degraded")

    @property
    def dropped_frames(self) -> int:
        return sum(1 for f in self.frames if f.status == "dropped")

    @property
    def failed_frames(self) -> int:
        return sum(1 for f in self.frames if f.status == "failed")

    @property
    def status_counts(self) -> dict:
        return {status: sum(1 for f in self.frames if f.status == status)
                for status in FRAME_STATUSES}

    @property
    def mean_latency_s(self) -> float:
        """Mean device latency over frames that actually ran inference.

        NaN for an empty (or fully dropped/degraded) stream, matching
        :attr:`deadline_hit_rate` — a 0 ms mean over zero frames would
        read as an impossibly fast stream.
        """
        processed = [f.device_latency_s for f in self.frames
                     if f.status == "ok"]
        if not processed:
            return math.nan
        return float(np.mean(processed))

    @property
    def total_energy_j(self) -> float:
        return float(sum(f.device_energy_j for f in self.frames))

    def latency_percentile(self, q: float) -> float:
        """``q``-th percentile device latency over frames that ran.

        Linear-interpolated percentile (``q`` in [0, 100]) over ``ok``
        frames only — degraded and dropped frames never ran inference,
        so their 0 ms placeholders would drag tail estimates down.  NaN
        on an empty (or fully dropped/degraded) stream, matching
        :attr:`mean_latency_s`.  ``q`` outside [0, 100] (or NaN) raises
        :class:`ValueError` — silently extrapolating a percentile would
        report a latency no frame ever had.
        """
        if not 0.0 <= q <= 100.0:       # also rejects NaN
            raise ValueError(
                f"percentile q must be in [0, 100], got {q!r}")
        processed = [f.device_latency_s for f in self.frames
                     if f.status == "ok"]
        if not processed:
            return math.nan
        return float(np.percentile(processed, q))

    @property
    def demotions(self) -> int:
        return sum(1 for e in self.swap_events if e.kind == "demote")

    @property
    def promotions(self) -> int:
        return sum(1 for e in self.swap_events if e.kind == "promote")

    @property
    def rung_residency(self) -> dict:
        """Frames served per rung name (``"primary"`` for rung None)."""
        residency: dict[str, int] = {}
        for frame in self.frames:
            label = frame.rung if frame.rung is not None else "primary"
            residency[label] = residency.get(label, 0) + 1
        return residency

    def ladder_summary(self) -> str:
        """One line of swap-event accounting for ladder streams."""
        residency = ", ".join(f"{name} {count}"
                              for name, count in
                              self.rung_residency.items())
        return (f"ladder: {self.demotions} demotions, "
                f"{self.promotions} promotions; residency: {residency}")

    @property
    def deadline_hit_rate(self) -> float:
        """Deadline hit rate over frames that actually ran inference.

        NaN for an empty (or fully dropped/degraded) stream — a 100%
        hit rate over zero frames would be misleading.
        """
        processed = [f.deadline_met for f in self.frames
                     if f.status == "ok"]
        if not processed:
            return math.nan
        return float(np.mean(processed))

    def evaluate(self, ground_truth) -> dict:
        """mAP of the streamed predictions against ground-truth boxes.

        Degraded and dropped frames contribute their (held or empty)
        predictions like any other frame, so detection quality reflects
        what the stream actually emitted.  Per-class conventions follow
        :func:`repro.detection.evaluate_map`: a class with no ground
        truth is NaN and excluded from the mean — an all-dropped stream
        against real ground truth scores a legitimate mAP of 0.0.
        """
        if not self.frames:
            raise ValueError(
                "cannot evaluate an empty stream: no frames were "
                "processed (was every frame dropped before the engine?)")
        return evaluate_map(self.predictions, ground_truth)

    def top_offenders(self, k: int = 5,
                      missed_only: bool = True) -> list[LayerAttribution]:
        """The layers that cost the most over deadline-missing frames.

        Aggregates the per-frame trace attributions (engine
        ``trace=True``) across every processed frame that missed its
        deadline — ``missed_only=False`` aggregates over all processed
        frames instead — and returns the ``k`` most latency-expensive
        layers, sorted descending.  Pseudo-layers (``"nonkernel"``
        overhead, ``"fault_jitter"``) participate: injected jitter or
        the incompressible non-kernel floor can legitimately be what
        broke the deadline.  Empty when tracing was disabled or no
        frame qualified.
        """
        if missed_only:
            frame_ids = {f.frame_id for f in self.frames
                         if f.status == "ok" and not f.deadline_met}
        else:
            frame_ids = {f.frame_id for f in self.frames
                         if f.status == "ok"}
        return attribute_trace(self.trace, frame_ids)[:k]

    def summary(self) -> str:
        hit = self.deadline_hit_rate
        hit_text = "n/a" if math.isnan(hit) else f"{hit:.0%}"
        mean = self.mean_latency_s
        mean_text = "n/a" if math.isnan(mean) else f"{mean * 1e3:.3f} ms"

        def pct_text(q):
            value = self.latency_percentile(q)
            return "n/a" if math.isnan(value) else f"{value * 1e3:.3f} ms"

        failed = self.failed_frames
        failed_text = f", {failed} failed" if failed else ""
        text = (f"stream: {self.num_frames} frames "
                f"({self.ok_frames} ok, {self.degraded_frames} degraded, "
                f"{self.dropped_frames} dropped{failed_text}), "
                f"deadline hit rate {hit_text}, "
                f"mean latency {mean_text}, "
                f"p50/p99 latency {pct_text(50)}/{pct_text(99)}, "
                f"total energy {self.total_energy_j * 1e3:.1f} mJ")
        if self.fallback_activations:
            text += (f", watchdog fallbacks: {self.fallback_activations}")
        if self.swap_events:
            text += "\n" + self.ladder_summary()
        if self.telemetry:
            text += "\n" + telemetry_digest(self.telemetry)
        return text


class _LadderLevel:
    """Per-rung compiled state: IR → plan → lowered program, cached.

    Levels are built once at engine construction and survive swaps in
    both directions, so demoting back to (or promoting back from) a
    rung reuses its compiled plan and executors — hot swaps never
    re-trace and never re-lower a rung already visited.
    """

    __slots__ = ("rung", "ir", "plan", "program", "layer_costs")

    def __init__(self, rung: LadderRung):
        self.rung = rung
        self.ir: ModelIR | None = rung.ir
        self.plan: CompiledPlan | None = None
        self.program: LoweredProgram | None = None
        self.layer_costs: tuple | None = None


#: Sentinel distinguishing "inherit the engine's value" from an
#: explicit ``None`` override in :meth:`InferenceEngine._new_session`.
_INHERIT = object()


class _StreamSession:
    """Sequential per-stream state: one client's report in progress.

    Everything the degradation machinery mutates while a stream runs —
    the last-good hold, the watchdog counters, the serving rung index,
    the report under construction — lives here rather than on the
    engine, so any number of sessions can advance concurrently over the
    same engine's compiled :class:`_LadderLevel` pool (the seam
    :class:`~repro.runtime.serving.ServingEngine` multiplexes streams
    through).  A session is strictly sequential: only one thread may
    advance it at a time, which the serving scheduler guarantees by
    keeping at most one in-flight window per stream.
    """

    __slots__ = ("report", "deadline_s", "policy", "fault_injector",
                 "trace", "collectors", "last_good", "misses", "hits",
                 "probation", "active")

    def __init__(self, *, deadline_s: float, policy: DegradationPolicy,
                 fault_injector, trace: bool, collectors):
        self.report = StreamReport(deadline_s=deadline_s)
        self.deadline_s = deadline_s
        self.policy = policy
        self.fault_injector = fault_injector
        self.trace = trace
        #: ``layer name → LayerTelemetry`` for this stream, or ``None``
        #: when telemetry is off — each session owns its counters, so
        #: concurrent streams never mix theirs.
        self.collectors = collectors
        self.last_good: DetectionResult | None = None
        self.misses = 0
        self.hits = 0
        self.probation = 0
        #: This stream's serving rung (index into the engine's levels).
        self.active = 0


class InferenceEngine:
    """Streams scenes through a detector on a simulated device.

    Parameters
    ----------
    model:
        Any :class:`Detector3D` (typically a compressed one).
    device:
        The device model whose latency/energy are charged per frame.
    deadline_s:
        Real-time budget per frame (the paper targets "tens of
        milliseconds"); frames costing more are flagged.
    policy:
        The :class:`DegradationPolicy` applied to corrupt frames and
        deadline misses; defaults to last-good hold with a 3-miss
        watchdog.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` applied to
        every incoming frame — the chaos-testing hook.
    fallback_model:
        Optional cheaper detector (e.g. the HCK preset of the deployed
        LCK model) the watchdog swaps in after consecutive deadline
        misses — shorthand for a two-rung, never-promote ``ladder``.
    ladder:
        Optional :class:`DegradationLadder` of model variants.  Rung 0
        is the primary (``model`` may then be ``None``, or must be the
        rung-0 model); consecutive deadline misses demote execution
        rung by rung, and with ``ladder.promote_after > 0`` consecutive
        on-deadline frames promote it back up through a probation
        window.  Mutually exclusive with ``fallback_model``.
    cost_hook:
        Optional ``(frame_id, latency_s, energy_j) -> (latency_s,
        energy_j)`` callable through which every processed frame's
        device cost flows — the extension point for per-frame cost
        models beyond the injector's latency jitter.
    execution:
        ``"reference"`` (default) runs quantized layers through the
        float64 fake-quant reference executors; ``"lowered"`` runs the
        same executors on int64 multiply-accumulates;
        ``"lowered-sparse"`` is the lowered path with each prediction
        wrapped in a per-frame
        :class:`~repro.nn.occupancy.OccupancyContext` — the pillar
        scatter reports the occupied-canvas bbox and the executors
        skip verified all-zero input columns (a batched window uses
        the union of its member frames' bboxes).  All modes are
        bit-for-bit identical after the final rescale (see
        :mod:`repro.nn.quantized`; sparse windows are verified against
        the actual codes before use, so a stale window can only cost
        speed, never bits).  Models with no quantized layers execute
        their plain float forward in any mode.
    ir:
        Optional pre-extracted (or blob-restored)
        :class:`~repro.ir.ModelIR` for ``model``; when omitted the
        engine extracts it lazily with one traced forward pass.
    trace:
        When true, :meth:`run` records per-frame
        :class:`~repro.runtime.telemetry.TraceEvent` attributions —
        each processed frame's simulated device cost split across the
        plan's layers (plus non-kernel overhead and injected jitter),
        summing to the frame's recorded ``device_latency_s`` — so
        :meth:`StreamReport.top_offenders` can name the layers behind
        deadline misses.  Off by default (zero cost when off).
    telemetry:
        When true, attach per-layer
        :class:`~repro.runtime.telemetry.LayerTelemetry` counters to
        the lowered executors; the finished
        :class:`StreamReport.telemetry` carries snapshots and
        ``summary()`` gains a one-line digest.  Strictly opt-in and
        observation-only — the lowered ≡ reference bit-for-bit parity
        is unaffected.
    batch_size:
        Micro-batching window: :meth:`run` collects up to this many
        valid in-flight scenes and executes them in one batched lowered
        pass before emitting their per-frame records (in arrival
        order).  Deadline, watchdog, fault and degradation semantics
        stay per frame, and the batched pass is byte-identical to the
        sequential one (see ``docs/PERFORMANCE.md``), so ``1`` (the
        default) only disables the amortization, not any behavior.
    """

    def __init__(self, model: Detector3D | None, device: DeviceModel,
                 deadline_s: float = 0.1,
                 policy: DegradationPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 fallback_model: Detector3D | None = None,
                 cost_hook=None, execution: str = "reference",
                 ir: ModelIR | None = None, trace: bool = False,
                 telemetry: bool = False, batch_size: int = 1,
                 ladder: DegradationLadder | None = None):
        if execution not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {execution!r}; "
                             f"expected one of {EXECUTION_MODES}")
        if not isinstance(batch_size, int) or isinstance(batch_size, bool) \
                or batch_size < 1:
            raise ValueError(
                f"batch_size must be a positive integer, got {batch_size!r}")
        if ladder is not None and fallback_model is not None:
            raise ValueError(
                "pass either ladder or fallback_model, not both — a "
                "fallback model is the two-rung ladder")
        if ladder is not None:
            if model is not None and model is not ladder.rungs[0].model:
                raise ValueError(
                    "model must be the ladder's rung-0 (primary) model "
                    "or None when a ladder is provided")
            if ir is not None and ladder.rungs[0].ir is None:
                ladder.rungs[0].ir = ir
        elif model is None:
            raise ValueError("model is required without a ladder")
        self.device = device
        self.deadline_s = deadline_s
        self.policy = policy or DegradationPolicy()
        self.fault_injector = fault_injector
        self.fallback_model = fallback_model
        self.cost_hook = cost_hook
        self.execution = execution
        self.trace = trace
        self.telemetry = telemetry
        self.batch_size = batch_size
        #: long-lived collector map — survives a watchdog rung swap,
        #: so counters for a layer name accumulate across the swap
        #: instead of being lost with the old program
        self._collectors: dict[str, LayerTelemetry] = {}
        if ladder is None:
            rungs = [LadderRung(name="primary", model=model, ir=ir)]
            if fallback_model is not None:
                rungs.append(LadderRung(name="fallback",
                                        model=fallback_model))
            # Legacy semantics: one-way swap, no promotion.
            ladder = DegradationLadder(rungs, promote_after=0,
                                       probation=0)
        self.ladder = ladder
        self._levels = [_LadderLevel(rung) for rung in ladder.rungs]
        self._active = 0
        self.model = self._levels[0].rung.model

    # ------------------------------------------------------------------
    # Active-rung compiled state (per level, cached across swaps)
    # ------------------------------------------------------------------
    @property
    def _level(self) -> _LadderLevel:
        return self._levels[self._active]

    def _level_ir(self, level: _LadderLevel) -> ModelIR:
        """A level's IR — the single source for its plan + program.

        Extracted lazily only for rungs constructed without one (the
        legacy ``fallback_model`` path); archive-built ladders carry
        every rung's IR, so no trace ever happens after construction.
        """
        if level.ir is None:
            level.ir = extract_ir(level.rung.model,
                                  *level.rung.model.example_inputs())
        return level.ir

    def _level_plan(self, level: _LadderLevel) -> CompiledPlan:
        if level.plan is None:
            level.plan = lower_to_plan(self._level_ir(level))
        return level.plan

    def _level_program(self, level: _LadderLevel) -> LoweredProgram:
        if level.program is None:
            level.program = LoweredProgram(
                lower_executors(self._level_ir(level), level.rung.model),
                mode=self.execution)
            if self.telemetry:
                level.program.enable_telemetry(self._collectors)
        return level.program

    @property
    def ir(self) -> ModelIR:
        """The active model's IR (see :meth:`_level_ir`)."""
        return self._level_ir(self._level)

    @property
    def plan(self) -> CompiledPlan:
        return self._level_plan(self._level)

    @property
    def program(self) -> LoweredProgram:
        """Integer executors lowered from the shared IR (lazy)."""
        return self._level_program(self._level)

    def _level_costs(self, level: _LadderLevel) -> tuple:
        """Cached per-layer cost split of one level's plan.

        Returns ``(breakdown, base_latency, base_energy, overhead_lat,
        overhead_energy)`` where ``breakdown`` is the plan's per-layer
        ``(name, latency_s, energy_j)`` and the overhead terms are the
        non-kernel remainders, computed by subtraction so the parts sum
        to the whole-plan base costs exactly.
        """
        if level.layer_costs is None:
            plan = self._level_plan(level)
            breakdown = plan.cost_breakdown(self.device)
            base_latency = self.device.latency(plan)
            base_energy = self.device.energy(plan)
            kernel_lat = sum(lat for _, lat, _ in breakdown)
            kernel_energy = sum(en for _, _, en in breakdown)
            level.layer_costs = (breakdown, base_latency, base_energy,
                                 base_latency - kernel_lat,
                                 base_energy - kernel_energy)
        return level.layer_costs

    def _cost_model(self) -> tuple:
        """Cached cost split of the *active* plan (see _level_costs)."""
        return self._level_costs(self._level)

    def _trace_events(self, session: _StreamSession, frame_id: int,
                      latency_s: float, energy_j: float,
                      jitter_s: float) -> list[TraceEvent]:
        """Attribute one frame's recorded cost to the plan's layers.

        ``latency_s`` / ``energy_j`` are the frame's charged device
        costs *excluding* jitter (the cost-hook output).  Each layer
        receives its plan-cost share scaled by whatever the hook did to
        the base cost; jitter gets its own pseudo-event.  The event sums
        reproduce the frame's recorded totals within float tolerance.
        """
        breakdown, base_lat, base_energy, over_lat, over_energy = \
            self._level_costs(self._levels[session.active])
        lat_scale = latency_s / base_lat if base_lat > 0 else 0.0
        energy_scale = energy_j / base_energy if base_energy > 0 else 0.0
        events = [TraceEvent(frame_id=frame_id, layer=name,
                             latency_s=lat * lat_scale,
                             energy_j=en * energy_scale)
                  for name, lat, en in breakdown]
        events.append(TraceEvent(frame_id=frame_id, layer=OVERHEAD_LAYER,
                                 latency_s=over_lat * lat_scale,
                                 energy_j=over_energy * energy_scale,
                                 kind="overhead"))
        if jitter_s:
            events.append(TraceEvent(frame_id=frame_id, layer=JITTER_LAYER,
                                     latency_s=jitter_s, energy_j=0.0,
                                     kind="jitter"))
        return events

    def _predict(self, scene) -> DetectionResult:
        """One inference, through the lowered program when it has work."""
        program = self.program
        if not program.executors:
            return self.model.predict(scene)
        with program.attached(self.model):
            return self.model.predict(scene)

    def _predict_window(self, scenes) -> list[DetectionResult]:
        """One micro-batch of inferences through the lowered program."""
        if not scenes:
            return []
        return self.program.predict_window(self.model, scenes)

    def _window_results(self, level: _LadderLevel, scenes,
                        collectors=None) -> list[DetectionResult]:
        """One micro-batch through a specific level's program.

        ``collectors`` names the telemetry store the window should
        count into: the engine's own long-lived collectors need no
        work (they are attached at program build when the engine was
        constructed with ``telemetry=True``), while a session-owned
        store is swapped in around the window and the engine's state
        restored after — this is how concurrent serving streams keep
        per-stream counters without sharing them.  Swapping mutates
        the program's executor slots, so callers running windows
        concurrently must serialize per program (the serving scheduler
        leases one window per program replica at a time).
        """
        if not scenes:
            return []
        program = self._level_program(level)
        model = level.rung.model
        base = self._collectors if self.telemetry else None
        swap = collectors is not None and collectors is not base
        if swap:
            program.enable_telemetry(collectors)
        try:
            return program.predict_window(model, scenes)
        finally:
            if swap:
                if base is not None:
                    program.enable_telemetry(base)
                else:
                    program.disable_telemetry()

    @property
    def on_fallback(self) -> bool:
        """Whether the watchdog has demoted off the primary rung."""
        return self._active > 0

    @property
    def active_rung(self) -> str | None:
        """Name of the serving rung; ``None`` while on the primary."""
        if self._active == 0:
            return None
        return self._level.rung.name

    def frame_cost(self, frame_id: int | None = None) -> tuple[float, float]:
        """(latency s, energy J) charged for a frame on this device.

        With a ``frame_id`` the cost flows through :attr:`cost_hook`, so
        per-frame cost models (and tests) can vary it; without one the
        hook is bypassed and the plan's base cost is returned.
        """
        latency = self.device.latency(self.plan)
        energy = self.device.energy(self.plan)
        if frame_id is not None and self.cost_hook is not None:
            latency, energy = self.cost_hook(frame_id, latency, energy)
        return latency, energy

    # ------------------------------------------------------------------
    @staticmethod
    def _scene_valid(scene) -> bool:
        """A frame is processable iff its point cloud is finite."""
        points = getattr(scene, "points", None)
        if points is None:
            return False
        return bool(np.isfinite(points).all())

    def _switch(self, index: int) -> None:
        """Hot-swap execution to ``self._levels[index]`` — zero retrace.

        Only the active index and ``self.model`` change; every level
        keeps its compiled plan/program/cost cache, so revisiting a rung
        costs nothing and ``extract_ir`` is never re-entered for rungs
        constructed with an IR.
        """
        self._active = index
        self.model = self._level.rung.model

    def _demote(self) -> bool:
        """Swap one rung down; False when already at the bottom."""
        if self._active + 1 >= len(self._levels):
            return False
        self._switch(self._active + 1)
        return True

    def _promote(self) -> bool:
        """Swap one rung up; False when already on the primary."""
        if self._active == 0:
            return False
        self._switch(self._active - 1)
        return True

    def _held_result(self, frame_id: int,
                     last_good: DetectionResult | None) -> DetectionResult:
        if last_good is None:
            return DetectionResult(boxes=[], frame_id=frame_id)
        return DetectionResult(boxes=list(last_good.boxes),
                               frame_id=frame_id)

    # ------------------------------------------------------------------
    # Per-stream session machinery (the seam the serving engine uses)
    # ------------------------------------------------------------------
    def _new_session(self, *, deadline_s: float | None = None,
                     policy: DegradationPolicy | None = None,
                     fault_injector=_INHERIT, trace: bool | None = None,
                     collectors=None) -> _StreamSession:
        """A fresh sequential stream session over this engine's levels.

        Every ``None`` (or ``_INHERIT`` for the injector, where ``None``
        is a meaningful override) inherits the engine's own setting.
        ``collectors`` is the session's telemetry store (``None`` keeps
        telemetry off for the stream).
        """
        return _StreamSession(
            deadline_s=self.deadline_s if deadline_s is None
            else deadline_s,
            policy=self.policy if policy is None else policy,
            fault_injector=self.fault_injector
            if fault_injector is _INHERIT else fault_injector,
            trace=self.trace if trace is None else trace,
            collectors=collectors)

    def _classify(self, session: _StreamSession, scene) -> tuple:
        """Fault-inject + validate one arriving frame.

        Returns the pending-queue entry ``(kind, frame_id, scene,
        faults)`` with ``kind`` one of ``"dropped"`` / ``"corrupt"`` /
        ``"run"`` — classification is stateless per frame (the injector
        is seeded by frame id), so it can happen ahead of emission.
        """
        frame_id = scene.frame_id
        injector = session.fault_injector
        faults = injector.faults_for(frame_id) if injector is not None \
            else FrameFaults(frame_id=frame_id)
        incoming = injector.apply(scene, faults) \
            if injector is not None else scene
        if incoming is None:            # dropped before the engine
            return ("dropped", frame_id, None, faults)
        if not self._scene_valid(incoming):
            return ("corrupt", frame_id, None, faults)
        return ("run", frame_id, incoming, faults)

    def _session_rung(self, session: _StreamSession) -> str | None:
        if session.active == 0:
            return None
        return self._levels[session.active].rung.name

    def _session_cost(self, session: _StreamSession,
                      frame_id: int) -> tuple[float, float]:
        """(latency s, energy J) of one frame on the session's rung."""
        plan = self._level_plan(self._levels[session.active])
        latency = self.device.latency(plan)
        energy = self.device.energy(plan)
        if self.cost_hook is not None:
            latency, energy = self.cost_hook(frame_id, latency, energy)
        return latency, energy

    def _emit_dropped(self, session: _StreamSession,
                      frame_id: int) -> None:
        report = session.report
        report.predictions.append(
            DetectionResult(boxes=[], frame_id=frame_id))
        report.frames.append(FrameRecord(
            frame_id=frame_id, num_detections=0,
            device_latency_s=0.0, device_energy_j=0.0,
            deadline_met=True, status="dropped",
            fallback=session.active > 0,
            rung=self._session_rung(session)))

    def _emit_corrupt(self, session: _StreamSession,
                      frame_id: int) -> None:
        """Corrupt frame: no inference, degrade per the policy."""
        if session.policy.on_corrupt == "skip":
            status = "dropped"
            result = DetectionResult(boxes=[], frame_id=frame_id)
        else:
            status = "degraded"
            result = self._held_result(frame_id, session.last_good)
        report = session.report
        report.predictions.append(result)
        report.frames.append(FrameRecord(
            frame_id=frame_id, num_detections=len(result.boxes),
            device_latency_s=0.0, device_energy_j=0.0,
            deadline_met=True, status=status,
            fallback=session.active > 0,
            rung=self._session_rung(session)))

    def _emit_failed(self, session: _StreamSession,
                     frame_id: int) -> None:
        """Finalize an admitted frame whose execution raised.

        The frame gets an empty prediction and a typed ``failed``
        status so the stream's report stays aligned with its inputs and
        its in-flight slot can be released — a window-level crash must
        never stall the stream.  No cost is charged (the work never
        ran), the last-good hold is untouched (an execution error says
        nothing about scene content), and the watchdog does not step
        (no deadline outcome was observed).
        """
        report = session.report
        report.predictions.append(
            DetectionResult(boxes=[], frame_id=frame_id))
        report.frames.append(FrameRecord(
            frame_id=frame_id, num_detections=0,
            device_latency_s=0.0, device_energy_j=0.0,
            deadline_met=False, status="failed",
            fallback=session.active > 0,
            rung=self._session_rung(session)))

    def _session_window_cost(self, session: _StreamSession) -> float:
        """Estimated device latency of one window on the session's rung.

        The plan's base latency (no cost hook, no jitter — both are
        per-frame perturbations unknown before emission): the signal
        the serving scheduler compares against a queued frame's
        deadline slack to decide when holding a partial window for
        more co-batching members stops being safe.
        """
        return self._level_costs(self._levels[session.active])[1]

    def _emit_result(self, session: _StreamSession, frame_id: int,
                     result: DetectionResult, faults) -> bool:
        """Record one executed frame; True when the watchdog swapped.

        The per-frame step the batched window fans results through:
        charge the device cost (through the cost hook), trace, check
        the deadline, append the record, update the last-good hold, and
        advance the watchdog.  A ``True`` return means frames already
        predicted on the old rung must be re-run (the swap takes effect
        from the next frame).
        """
        latency, energy = self._session_cost(session, frame_id)
        report = session.report
        if session.trace:
            report.trace.extend(self._trace_events(
                session, frame_id, latency, energy, faults.jitter_s))
        latency += faults.jitter_s
        deadline_met = latency <= session.deadline_s
        report.predictions.append(result)
        report.frames.append(FrameRecord(
            frame_id=frame_id,
            num_detections=len(result.boxes),
            device_latency_s=latency,
            device_energy_j=energy,
            deadline_met=deadline_met,
            status="ok",
            fallback=session.active > 0,
            rung=self._session_rung(session)))
        session.last_good = result
        return self._watchdog_step(session, frame_id, deadline_met)

    def _finish_session(self, session: _StreamSession) -> StreamReport:
        if session.collectors is not None:
            session.report.telemetry = {
                name: counter.snapshot()
                for name, counter in session.collectors.items()}
        return session.report

    # ------------------------------------------------------------------
    def run(self, scenes) -> StreamReport:
        """Process a scene stream; returns the accounting report.

        Per frame: inject faults (when configured), validate the point
        cloud, run inference on valid frames with per-frame device cost
        (base plan cost + injector jitter, through :attr:`cost_hook`),
        degrade on corrupt frames per the policy, and arm the deadline
        watchdog on consecutive misses.  The report always carries one
        prediction per non-skipped input frame, so downstream
        evaluation stays aligned with ground truth.

        With ``batch_size > 1`` the engine buffers frames until it
        holds that many *valid* scenes, runs them as one batched
        lowered pass, then emits every buffered frame's record in
        arrival order.  Dropped/corrupt frames never trigger inference
        and don't count toward the window, and all per-frame semantics
        (deadline, watchdog, degradation, cost hook, trace) are
        evaluated exactly as in the sequential path — the batched pass
        itself is byte-identical to per-frame execution.
        """
        session = self._new_session(
            collectors=self._collectors if self.telemetry else None)
        pending: list[tuple] = []
        for scene in scenes:
            pending.append(self._classify(session, scene))
            if sum(1 for kind, *_ in pending if kind == "run") \
                    >= self.batch_size:
                self._flush_window(session, pending)
                pending = []
        if pending:
            self._flush_window(session, pending)
        # Sync the engine's notion of the active rung with where the
        # stream ended, preserving post-run introspection
        # (``on_fallback`` / ``active_rung`` / ``model``).
        self._switch(session.active)
        return self._finish_session(session)

    def _flush_window(self, session: _StreamSession,
                      pending: list[tuple]) -> None:
        """Emit one buffered window's frames, in arrival order.

        The window's valid frames run as one batched pass; records are
        then emitted per frame with sequential last-good / watchdog
        state.  If the watchdog demotes (or promotes) mid-window, the
        not-yet-emitted frames are re-predicted on the new rung —
        exactly what sequential execution would have done.
        """
        idx = 0
        while idx < len(pending):
            results = self._window_results(
                self._levels[session.active],
                [scene for kind, _, scene, _ in pending[idx:]
                 if kind == "run"],
                collectors=session.collectors)
            results = list(reversed(results))       # pop() in order
            restarted = False
            while idx < len(pending):
                kind, frame_id, scene, faults = pending[idx]
                idx += 1
                if kind == "dropped":
                    self._emit_dropped(session, frame_id)
                    continue
                if kind == "corrupt":
                    self._emit_corrupt(session, frame_id)
                    continue
                # Deadline watchdog: consecutive misses demote rung by
                # rung; with promotion enabled, consecutive on-deadline
                # frames climb back up through a probation window.
                swapped = self._emit_result(session, frame_id,
                                            results.pop(), faults)
                if swapped and results:
                    # Remaining window frames must run on the new
                    # rung, as sequentially.
                    restarted = True
                    break
            if not restarted:
                break

    def _watchdog_step(self, session: _StreamSession, frame_id: int,
                       deadline_met: bool) -> bool:
        """Advance watchdog state after one processed frame.

        Returns True when the stream's serving rung changed (demotion
        or promotion), so a batched window can restart on the new rung.
        The swap takes effect from the *next* frame — the triggering
        frame's record was already emitted on the old rung.
        """
        ladder = self.ladder
        if deadline_met:
            session.misses = 0
            if session.probation > 0:
                session.probation -= 1
            if session.active > 0 and ladder.promote_after > 0:
                session.hits += 1
                if session.hits >= ladder.promote_after \
                        and session.probation == 0:
                    from_rung = self._session_rung(session)
                    session.active -= 1
                    session.report.swap_events.append(SwapEvent(
                        frame_id=frame_id, kind="promote",
                        from_rung=from_rung,
                        to_rung=self._session_rung(session)))
                    session.hits = 0
                    session.probation = ladder.probation
                    return True
            return False

        session.hits = 0
        if session.probation > 0:
            # A miss during probation falls straight back down.
            return self._demote_now(session, frame_id)
        session.misses += 1
        limit = self._levels[session.active].rung.miss_limit
        if limit is None:
            limit = session.policy.max_consecutive_misses
        if limit and session.misses >= limit:
            return self._demote_now(session, frame_id)
        return False

    def _demote_now(self, session: _StreamSession,
                    frame_id: int) -> bool:
        """Demote one rung, recording the swap; False at the bottom.

        A failed demotion (already on the last rung) leaves the miss
        counter untouched — matching the legacy single-fallback
        behavior where an exhausted ladder keeps the watchdog armed.
        """
        if session.active + 1 >= len(self._levels):
            return False
        from_rung = self._session_rung(session)
        session.active += 1
        session.report.swap_events.append(SwapEvent(
            frame_id=frame_id, kind="demote",
            from_rung=from_rung, to_rung=self._session_rung(session)))
        session.report.fallback_activations += 1
        session.misses = 0
        session.hits = 0
        session.probation = 0
        return True

    @staticmethod
    def from_packed(blob: bytes, architecture: Detector3D,
                    device: DeviceModel,
                    deadline_s: float = 0.1,
                    **engine_kwargs) -> "InferenceEngine":
        """Restore a packed compressed checkpoint into an engine.

        The blob's integrity is verified before a weight is touched —
        see :func:`repro.core.packing.restore_model`; corruption raises
        :class:`~repro.core.packing.BlobCorruptionError` here rather
        than silently misreading on the vehicle.  When the blob embeds
        a :class:`~repro.ir.ModelIR` (packed with ``pack_model(model,
        ir=...)``), the engine adopts it directly — the plan and the
        lowered executors come from the stored IR, with no re-trace of
        the restored model.  Extra keyword arguments (``policy``,
        ``fault_injector``, ``fallback_model``, ``cost_hook``,
        ``execution``, ``trace``, ``telemetry``, ``batch_size``) pass
        through to the engine.
        """
        from repro.core.packing import restore_model
        report = restore_model(blob, architecture)
        architecture.eval()
        return InferenceEngine(architecture, device, deadline_s,
                               ir=report.ir, **engine_kwargs)
