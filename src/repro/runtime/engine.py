"""Deployment runtime: run a (compressed) detector over a scene stream.

Ties the whole stack together the way an on-vehicle deployment would:
a detector (optionally restored from a packed UPAQ blob) is compiled
once into a device plan, then consumes scenes frame by frame while the
engine accounts simulated device latency and energy per frame, enforces
a real-time deadline, and accumulates detection quality statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection import DetectionResult, evaluate_map
from repro.hardware import CompiledPlan, DeviceModel, compile_model
from repro.models.base import Detector3D

__all__ = ["FrameRecord", "StreamReport", "InferenceEngine"]


@dataclass
class FrameRecord:
    """Accounting for one processed frame."""

    frame_id: int
    num_detections: int
    device_latency_s: float
    device_energy_j: float
    deadline_met: bool


@dataclass
class StreamReport:
    """Aggregate results of a streaming run."""

    frames: list[FrameRecord] = field(default_factory=list)
    predictions: list[DetectionResult] = field(default_factory=list)
    deadline_s: float = 0.1

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def mean_latency_s(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([f.device_latency_s for f in self.frames]))

    @property
    def total_energy_j(self) -> float:
        return float(sum(f.device_energy_j for f in self.frames))

    @property
    def deadline_hit_rate(self) -> float:
        if not self.frames:
            return 1.0
        return float(np.mean([f.deadline_met for f in self.frames]))

    def evaluate(self, ground_truth) -> dict:
        """mAP of the streamed predictions against ground-truth boxes."""
        return evaluate_map(self.predictions, ground_truth)


class InferenceEngine:
    """Streams scenes through a detector on a simulated device.

    Parameters
    ----------
    model:
        Any :class:`Detector3D` (typically a compressed one).
    device:
        The device model whose latency/energy are charged per frame.
    deadline_s:
        Real-time budget per frame (the paper targets "tens of
        milliseconds"); frames costing more are flagged.
    """

    def __init__(self, model: Detector3D, device: DeviceModel,
                 deadline_s: float = 0.1):
        self.model = model
        self.device = device
        self.deadline_s = deadline_s
        self._plan: CompiledPlan | None = None

    @property
    def plan(self) -> CompiledPlan:
        if self._plan is None:
            self._plan = compile_model(self.model,
                                       *self.model.example_inputs())
        return self._plan

    def frame_cost(self) -> tuple[float, float]:
        """(latency s, energy J) charged per frame on this device."""
        return self.device.latency(self.plan), self.device.energy(self.plan)

    def run(self, scenes) -> StreamReport:
        """Process a scene stream; returns the accounting report."""
        latency, energy = self.frame_cost()
        report = StreamReport(deadline_s=self.deadline_s)
        for scene in scenes:
            result = self.model.predict(scene)
            report.predictions.append(result)
            report.frames.append(FrameRecord(
                frame_id=scene.frame_id,
                num_detections=len(result.boxes),
                device_latency_s=latency,
                device_energy_j=energy,
                deadline_met=latency <= self.deadline_s))
        return report

    @staticmethod
    def from_packed(blob: bytes, architecture: Detector3D,
                    device: DeviceModel,
                    deadline_s: float = 0.1) -> "InferenceEngine":
        """Restore a packed compressed checkpoint into an engine."""
        from repro.core.packing import unpack_model
        unpack_model(blob, architecture)
        architecture.eval()
        return InferenceEngine(architecture, device, deadline_s)
