"""Multi-stream serving: N client streams over shared compiled programs.

:class:`~repro.runtime.engine.InferenceEngine` owns one model and one
stream; real deployments serve many concurrent clients whose frames
arrive interleaved.  :class:`ServingEngine` multiplexes N client
streams over a pool of engine replicas (each a compiled
:class:`~repro.runtime.executors.LoweredProgram` ladder), giving every
stream its own deadline/SLO, degradation state and
:class:`~repro.runtime.engine.StreamReport` while sharing the compiled
substrate.

Architecture — one scheduler thread owns every stream's sequential
state; a small worker pool only executes micro-batch windows:

* **Admission control** — :meth:`ServingEngine.open_stream` rejects
  streams past ``max_streams`` with a typed :class:`AdmissionError`;
  submitting to an unknown or closed stream is likewise a typed
  reject, never a silent drop.
* **Backpressure** — each stream's pipeline (queued + classified +
  in-flight frames) is bounded by its SLO's ``queue_depth``.
  ``submit(block=False)`` past the bound raises
  :class:`BackpressureError` immediately; ``block=True`` waits for
  space (optionally with a timeout).  Space frees only when a frame's
  record is *emitted*, so the bound covers the whole pipeline.
* **Cross-stream micro-batching** — the scheduler opportunistically
  fills a ``batch_size=N`` window with head frames from *different*
  streams whose serving rung and scene signature (canvas/feature
  shapes) match, runs the window as one batched lowered pass on a
  leased replica, and fans the per-frame results back to the owning
  streams in order.  A window never takes two frames from one stream
  and a stream never has two windows in flight, so per-stream
  semantics (last-good hold, watchdog ladder walk, swap-effective-
  next-frame) are *exactly* the solo engine's: a swap triggered by
  stream A's emission cannot invalidate any other window member, and
  A's own next frame dispatches on the new rung.

Because the lowered integer path is bit-for-bit identical under any
batching factor (see ``docs/PERFORMANCE.md``), the per-stream reports
produced under the scheduler are byte-equal to running each stream
alone on a solo engine — ``tests/runtime/test_serving.py`` hammers
exactly that equivalence, telemetry and swap events included.

Thread-safety contract with the layers below: the geometry/plan caches
(:mod:`repro.nn.functional`, :mod:`repro.nn.quantized`) and telemetry
counters (:mod:`repro.runtime.telemetry`) are lock-protected, program
attachment is exclusive per replica
(:meth:`~repro.runtime.executors.LoweredProgram.attached`), and
occupancy contexts are thread-local
(:mod:`repro.nn.occupancy`) — see ``docs/SERVING.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from .engine import _INHERIT, DegradationPolicy, InferenceEngine, StreamReport

__all__ = ["ServingEngine", "StreamSLO", "StreamHandle", "ServingStats",
           "ServingError", "AdmissionError", "BackpressureError"]


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class AdmissionError(ServingError):
    """A stream (or frame) was refused admission — typed, not dropped.

    Raised when opening a stream past ``max_streams``, reusing a live
    stream name, or submitting to an unknown/closed stream or a
    shut-down engine.
    """


class BackpressureError(ServingError):
    """A stream's bounded pipeline is full and the caller chose not to
    (or timed out waiting to) block."""


@dataclass(frozen=True)
class StreamSLO:
    """Per-stream service-level objective and degradation overrides.

    Every ``None`` field inherits the serving engine's wrapped-engine
    setting, exactly like a solo :class:`InferenceEngine` constructed
    with those arguments — which is what keeps serving reports
    comparable to solo runs.

    Attributes
    ----------
    deadline_s:
        This stream's real-time budget per frame.
    policy:
        This stream's :class:`DegradationPolicy`.
    fault_injector:
        This stream's injector; pass ``None`` explicitly to disable
        injection even when the wrapped engine has one.
    trace:
        Per-frame cost attribution into the stream's report.
    telemetry:
        When true the stream gets its *own* per-layer counters
        (snapshotted into ``report.telemetry``).  Telemetry windows
        are never shared with other streams — per-layer counts cannot
        be split across the members of one batched pass — so a
        telemetry stream runs single-frame windows.
    queue_depth:
        Bound on this stream's pipeline (queued + classified +
        in-flight frames); ``None`` inherits the engine default.
    """

    deadline_s: float | None = None
    policy: DegradationPolicy | None = None
    fault_injector: object = _INHERIT
    trace: bool | None = None
    telemetry: bool = False
    queue_depth: int | None = None


@dataclass
class ServingStats:
    """Aggregate counters across every stream of a serving engine."""

    streams_opened: int = 0
    frames_submitted: int = 0
    frames_rejected: int = 0
    frames_completed: int = 0
    #: Micro-batch windows executed (a window of one frame counts).
    windows: int = 0
    #: Windows whose members came from two or more streams.
    cross_stream_windows: int = 0
    #: Frames that rode in a window of size > 1.
    batched_frames: int = 0

    def summary(self) -> str:
        return (f"serving: {self.streams_opened} streams, "
                f"{self.frames_completed}/{self.frames_submitted} frames "
                f"completed ({self.frames_rejected} rejected), "
                f"{self.windows} windows "
                f"({self.cross_stream_windows} cross-stream, "
                f"{self.batched_frames} batched frames)")


def _scene_signature(scene) -> tuple:
    """Shape key deciding whether two scenes may share a window.

    Frames only batch when the model would canvas them identically:
    same point feature width and same (or same-absent) camera image
    shape.  Mismatched signatures simply never share a window — they
    are still served, just unbatched.
    """
    points = getattr(scene, "points", None)
    image = getattr(scene, "image", None)
    points_key = None if points is None else tuple(points.shape[1:])
    image_key = None if image is None else tuple(image.shape)
    return (points_key, image_key)


class _Member:
    """One frame riding in a window, with its owning lane."""

    __slots__ = ("lane", "frame_id", "scene", "faults", "t_submit")

    def __init__(self, lane, frame_id, scene, faults, t_submit):
        self.lane = lane
        self.frame_id = frame_id
        self.scene = scene
        self.faults = faults
        self.t_submit = t_submit


class _Window:
    """One dispatched micro-batch: members + the leased replica."""

    __slots__ = ("replica", "rung", "members", "collectors")

    def __init__(self, replica, rung, members, collectors):
        self.replica = replica
        self.rung = rung
        self.members = members
        self.collectors = collectors


class _Lane:
    """One client stream's scheduler-side state.

    All fields are guarded by the serving engine's single lock; the
    scheduler thread is the only mutator of the session (emission),
    which is what guarantees per-stream sequential semantics.
    """

    __slots__ = ("name", "session", "queue", "classified", "queue_depth",
                 "inflight", "closed", "finalized", "done", "report",
                 "service_latencies", "partition")

    def __init__(self, name: str, session, queue_depth: int,
                 telemetry: bool):
        self.name = name
        self.session = session
        #: raw submitted ``(scene, t_submit)`` pairs, arrival order
        self.queue: deque = deque()
        #: classified ``((kind, frame_id, scene, faults), t_submit)``
        self.classified: deque = deque()
        self.queue_depth = queue_depth
        #: frames of this lane inside a dispatched, not-yet-emitted
        #: window (0 or 1 — at most one window in flight per lane)
        self.inflight = 0
        self.closed = False
        self.finalized = False
        self.done = threading.Event()
        self.report: StreamReport | None = None
        #: wall-clock submit→emit seconds per frame (not the simulated
        #: device latency inside the report)
        self.service_latencies: list[float] = []
        #: telemetry streams never share windows (``None`` = mixable)
        self.partition = name if telemetry else None

    @property
    def depth(self) -> int:
        return len(self.queue) + len(self.classified) + self.inflight


class StreamHandle:
    """Client-side handle to one open stream (thin, thread-safe)."""

    def __init__(self, engine: "ServingEngine", name: str):
        self._engine = engine
        self.name = name

    def submit(self, scene, *, block: bool = True,
               timeout: float | None = None) -> None:
        self._engine.submit(self.name, scene, block=block, timeout=timeout)

    def close(self) -> None:
        self._engine.close_stream(self.name)

    def result(self, timeout: float | None = None) -> StreamReport:
        return self._engine.result(self.name, timeout=timeout)

    @property
    def service_latencies(self) -> list[float]:
        return self._engine.service_latencies(self.name)


class ServingEngine:
    """Serve N concurrent client streams over shared compiled programs.

    Parameters
    ----------
    engine:
        The wrapped :class:`InferenceEngine` (its deadline, policy,
        injector, execution mode and ``batch_size`` become the
        defaults every stream inherits), or a zero-argument factory
        returning identical engines — required for ``replicas > 1``,
        since concurrent windows need separate model instances to
        attach to.  Engines must be constructed with
        ``telemetry=False``: per-stream telemetry flows through
        :class:`StreamSLO` instead, so streams never share counters.
    replicas:
        Size of the worker/replica pool — the number of windows that
        may execute concurrently.  Replica 0 additionally owns every
        stream's sequential emission state.
    max_streams:
        Admission bound on concurrently open streams.
    queue_depth:
        Default per-stream pipeline bound (see :class:`StreamSLO`).

    Windows fill up to the wrapped engine's ``batch_size`` with head
    frames from distinct streams whose rung and scene signature match.
    All compiled state (IR → plan → program per ladder rung) is
    pre-warmed at construction, so workers never race a lazy build.
    """

    def __init__(self, engine, *, replicas: int = 1,
                 max_streams: int = 16, queue_depth: int = 8):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        if max_streams < 1:
            raise ValueError(
                f"max_streams must be >= 1, got {max_streams!r}")
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth!r}")
        if isinstance(engine, InferenceEngine):
            if replicas != 1:
                raise ValueError(
                    "replicas > 1 needs an engine factory — concurrent "
                    "windows attach to separate model instances")
            pool = [engine]
        else:
            pool = [engine() for _ in range(replicas)]
        primary = pool[0]
        for replica in pool:
            if not isinstance(replica, InferenceEngine):
                raise TypeError(
                    f"engine (factory) must yield InferenceEngine, "
                    f"got {type(replica).__name__}")
            if replica.telemetry:
                raise ValueError(
                    "serving engines must wrap telemetry=False engines; "
                    "per-stream telemetry is configured via StreamSLO")
            if len(replica._levels) != len(primary._levels) \
                    or replica.execution != primary.execution \
                    or replica.batch_size != primary.batch_size:
                raise ValueError(
                    "replica engines must be identical (ladder depth, "
                    "execution mode, batch_size)")
            # Pre-warm every rung's compiled state so worker threads
            # never race a lazy IR extraction / lowering.
            for level in replica._levels:
                replica._level_costs(level)
                replica._level_program(level)
        self._engine = primary
        self._default_queue_depth = queue_depth
        self.max_streams = max_streams
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._lanes: dict[str, _Lane] = {}
        self._free_replicas: list[InferenceEngine] = list(pool)
        self._completions: deque = deque()
        self._inflight_windows = 0
        self._stats = ServingStats()
        self._stopping = False
        self._fatal: BaseException | None = None
        self._rotate = 0
        import concurrent.futures
        self._workers = concurrent.futures.ThreadPoolExecutor(
            max_workers=len(pool), thread_name_prefix="repro-serve")
        self._scheduler = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True)
        self._scheduler.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def open_stream(self, name: str,
                    slo: StreamSLO | None = None) -> StreamHandle:
        """Admit a new stream; typed reject past ``max_streams``."""
        slo = slo or StreamSLO()
        depth = slo.queue_depth
        if depth is None:
            depth = self._default_queue_depth
        if depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {depth!r}")
        with self._cond:
            self._check_fatal_locked()
            if self._stopping:
                raise AdmissionError(
                    "serving engine is shutting down; no new streams")
            if name in self._lanes:
                raise AdmissionError(
                    f"stream {name!r} already exists — stream names "
                    f"are unique for the life of the engine")
            live = sum(1 for lane in self._lanes.values()
                       if not lane.finalized)
            if live >= self.max_streams:
                raise AdmissionError(
                    f"admission refused: {live} live streams at the "
                    f"max_streams={self.max_streams} bound")
            session = self._engine._new_session(
                deadline_s=slo.deadline_s, policy=slo.policy,
                fault_injector=slo.fault_injector, trace=slo.trace,
                collectors={} if slo.telemetry else None)
            self._lanes[name] = _Lane(name, session, depth, slo.telemetry)
            self._stats.streams_opened += 1
            self._cond.notify_all()
        return StreamHandle(self, name)

    def submit(self, name: str, scene, *, block: bool = True,
               timeout: float | None = None) -> None:
        """Enqueue one frame on a stream.

        Blocks while the stream's bounded pipeline is full
        (``block=True``; a ``timeout`` raises
        :class:`BackpressureError` on expiry), or raises
        :class:`BackpressureError` immediately (``block=False``).
        Unknown or closed streams raise :class:`AdmissionError`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            lane = self._lane_locked(name)
            while True:
                self._check_fatal_locked()
                if lane.closed or self._stopping:
                    raise AdmissionError(
                        f"stream {name!r} is closed; frame refused")
                if lane.depth < lane.queue_depth:
                    break
                if not block:
                    self._stats.frames_rejected += 1
                    raise BackpressureError(
                        f"stream {name!r} pipeline full "
                        f"({lane.queue_depth} frames); frame rejected")
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._stats.frames_rejected += 1
                    raise BackpressureError(
                        f"stream {name!r} still full after "
                        f"{timeout:.3f}s; frame rejected")
                self._cond.wait(remaining if remaining is not None
                                else 0.1)
            lane.queue.append((scene, time.perf_counter()))
            self._stats.frames_submitted += 1
            self._cond.notify_all()

    def close_stream(self, name: str) -> None:
        """Mark a stream end-of-input; its report finalizes once the
        pipeline drains.  Idempotent."""
        with self._cond:
            lane = self._lane_locked(name)
            lane.closed = True
            self._cond.notify_all()

    def result(self, name: str,
               timeout: float | None = None) -> StreamReport:
        """The stream's finished :class:`StreamReport` (blocks until
        the closed stream drains)."""
        with self._cond:
            lane = self._lane_locked(name)
        if not lane.done.wait(timeout):
            raise ServingError(
                f"stream {name!r} did not finish within {timeout}s "
                f"(was it closed?)")
        with self._cond:
            self._check_fatal_locked()
            if lane.report is None:
                raise ServingError(
                    f"stream {name!r} was aborted before finishing")
            return lane.report

    def service_latencies(self, name: str) -> list[float]:
        """Wall-clock submit→emit seconds per emitted frame."""
        with self._cond:
            return list(self._lane_locked(name).service_latencies)

    def stats(self) -> ServingStats:
        with self._cond:
            return replace(self._stats)

    def serve(self, streams: dict, slos: dict | None = None,
              interval_s: float = 0.0) -> dict:
        """Convenience: run whole scene iterables as concurrent streams.

        One paced client thread per stream submits with ``block=True``
        (``interval_s`` spaces submissions — ``1 / offered_load``),
        closes, and the call returns ``{name: StreamReport}``.
        Running the clients concurrently is what lets cross-stream
        windows actually form.
        """
        slos = slos or {}
        handles = {name: self.open_stream(name, slos.get(name))
                   for name in streams}

        def client(name):
            for scene in streams[name]:
                if interval_s > 0:
                    time.sleep(interval_s)
                handles[name].submit(scene, block=True)
            handles[name].close()

        threads = [threading.Thread(target=client, args=(name,),
                                    name=f"repro-serve-client-{name}")
                   for name in streams]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {name: handles[name].result() for name in streams}

    def shutdown(self, timeout: float | None = None) -> None:
        """Close every stream, drain, and stop the scheduler."""
        with self._cond:
            self._stopping = True
            for lane in self._lanes.values():
                lane.closed = True
            self._cond.notify_all()
        self._scheduler.join(timeout)
        self._workers.shutdown(wait=True)
        with self._cond:
            self._check_fatal_locked()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Scheduler internals (single scheduler thread + leased workers)
    # ------------------------------------------------------------------
    def _lane_locked(self, name: str) -> _Lane:
        lane = self._lanes.get(name)
        if lane is None:
            raise AdmissionError(
                f"unknown stream {name!r} — open_stream() it first")
        return lane

    def _check_fatal_locked(self) -> None:
        if self._fatal is not None:
            raise ServingError(
                "serving engine aborted on an internal error"
            ) from self._fatal

    def _loop(self) -> None:
        while True:
            dispatches: list[_Window] = []
            with self._cond:
                self._drain_completions_locked()
                self._drain_lanes_locked()
                if self._fatal is not None:
                    if self._inflight_windows == 0:
                        self._abort_locked()
                        return
                else:
                    dispatches = self._form_windows_locked()
                if not dispatches:
                    if self._stopping and self._inflight_windows == 0 \
                            and not self._completions \
                            and all(lane.finalized
                                    for lane in self._lanes.values()):
                        return
                    self._cond.wait(0.05)
            for window in dispatches:
                self._workers.submit(self._run_window, window)

    def _drain_lanes_locked(self) -> None:
        """Classify queued frames and emit what needs no inference.

        Classification is stateless per frame (the injector is seeded
        by frame id), so it can run ahead; dropped/corrupt frames at
        the head of a lane with no window in flight emit immediately —
        in exactly the arrival order the solo engine would have used.
        Closed, fully drained lanes finalize their reports here.
        """
        engine = self._engine
        for lane in self._lanes.values():
            while lane.queue:
                scene, t_submit = lane.queue.popleft()
                entry = engine._classify(lane.session, scene)
                lane.classified.append((entry, t_submit))
            emitted = False
            while not lane.inflight and lane.classified \
                    and lane.classified[0][0][0] != "run":
                (kind, frame_id, _, _), t_submit = \
                    lane.classified.popleft()
                if kind == "dropped":
                    engine._emit_dropped(lane.session, frame_id)
                else:
                    engine._emit_corrupt(lane.session, frame_id)
                lane.service_latencies.append(
                    time.perf_counter() - t_submit)
                self._stats.frames_completed += 1
                emitted = True
            if emitted:
                self._cond.notify_all()     # pipeline space freed
            if lane.closed and not lane.finalized and not lane.inflight \
                    and not lane.queue and not lane.classified:
                lane.report = engine._finish_session(lane.session)
                lane.finalized = True
                lane.done.set()
                self._cond.notify_all()

    def _form_windows_locked(self) -> list[_Window]:
        """Group head frames into shape-compatible windows.

        A window takes at most one frame per stream (so a mid-window
        rung swap in one stream can never invalidate another member —
        nor the swapping stream's own, since its next frame dispatches
        after emission) and only groups streams whose serving rung,
        scene signature and telemetry partition match.  Lane order
        rotates per pass so no stream starves.
        """
        if not self._free_replicas:
            return []
        lanes = [lane for lane in self._lanes.values()
                 if not lane.inflight and not lane.finalized
                 and lane.classified
                 and lane.classified[0][0][0] == "run"]
        if not lanes:
            return []
        self._rotate = (self._rotate + 1) % max(len(lanes), 1)
        lanes = lanes[self._rotate:] + lanes[:self._rotate]
        buckets: dict[tuple, list[_Lane]] = {}
        for lane in lanes:
            entry, _ = lane.classified[0]
            key = (lane.session.active,
                   _scene_signature(entry[2]),
                   lane.partition)
            buckets.setdefault(key, []).append(lane)
        windows: list[_Window] = []
        batch = self._engine.batch_size
        for (rung, _, partition), members in buckets.items():
            while members and self._free_replicas:
                group, members = members[:batch], members[batch:]
                window_members = []
                for lane in group:
                    (_, frame_id, scene, faults), t_submit = \
                        lane.classified.popleft()
                    lane.inflight += 1
                    window_members.append(_Member(
                        lane, frame_id, scene, faults, t_submit))
                collectors = group[0].session.collectors \
                    if partition is not None else None
                windows.append(_Window(self._free_replicas.pop(),
                                       rung, window_members, collectors))
                self._inflight_windows += 1
        return windows

    def _run_window(self, window: _Window) -> None:
        """Worker: one batched lowered pass on the leased replica."""
        try:
            results = window.replica._window_results(
                window.replica._levels[window.rung],
                [member.scene for member in window.members],
                collectors=window.collectors)
        except BaseException as exc:    # propagate, never hang clients
            results = exc
        with self._cond:
            self._completions.append((window, results))
            self._cond.notify_all()

    def _drain_completions_locked(self) -> None:
        """Fan finished windows' results back to their owning streams.

        Emission (cost, deadline, record, last-good, watchdog) runs on
        the scheduler thread against each stream's session, in window
        order — per-stream order is total because a stream never has
        two windows in flight.
        """
        engine = self._engine
        while self._completions:
            window, results = self._completions.popleft()
            self._inflight_windows -= 1
            self._free_replicas.append(window.replica)
            if isinstance(results, BaseException):
                if self._fatal is None:
                    self._fatal = results
                for member in window.members:
                    member.lane.inflight -= 1
                continue
            self._stats.windows += 1
            if len(window.members) > 1:
                self._stats.batched_frames += len(window.members)
            if len({member.lane.name for member in window.members}) > 1:
                self._stats.cross_stream_windows += 1
            now = time.perf_counter()
            for member, result in zip(window.members, results):
                lane = member.lane
                engine._emit_result(lane.session, member.frame_id,
                                    result, member.faults)
                lane.service_latencies.append(now - member.t_submit)
                lane.inflight -= 1
                self._stats.frames_completed += 1
            self._cond.notify_all()

    def _abort_locked(self) -> None:
        """Fatal error: wake every waiter so nothing blocks forever."""
        for lane in self._lanes.values():
            lane.finalized = True
            lane.done.set()
        self._cond.notify_all()
