"""Multi-stream serving: N client streams over shared compiled programs.

:class:`~repro.runtime.engine.InferenceEngine` owns one model and one
stream; real deployments serve many concurrent clients whose frames
arrive interleaved.  :class:`ServingEngine` multiplexes N client
streams over a pool of engine replicas (each a compiled
:class:`~repro.runtime.executors.LoweredProgram` ladder), giving every
stream its own deadline/SLO, degradation state and
:class:`~repro.runtime.engine.StreamReport` while sharing the compiled
substrate.

Architecture — one scheduler thread owns every stream's sequential
state; a small worker pool only executes micro-batch windows:

* **Admission control** — :meth:`ServingEngine.open_stream` rejects
  streams past ``max_streams`` with a typed :class:`AdmissionError`;
  submitting to an unknown or closed stream is likewise a typed
  reject, never a silent drop.
* **Backpressure** — each stream's pipeline (queued + classified +
  in-flight frames) is bounded by its SLO's ``queue_depth``.
  ``submit(block=False)`` past the bound raises
  :class:`BackpressureError` immediately; ``block=True`` waits for
  space (optionally with a timeout).  Space frees only when a frame's
  record is *emitted*, so the bound covers the whole pipeline.
* **Cross-stream micro-batching** — the scheduler opportunistically
  fills a ``batch_size=N`` window with head frames from *different*
  streams whose serving rung and scene signature (canvas/feature
  shapes) match, runs the window as one batched lowered pass on a
  leased replica, and fans the per-frame results back to the owning
  streams in order.  A window never takes two frames from one stream
  and a stream never has two windows in flight, so per-stream
  semantics (last-good hold, watchdog ladder walk, swap-effective-
  next-frame) are *exactly* the solo engine's: a swap triggered by
  stream A's emission cannot invalidate any other window member, and
  A's own next frame dispatches on the new rung.

Because the lowered integer path is bit-for-bit identical under any
batching factor (see ``docs/PERFORMANCE.md``), the per-stream reports
produced under the scheduler are byte-equal to running each stream
alone on a solo engine — ``tests/runtime/test_serving.py`` hammers
exactly that equivalence, telemetry and swap events included.

Two execution backends share the scheduler:

* ``backend="thread"`` (default) — windows run on a thread pool over
  in-process engine replicas; wins come from cross-stream batching.
* ``backend="process"`` — windows run in worker *processes*, each
  holding its own replica built once from a pickled
  :class:`ReplicaSpec` (models + blob-v4-round-tripped IRs, so workers
  never trace).  Only prediction crosses the process boundary: the
  scheduler ships ``(rung, scenes, want_telemetry)`` per window and
  merges the returned results + telemetry deltas back into per-stream
  state, so classification, emission, cost accounting and the watchdog
  all stay scheduler-side and per-stream reports remain byte-equal to
  solo runs.  Resilience follows :mod:`repro.core.search`: per-window
  timeout (local re-execution), ``BrokenProcessPool`` →
  respawn-and-redispatch, and graceful fallback to the thread backend
  when no multiprocessing start method is usable
  (``ServingStats.backend`` records what actually ran).

Two scheduler policies ride on top (both backends): **rung-aware
co-batching** — streams the ladder demoted to the same rung bucket
together, and a partial window is *held* while a compatible stream
still has a window in flight, widening windows under exactly the load
that caused the demotion — and **dynamic window deadlines** — a held
partial window dispatches as soon as its oldest member's deadline
slack drops below the rung's estimated window cost (from
``CompiledPlan.cost_breakdown``), instead of a fixed head-of-line
fill.

Thread-safety contract with the layers below: the geometry/plan caches
(:mod:`repro.nn.functional`, :mod:`repro.nn.quantized`) and telemetry
counters (:mod:`repro.runtime.telemetry`) are lock-protected, program
attachment is exclusive per replica
(:meth:`~repro.runtime.executors.LoweredProgram.attached`), and
occupancy contexts are thread-local
(:mod:`repro.nn.occupancy`) — see ``docs/SERVING.md``.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from .engine import (_INHERIT, DegradationLadder, DegradationPolicy,
                     InferenceEngine, LadderRung, StreamReport)

__all__ = ["ServingEngine", "StreamSLO", "StreamHandle", "ServingStats",
           "ReplicaSpec", "SERVING_BACKENDS", "ServingError",
           "AdmissionError", "BackpressureError"]

#: Window-execution backends a :class:`ServingEngine` can run on.
SERVING_BACKENDS = ("thread", "process")


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class AdmissionError(ServingError):
    """A stream (or frame) was refused admission — typed, not dropped.

    Raised when opening a stream past ``max_streams``, reusing a live
    stream name, or submitting to an unknown/closed stream or a
    shut-down engine.
    """


class BackpressureError(ServingError):
    """A stream's bounded pipeline is full and the caller chose not to
    (or timed out waiting to) block."""


@dataclass(frozen=True)
class ReplicaSpec:
    """A picklable recipe for building identical engine replicas.

    The process backend ships one of these (pickled) to every worker
    process, which builds its replica exactly once at pool init.  Three
    sources, all round-tripping each rung's :class:`~repro.ir.ModelIR`
    so workers never re-trace:

    * :meth:`from_engine` — pickle the live rung models + IRs directly
      (simplest; what :class:`ServingEngine` derives automatically);
    * :meth:`from_blobs` — blob-v4 bytes per rung (e.g. from
      :func:`repro.core.packing.pack_ladder`) + a model factory — the
      compact wire form;
    * :meth:`from_archive` — an archive *path* + entry names + a model
      factory; each worker opens and restores the archive itself.

    The factory forms require a picklable (module-level) callable.
    Parent-side-only concerns — fault injectors, cost hooks, tracing,
    per-stream SLOs — are deliberately absent: workers only ever
    *predict*; classification, emission and the watchdog stay on the
    scheduler, which is what keeps per-stream reports byte-equal to
    solo runs.
    """

    kind: str                           # "rungs" | "blobs" | "archive"
    payload: tuple
    device: object
    deadline_s: float = 0.1
    policy: DegradationPolicy | None = None
    execution: str = "lowered"
    batch_size: int = 1
    promote_after: int = 0
    probation: int = 0

    @staticmethod
    def from_engine(engine: InferenceEngine) -> "ReplicaSpec":
        """Derive a spec from a live engine (models + IRs pickled).

        Forces every rung's IR extraction *now*, so even ladders built
        without pre-extracted IRs (the legacy ``fallback_model`` path)
        ship one and workers never trace.
        """
        rungs = []
        for level in engine._levels:
            ir = engine._level_ir(level)
            rungs.append((level.rung.name, level.rung.model, ir,
                          level.rung.miss_limit))
        return ReplicaSpec(
            kind="rungs", payload=tuple(rungs), device=engine.device,
            deadline_s=engine.deadline_s, policy=engine.policy,
            execution=engine.execution, batch_size=engine.batch_size,
            promote_after=engine.ladder.promote_after,
            probation=engine.ladder.probation)

    @staticmethod
    def from_blobs(named_blobs, model_factory, device, *,
                   deadline_s: float = 0.1,
                   policy: DegradationPolicy | None = None,
                   execution: str = "lowered", batch_size: int = 1,
                   promote_after: int = 5, probation: int = 3,
                   miss_limits=None) -> "ReplicaSpec":
        """Spec from per-rung blob-v4 bytes (primary first).

        ``named_blobs`` is ``[(rung_name, blob_bytes), ...]`` — e.g.
        ``zip(ladder.names, pack_ladder(ladder.rungs))``.
        """
        miss_limits = dict(miss_limits or {})
        entries = tuple((name, blob, miss_limits.get(name))
                        for name, blob in named_blobs)
        if not entries:
            raise ValueError("named_blobs must name at least one rung")
        return ReplicaSpec(
            kind="blobs", payload=(entries, model_factory), device=device,
            deadline_s=deadline_s, policy=policy, execution=execution,
            batch_size=batch_size, promote_after=promote_after,
            probation=probation)

    @staticmethod
    def from_archive(path, names, model_factory, device, *,
                     deadline_s: float = 0.1,
                     policy: DegradationPolicy | None = None,
                     execution: str = "lowered", batch_size: int = 1,
                     promote_after: int = 5, probation: int = 3,
                     miss_limits=None) -> "ReplicaSpec":
        """Spec carrying only an archive path — each worker restores
        the named entries itself (see
        :meth:`~repro.runtime.engine.DegradationLadder.from_archive`)."""
        miss_limits = dict(miss_limits or {})
        return ReplicaSpec(
            kind="archive",
            payload=(str(path), tuple(names), model_factory,
                     tuple(sorted(miss_limits.items()))),
            device=device, deadline_s=deadline_s, policy=policy,
            execution=execution, batch_size=batch_size,
            promote_after=promote_after, probation=probation)

    def build(self) -> InferenceEngine:
        """Construct one engine replica (zero re-trace by contract)."""
        if self.kind == "rungs":
            rungs = [LadderRung(name=name, model=model, ir=ir,
                                miss_limit=miss_limit)
                     for name, model, ir, miss_limit in self.payload]
            ladder = DegradationLadder(rungs,
                                       promote_after=self.promote_after,
                                       probation=self.probation)
        elif self.kind == "blobs":
            from repro.core.packing import restore_model
            entries, factory = self.payload
            rungs = []
            for name, blob, miss_limit in entries:
                model = factory()
                report = restore_model(blob, model)
                if report.ir is None:
                    raise ValueError(
                        f"replica blob for rung {name!r} embeds no "
                        f"ModelIR — pack with pack_model(model, ir=...)")
                model.eval()
                rungs.append(LadderRung(name=name, model=model,
                                        ir=report.ir,
                                        miss_limit=miss_limit))
            ladder = DegradationLadder(rungs,
                                       promote_after=self.promote_after,
                                       probation=self.probation)
        elif self.kind == "archive":
            from repro.core.archive import ArchiveReader
            path, names, factory, miss_limits = self.payload
            ladder = DegradationLadder.from_archive(
                ArchiveReader.open(path), names, factory,
                promote_after=self.promote_after,
                probation=self.probation, miss_limits=dict(miss_limits))
        else:
            raise ValueError(f"unknown replica spec kind {self.kind!r}")
        return InferenceEngine(
            None, self.device, self.deadline_s, policy=self.policy,
            execution=self.execution, batch_size=self.batch_size,
            ladder=ladder)


# ---------------------------------------------------------------------------
# Process-backend worker side (module-level: importable under spawn)
# ---------------------------------------------------------------------------

#: The worker process's replica engine, built once by :func:`_replica_init`.
_WORKER_ENGINE: InferenceEngine | None = None


def _replica_init(spec_bytes: bytes) -> None:
    """Pool initializer: build and pre-warm this worker's replica."""
    global _WORKER_ENGINE
    engine = pickle.loads(spec_bytes).build()
    for level in engine._levels:
        engine._level_program(level)    # no lazy builds mid-window
    _WORKER_ENGINE = engine


def _replica_ready(delay_s: float = 0.0) -> int:
    """Warm-up probe; the delay keeps all workers busy so every pool
    slot actually spawns (and forks happen before scheduler threads)."""
    if delay_s:
        time.sleep(delay_s)
    return os.getpid()


def _replica_window(rung: int, scenes, want_telemetry: bool) -> tuple:
    """Execute one micro-batch window on this worker's replica.

    Returns ``(pid, results, telemetry_delta)`` — the delta is a fresh
    per-window collector map (or ``None``) the scheduler merges into
    the owning stream's counters; summed deltas equal the thread
    backend's direct accumulation.
    """
    engine = _WORKER_ENGINE
    collectors: dict | None = {} if want_telemetry else None
    results = engine._window_results(engine._levels[rung], scenes,
                                     collectors=collectors)
    return os.getpid(), results, collectors


def _resolve_mp_context():
    """The multiprocessing context for replica pools, or ``None``.

    Prefers ``fork`` (workers inherit warmed module state cheaply),
    falls back to ``spawn`` (the spec travels by pickle either way);
    ``None`` means the platform offers neither and the serving engine
    should fall back to the thread backend instead of failing.
    """
    import multiprocessing
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


@dataclass(frozen=True)
class StreamSLO:
    """Per-stream service-level objective and degradation overrides.

    Every ``None`` field inherits the serving engine's wrapped-engine
    setting, exactly like a solo :class:`InferenceEngine` constructed
    with those arguments — which is what keeps serving reports
    comparable to solo runs.

    Attributes
    ----------
    deadline_s:
        This stream's real-time budget per frame.
    policy:
        This stream's :class:`DegradationPolicy`.
    fault_injector:
        This stream's injector; pass ``None`` explicitly to disable
        injection even when the wrapped engine has one.
    trace:
        Per-frame cost attribution into the stream's report.
    telemetry:
        When true the stream gets its *own* per-layer counters
        (snapshotted into ``report.telemetry``).  Telemetry windows
        are never shared with other streams — per-layer counts cannot
        be split across the members of one batched pass — so a
        telemetry stream runs single-frame windows.
    queue_depth:
        Bound on this stream's pipeline (queued + classified +
        in-flight frames); ``None`` inherits the engine default.
    """

    deadline_s: float | None = None
    policy: DegradationPolicy | None = None
    fault_injector: object = _INHERIT
    trace: bool | None = None
    telemetry: bool = False
    queue_depth: int | None = None


@dataclass
class ServingStats:
    """Aggregate counters across every stream of a serving engine.

    Self-describing: the worker topology (``backend``, ``replicas``,
    per-replica window counts) travels with the counters so a recorded
    throughput number always says what produced it.
    """

    #: Backend that actually executed windows — ``"thread"`` even for
    #: ``backend="process"`` requests when the platform forced the
    #: graceful fallback.
    backend: str = "thread"
    #: Replica-pool size (concurrent-window bound).
    replicas: int = 1
    streams_opened: int = 0
    frames_submitted: int = 0
    frames_rejected: int = 0
    #: Frames whose record was emitted — ok/degraded/dropped *and*
    #: ``failed`` frames all count; every admitted frame ends up here.
    frames_completed: int = 0
    #: Admitted frames finalized with status ``failed`` because their
    #: window's execution raised (the poisoned-frame path).
    frames_failed: int = 0
    #: Micro-batch windows executed (a window of one frame counts).
    windows: int = 0
    #: Windows whose execution raised — every member frame was
    #: finalized as ``failed`` and its pipeline slot freed.
    failed_windows: int = 0
    #: Windows whose members came from two or more streams.
    cross_stream_windows: int = 0
    #: Frames that rode in a window of size > 1.
    batched_frames: int = 0
    #: Scheduler passes that held a partial window open for more
    #: same-rung members (rung-aware co-batching).
    window_holds: int = 0
    #: Partial windows dispatched because the oldest member's deadline
    #: slack dropped below the rung's estimated window cost.
    deadline_dispatches: int = 0
    #: Process-backend windows that timed out and re-ran locally.
    window_timeouts: int = 0
    #: Times the worker pool broke (e.g. a killed worker) and was
    #: respawned.
    pool_failures: int = 0
    #: Successful window executions per replica — keys are
    #: ``"replica<slot>"`` (thread), ``"pid:<pid>"`` (process) or
    #: ``"local"`` (process-backend local fallback after a timeout or
    #: a twice-broken pool).
    windows_by_replica: dict = field(default_factory=dict)
    #: Successful window executions per ladder-rung name.
    windows_by_rung: dict = field(default_factory=dict)

    def summary(self) -> str:
        text = (f"serving: {self.streams_opened} streams over "
                f"{self.replicas} {self.backend} replica(s), "
                f"{self.frames_completed}/{self.frames_submitted} frames "
                f"completed ({self.frames_rejected} rejected), "
                f"{self.windows} windows "
                f"({self.cross_stream_windows} cross-stream, "
                f"{self.batched_frames} batched frames, "
                f"{self.window_holds} holds, "
                f"{self.deadline_dispatches} deadline dispatches)")
        if self.failed_windows or self.window_timeouts \
                or self.pool_failures:
            text += (f"; faults: {self.failed_windows} failed windows "
                     f"({self.frames_failed} frames), "
                     f"{self.window_timeouts} timeouts, "
                     f"{self.pool_failures} pool failures")
        return text


def _scene_signature(scene) -> tuple:
    """Shape key deciding whether two scenes may share a window.

    Frames only batch when the model would canvas them identically:
    same point feature width and same (or same-absent) camera image
    shape.  Mismatched signatures simply never share a window — they
    are still served, just unbatched.
    """
    points = getattr(scene, "points", None)
    image = getattr(scene, "image", None)
    points_key = None if points is None else tuple(points.shape[1:])
    image_key = None if image is None else tuple(image.shape)
    return (points_key, image_key)


class _Member:
    """One frame riding in a window, with its owning lane."""

    __slots__ = ("lane", "frame_id", "scene", "faults", "t_submit")

    def __init__(self, lane, frame_id, scene, faults, t_submit):
        self.lane = lane
        self.frame_id = frame_id
        self.scene = scene
        self.faults = faults
        self.t_submit = t_submit


class _Window:
    """One dispatched micro-batch: members + the leased replica slot."""

    __slots__ = ("slot", "rung", "members", "collectors",
                 "want_telemetry")

    def __init__(self, slot, rung, members, collectors):
        self.slot = slot
        self.rung = rung
        self.members = members
        #: the owning stream's live counter map for telemetry windows
        #: (thread backend counts into it directly; the process backend
        #: merges the worker's returned delta into it), else ``None``
        self.collectors = collectors
        self.want_telemetry = collectors is not None


class _Lane:
    """One client stream's scheduler-side state.

    All fields are guarded by the serving engine's single lock; the
    scheduler thread is the only mutator of the session (emission),
    which is what guarantees per-stream sequential semantics.
    """

    __slots__ = ("name", "session", "queue", "classified", "queue_depth",
                 "inflight", "closed", "finalized", "done", "report",
                 "service_latencies", "partition")

    def __init__(self, name: str, session, queue_depth: int,
                 telemetry: bool):
        self.name = name
        self.session = session
        #: raw submitted ``(scene, t_submit)`` pairs, arrival order
        self.queue: deque = deque()
        #: classified ``((kind, frame_id, scene, faults), t_submit)``
        self.classified: deque = deque()
        self.queue_depth = queue_depth
        #: frames of this lane inside a dispatched, not-yet-emitted
        #: window (0 or 1 — at most one window in flight per lane)
        self.inflight = 0
        self.closed = False
        self.finalized = False
        self.done = threading.Event()
        self.report: StreamReport | None = None
        #: wall-clock submit→emit seconds per frame (not the simulated
        #: device latency inside the report)
        self.service_latencies: list[float] = []
        #: telemetry streams never share windows (``None`` = mixable)
        self.partition = name if telemetry else None

    @property
    def depth(self) -> int:
        return len(self.queue) + len(self.classified) + self.inflight


class StreamHandle:
    """Client-side handle to one open stream (thin, thread-safe)."""

    def __init__(self, engine: "ServingEngine", name: str):
        self._engine = engine
        self.name = name

    def submit(self, scene, *, block: bool = True,
               timeout: float | None = None) -> None:
        self._engine.submit(self.name, scene, block=block, timeout=timeout)

    def close(self) -> None:
        self._engine.close_stream(self.name)

    def result(self, timeout: float | None = None) -> StreamReport:
        return self._engine.result(self.name, timeout=timeout)

    @property
    def service_latencies(self) -> list[float]:
        return self._engine.service_latencies(self.name)


class ServingEngine:
    """Serve N concurrent client streams over shared compiled programs.

    Parameters
    ----------
    engine:
        The wrapped :class:`InferenceEngine` (its deadline, policy,
        injector, execution mode and ``batch_size`` become the
        defaults every stream inherits), or a zero-argument factory
        returning identical engines — the thread backend requires a
        factory for ``replicas > 1``, since concurrent windows need
        separate model instances to attach to (the process backend
        accepts an instance at any replica count: workers build their
        own from the spec).  Engines must be constructed with
        ``telemetry=False``: per-stream telemetry flows through
        :class:`StreamSLO` instead, so streams never share counters.
    replicas:
        Size of the worker/replica pool — the number of windows that
        may execute concurrently.
    max_streams:
        Admission bound on concurrently open streams.
    queue_depth:
        Default per-stream pipeline bound (see :class:`StreamSLO`).
    backend:
        ``"thread"`` (default) executes windows on an in-process
        thread pool; ``"process"`` on a pool of worker processes each
        holding a :class:`ReplicaSpec`-built replica (GIL-free window
        execution).  When no multiprocessing start method is usable
        the engine falls back to the thread backend — building the
        replicas locally from the spec — and records the actual
        backend in :class:`ServingStats`.
    spec:
        Optional explicit :class:`ReplicaSpec` for the process
        backend (e.g. :meth:`ReplicaSpec.from_archive` so workers
        restore from the archive file instead of unpickling models);
        derived automatically via :meth:`ReplicaSpec.from_engine` when
        omitted.  Must round-trip ``pickle`` — verified at
        construction, never mid-stream.
    window_timeout_s:
        Process-backend per-window deadline: a window whose worker
        does not answer in time is re-executed locally on the
        scheduler's own engine (counted in
        ``ServingStats.window_timeouts``), so a hung worker can only
        cost latency, never a stream.

    Windows fill up to the wrapped engine's ``batch_size`` with head
    frames from distinct streams whose rung and scene signature match.
    All compiled state (IR → plan → program per ladder rung) is
    pre-warmed at construction, so workers never race a lazy build.
    """

    def __init__(self, engine, *, replicas: int = 1,
                 max_streams: int = 16, queue_depth: int = 8,
                 backend: str = "thread",
                 spec: ReplicaSpec | None = None,
                 window_timeout_s: float = 30.0):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        if max_streams < 1:
            raise ValueError(
                f"max_streams must be >= 1, got {max_streams!r}")
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth!r}")
        if backend not in SERVING_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected "
                             f"one of {SERVING_BACKENDS}")
        if spec is not None and backend != "process":
            raise ValueError(
                "spec is only consumed by the process backend")
        if window_timeout_s <= 0:
            raise ValueError(
                f"window_timeout_s must be > 0, got {window_timeout_s!r}")
        self._backend = backend
        self._replicas = replicas
        self._window_timeout_s = window_timeout_s
        self._spec: ReplicaSpec | None = None
        self._spec_bytes: bytes | None = None
        self._pool = None
        self._pool_lock = threading.Lock()
        self._pool_generation = 0
        self._worker_pids: list[int] = []
        if backend == "process":
            primary = engine if isinstance(engine, InferenceEngine) \
                else engine()
            self._spec = spec if spec is not None \
                else ReplicaSpec.from_engine(primary)
            # Fail at construction, never mid-stream, when the spec
            # cannot cross the process boundary.
            self._spec_bytes = pickle.dumps(self._spec)
            # The pool must exist (and its workers fork) before the
            # scheduler/worker threads below start — fork-after-threads
            # is the classic multiprocessing deadlock.
            if self._start_pool_locked(replicas):
                pool = [primary]
            else:
                # Graceful fallback: no usable start method (or the
                # pool refused to come up) — build the replicas
                # locally and serve on threads instead of failing.
                # Each replica comes from a pickle round-trip of the
                # spec, exactly as a worker process would build it, so
                # replicas never share mutable model objects with the
                # parent (thread windows patch their model's forward
                # slots and must own them exclusively).
                self._backend = "thread"
                pool = [primary] + [
                    pickle.loads(self._spec_bytes).build()
                    for _ in range(replicas - 1)]
        elif isinstance(engine, InferenceEngine):
            if replicas != 1:
                raise ValueError(
                    "replicas > 1 needs an engine factory on the thread "
                    "backend — concurrent windows attach to separate "
                    "model instances (or use backend='process')")
            pool = [engine]
        else:
            pool = [engine() for _ in range(replicas)]
        primary = pool[0]
        for replica in pool:
            if not isinstance(replica, InferenceEngine):
                raise TypeError(
                    f"engine (factory) must yield InferenceEngine, "
                    f"got {type(replica).__name__}")
            if replica.telemetry:
                raise ValueError(
                    "serving engines must wrap telemetry=False engines; "
                    "per-stream telemetry is configured via StreamSLO")
            if len(replica._levels) != len(primary._levels) \
                    or replica.execution != primary.execution \
                    or replica.batch_size != primary.batch_size:
                raise ValueError(
                    "replica engines must be identical (ladder depth, "
                    "execution mode, batch_size)")
            # Pre-warm every rung's compiled state so worker threads
            # never race a lazy IR extraction / lowering.
            for level in replica._levels:
                replica._level_costs(level)
                replica._level_program(level)
        self._engine = primary
        #: in-process replica engines, indexed by slot (thread backend;
        #: the process backend keeps only the scheduler's own engine)
        self._replica_engines: list[InferenceEngine] = pool
        self._default_queue_depth = queue_depth
        self.max_streams = max_streams
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._lanes: dict[str, _Lane] = {}
        #: free replica *slots* — just lease tokens bounding concurrent
        #: windows; the process pool does its own worker scheduling
        slots = replicas if self._backend == "process" else len(pool)
        self._free_replicas: list[int] = list(range(slots))
        self._completions: deque = deque()
        self._inflight_windows = 0
        self._stats = ServingStats(backend=self._backend, replicas=slots)
        self._stopping = False
        self._fatal: BaseException | None = None
        self._rotate = 0
        self._workers = concurrent.futures.ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="repro-serve")
        self._scheduler = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True)
        self._scheduler.start()

    # ------------------------------------------------------------------
    # Process-pool lifecycle (the core/search.py resilience template)
    # ------------------------------------------------------------------
    def _start_pool_locked(self, replicas: int) -> bool:
        """Create and warm the worker pool; False → thread fallback."""
        ctx = _resolve_mp_context()
        if ctx is None:
            return False
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=replicas, mp_context=ctx,
                initializer=_replica_init,
                initargs=(self._spec_bytes,))
        except (OSError, ValueError):
            return False
        try:
            # One probe per slot, each briefly busy, so every worker
            # spawns (and builds its replica) before any stream opens.
            futures = [pool.submit(_replica_ready, 0.1)
                       for _ in range(replicas)]
            pids = sorted({future.result(timeout=300.0)
                           for future in futures})
        except Exception:
            pool.shutdown(wait=False)
            return False
        self._pool = pool
        self._worker_pids = pids
        return True

    def _respawn_pool(self, generation: int) -> None:
        """Replace a broken pool exactly once per generation.

        Concurrent window threads all observing the same broken pool
        race here; the generation check makes one of them respawn and
        the rest reuse the fresh pool.
        """
        with self._pool_lock:
            if self._pool_generation != generation:
                return
            old = self._pool
            ctx = _resolve_mp_context()
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._replicas, mp_context=ctx,
                initializer=_replica_init,
                initargs=(self._spec_bytes,))
            self._pool_generation += 1
        old.shutdown(wait=False)

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the initial process-backend workers (empty on the
        thread backend) — exposed for kill-and-recover testing."""
        return list(self._worker_pids)

    @property
    def backend(self) -> str:
        """The backend actually executing windows (after any fallback)."""
        return self._backend

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def open_stream(self, name: str,
                    slo: StreamSLO | None = None) -> StreamHandle:
        """Admit a new stream; typed reject past ``max_streams``."""
        slo = slo or StreamSLO()
        depth = slo.queue_depth
        if depth is None:
            depth = self._default_queue_depth
        if depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {depth!r}")
        with self._cond:
            self._check_fatal_locked()
            if self._stopping:
                raise AdmissionError(
                    "serving engine is shutting down; no new streams")
            if name in self._lanes:
                raise AdmissionError(
                    f"stream {name!r} already exists — stream names "
                    f"are unique for the life of the engine")
            live = sum(1 for lane in self._lanes.values()
                       if not lane.finalized)
            if live >= self.max_streams:
                raise AdmissionError(
                    f"admission refused: {live} live streams at the "
                    f"max_streams={self.max_streams} bound")
            session = self._engine._new_session(
                deadline_s=slo.deadline_s, policy=slo.policy,
                fault_injector=slo.fault_injector, trace=slo.trace,
                collectors={} if slo.telemetry else None)
            self._lanes[name] = _Lane(name, session, depth, slo.telemetry)
            self._stats.streams_opened += 1
            self._cond.notify_all()
        return StreamHandle(self, name)

    def submit(self, name: str, scene, *, block: bool = True,
               timeout: float | None = None) -> None:
        """Enqueue one frame on a stream.

        Blocks while the stream's bounded pipeline is full
        (``block=True``; a ``timeout`` raises
        :class:`BackpressureError` on expiry), or raises
        :class:`BackpressureError` immediately (``block=False``).
        Unknown or closed streams raise :class:`AdmissionError`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            lane = self._lane_locked(name)
            while True:
                self._check_fatal_locked()
                if lane.closed or self._stopping:
                    raise AdmissionError(
                        f"stream {name!r} is closed; frame refused")
                if lane.depth < lane.queue_depth:
                    break
                if not block:
                    self._stats.frames_rejected += 1
                    raise BackpressureError(
                        f"stream {name!r} pipeline full "
                        f"({lane.queue_depth} frames); frame rejected")
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._stats.frames_rejected += 1
                    raise BackpressureError(
                        f"stream {name!r} still full after "
                        f"{timeout:.3f}s; frame rejected")
                self._cond.wait(remaining if remaining is not None
                                else 0.1)
            lane.queue.append((scene, time.perf_counter()))
            self._stats.frames_submitted += 1
            self._cond.notify_all()

    def close_stream(self, name: str) -> None:
        """Mark a stream end-of-input; its report finalizes once the
        pipeline drains.  Idempotent."""
        with self._cond:
            lane = self._lane_locked(name)
            lane.closed = True
            self._cond.notify_all()

    def result(self, name: str,
               timeout: float | None = None) -> StreamReport:
        """The stream's finished :class:`StreamReport` (blocks until
        the closed stream drains)."""
        with self._cond:
            lane = self._lane_locked(name)
        if not lane.done.wait(timeout):
            raise ServingError(
                f"stream {name!r} did not finish within {timeout}s "
                f"(was it closed?)")
        with self._cond:
            self._check_fatal_locked()
            if lane.report is None:
                raise ServingError(
                    f"stream {name!r} was aborted before finishing")
            return lane.report

    def service_latencies(self, name: str) -> list[float]:
        """Wall-clock submit→emit seconds per emitted frame."""
        with self._cond:
            return list(self._lane_locked(name).service_latencies)

    def stats(self) -> ServingStats:
        with self._cond:
            return replace(
                self._stats,
                windows_by_replica=dict(self._stats.windows_by_replica),
                windows_by_rung=dict(self._stats.windows_by_rung))

    def serve(self, streams: dict, slos: dict | None = None,
              interval_s: float = 0.0) -> dict:
        """Convenience: run whole scene iterables as concurrent streams.

        One paced client thread per stream submits with ``block=True``
        (``interval_s`` spaces submissions — ``1 / offered_load``),
        closes, and the call returns ``{name: StreamReport}``.
        Running the clients concurrently is what lets cross-stream
        windows actually form.
        """
        slos = slos or {}
        handles = {name: self.open_stream(name, slos.get(name))
                   for name in streams}

        def client(name):
            for scene in streams[name]:
                if interval_s > 0:
                    time.sleep(interval_s)
                handles[name].submit(scene, block=True)
            handles[name].close()

        threads = [threading.Thread(target=client, args=(name,),
                                    name=f"repro-serve-client-{name}")
                   for name in streams]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {name: handles[name].result() for name in streams}

    def shutdown(self, timeout: float | None = None) -> None:
        """Close every stream, drain, and stop the scheduler."""
        with self._cond:
            self._stopping = True
            for lane in self._lanes.values():
                lane.closed = True
            self._cond.notify_all()
        self._scheduler.join(timeout)
        self._workers.shutdown(wait=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        with self._cond:
            self._check_fatal_locked()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Scheduler internals (single scheduler thread + leased workers)
    # ------------------------------------------------------------------
    def _lane_locked(self, name: str) -> _Lane:
        lane = self._lanes.get(name)
        if lane is None:
            raise AdmissionError(
                f"unknown stream {name!r} — open_stream() it first")
        return lane

    def _check_fatal_locked(self) -> None:
        if self._fatal is not None:
            raise ServingError(
                "serving engine aborted on an internal error"
            ) from self._fatal

    def _loop(self) -> None:
        while True:
            dispatches: list[_Window] = []
            with self._cond:
                # Window *execution* errors are per-window (typed
                # ``failed`` frames, handled in the completion drain);
                # an exception here means the scheduler itself broke —
                # that is the only fatal path left.
                try:
                    self._drain_completions_locked()
                    self._drain_lanes_locked()
                    if self._fatal is None:
                        dispatches = self._form_windows_locked()
                except BaseException as exc:
                    if self._fatal is None:
                        self._fatal = exc
                if self._fatal is not None:
                    if self._inflight_windows == 0:
                        self._abort_locked()
                        return
                if not dispatches:
                    if self._stopping and self._fatal is None \
                            and self._inflight_windows == 0 \
                            and not self._completions \
                            and all(lane.finalized
                                    for lane in self._lanes.values()):
                        return
                    self._cond.wait(0.05)
            for window in dispatches:
                self._workers.submit(self._run_window, window)

    def _drain_lanes_locked(self) -> None:
        """Classify queued frames and emit what needs no inference.

        Classification is stateless per frame (the injector is seeded
        by frame id), so it can run ahead; dropped/corrupt frames at
        the head of a lane with no window in flight emit immediately —
        in exactly the arrival order the solo engine would have used.
        Closed, fully drained lanes finalize their reports here.
        """
        engine = self._engine
        for lane in self._lanes.values():
            while lane.queue:
                scene, t_submit = lane.queue.popleft()
                entry = engine._classify(lane.session, scene)
                lane.classified.append((entry, t_submit))
            emitted = False
            while not lane.inflight and lane.classified \
                    and lane.classified[0][0][0] != "run":
                (kind, frame_id, _, _), t_submit = \
                    lane.classified.popleft()
                if kind == "dropped":
                    engine._emit_dropped(lane.session, frame_id)
                else:
                    engine._emit_corrupt(lane.session, frame_id)
                lane.service_latencies.append(
                    time.perf_counter() - t_submit)
                self._stats.frames_completed += 1
                emitted = True
            if emitted:
                self._cond.notify_all()     # pipeline space freed
            if lane.closed and not lane.finalized and not lane.inflight \
                    and not lane.queue and not lane.classified:
                lane.report = engine._finish_session(lane.session)
                lane.finalized = True
                lane.done.set()
                self._cond.notify_all()

    def _form_windows_locked(self) -> list[_Window]:
        """Group head frames into shape-compatible windows.

        A window takes at most one frame per stream (so a mid-window
        rung swap in one stream can never invalidate another member —
        nor the swapping stream's own, since its next frame dispatches
        after emission) and only groups streams whose serving rung,
        scene signature and telemetry partition match — streams the
        ladder demoted to the same rung bucket (and so batch)
        together.  Lane order rotates per pass so no stream starves.

        A *partial* window (fewer members than ``batch_size``) is not
        dispatched head-of-line: while another compatible lane still
        has a window in flight — so the bucket can plausibly grow when
        it emits — the group is held, unless the oldest member's
        deadline slack has dropped below the rung's estimated window
        cost (:meth:`_hold_partial_locked`).  The wait is bounded by
        construction: in-flight windows always complete, and when none
        are left everything dispatches.
        """
        if not self._free_replicas:
            return []
        lanes = [lane for lane in self._lanes.values()
                 if not lane.inflight and not lane.finalized
                 and lane.classified
                 and lane.classified[0][0][0] == "run"]
        if not lanes:
            return []
        self._rotate = (self._rotate + 1) % max(len(lanes), 1)
        lanes = lanes[self._rotate:] + lanes[:self._rotate]
        buckets: dict[tuple, list[_Lane]] = {}
        for lane in lanes:
            entry, _ = lane.classified[0]
            key = (lane.session.active,
                   _scene_signature(entry[2]),
                   lane.partition)
            buckets.setdefault(key, []).append(lane)
        windows: list[_Window] = []
        batch = self._engine.batch_size
        now = time.perf_counter()
        for (rung, _, partition), members in buckets.items():
            while members and self._free_replicas:
                group, rest = members[:batch], members[batch:]
                if len(group) < batch and partition is None \
                        and not self._stopping \
                        and self._hold_partial_locked(group, rung, now):
                    self._stats.window_holds += 1
                    break           # keep the whole remainder queued
                members = rest
                window_members = []
                for lane in group:
                    (_, frame_id, scene, faults), t_submit = \
                        lane.classified.popleft()
                    lane.inflight += 1
                    window_members.append(_Member(
                        lane, frame_id, scene, faults, t_submit))
                collectors = group[0].session.collectors \
                    if partition is not None else None
                windows.append(_Window(self._free_replicas.pop(),
                                       rung, window_members, collectors))
                self._inflight_windows += 1
        return windows

    def _hold_partial_locked(self, group: list[_Lane], rung: int,
                             now: float) -> bool:
        """Whether a partial window should wait for more members.

        Hold only while growth is *possible* — some other mixable,
        unfinished lane has a window in flight whose emission could
        feed this bucket (on the same rung: that is the rung-aware
        co-batching bet, and under demotion-inducing load it usually
        pays).  Dynamic deadline: the moment the group's tightest
        member's remaining slack (its stream deadline minus the time
        already queued) no longer covers the rung's estimated window
        cost, dispatch rather than risk the miss.
        """
        growth = any(
            lane.partition is None and not lane.finalized
            and lane.inflight > 0
            and (not lane.closed or lane.queue or lane.classified)
            and lane not in group
            for lane in self._lanes.values())
        if not growth:
            return False
        window_cost = self._engine._level_costs(
            self._engine._levels[rung])[1]
        slack = min(
            lane.session.deadline_s - (now - lane.classified[0][1])
            for lane in group)
        if slack <= window_cost:
            self._stats.deadline_dispatches += 1
            return False
        return True

    def _run_window(self, window: _Window) -> None:
        """Worker thread: execute one window on the leased backend slot.

        An exception is *returned* through the completion queue, never
        raised — the scheduler finalizes every member frame with a
        typed ``failed`` status so no client blocks on a crashed
        window.
        """
        delta = None
        key = "local"
        try:
            if self._backend == "process":
                results, delta, key = self._execute_process(window)
            else:
                replica = self._replica_engines[window.slot]
                key = f"replica{window.slot}"
                results = replica._window_results(
                    replica._levels[window.rung],
                    [member.scene for member in window.members],
                    collectors=window.collectors)
        except BaseException as exc:    # propagate, never hang clients
            results = exc
        with self._cond:
            self._completions.append((window, results, delta, key))
            self._cond.notify_all()

    def _execute_process(self, window: _Window) -> tuple:
        """One window on the process pool, with the search-engine
        resilience template.

        Returns ``(results, telemetry_delta, replica_key)``.  A broken
        pool (killed worker) is respawned once per generation and the
        window re-dispatched; a second break — or a per-window timeout
        — re-executes the window locally on the scheduler's own engine
        (deterministic prediction makes the result identical, so
        byte-equality survives every recovery path).  Exceptions the
        *task* raised (a poisoned frame) are returned for typed
        per-frame failure, not retried — the frame would poison every
        replica alike.
        """
        scenes = [member.scene for member in window.members]
        for _ in range(2):
            with self._pool_lock:
                pool = self._pool
                generation = self._pool_generation
            try:
                future = pool.submit(_replica_window, window.rung,
                                     scenes, window.want_telemetry)
            except (concurrent.futures.BrokenExecutor, RuntimeError):
                with self._cond:
                    self._stats.pool_failures += 1
                self._respawn_pool(generation)
                continue
            try:
                pid, results, delta = future.result(
                    self._window_timeout_s)
                return results, delta, f"pid:{pid}"
            except concurrent.futures.TimeoutError:
                future.cancel()
                with self._cond:
                    self._stats.window_timeouts += 1
                break
            except concurrent.futures.BrokenExecutor:
                with self._cond:
                    self._stats.pool_failures += 1
                self._respawn_pool(generation)
                continue
            except BaseException as exc:
                return exc, None, "local"
        # Local fallback: the scheduler's own engine runs the window in
        # this worker thread (program attachment serializes engine
        # access, so concurrent fallbacks are safe, just unparallel).
        collectors: dict | None = {} if window.want_telemetry else None
        results = self._engine._window_results(
            self._engine._levels[window.rung], scenes,
            collectors=collectors)
        return results, collectors, "local"

    def _drain_completions_locked(self) -> None:
        """Fan finished windows' results back to their owning streams.

        Emission (cost, deadline, record, last-good, watchdog) runs on
        the scheduler thread against each stream's session, in window
        order — per-stream order is total because a stream never has
        two windows in flight.  A window whose execution raised
        finalizes every member with a typed ``failed`` record instead:
        the frames stay report-aligned with their inputs and their
        pipeline slots free, so a poisoned frame costs its window, not
        its streams.
        """
        engine = self._engine
        while self._completions:
            window, results, delta, key = self._completions.popleft()
            self._inflight_windows -= 1
            self._free_replicas.append(window.slot)
            now = time.perf_counter()
            if isinstance(results, BaseException):
                self._stats.failed_windows += 1
                for member in window.members:
                    lane = member.lane
                    engine._emit_failed(lane.session, member.frame_id)
                    lane.service_latencies.append(now - member.t_submit)
                    lane.inflight -= 1
                    self._stats.frames_failed += 1
                    self._stats.frames_completed += 1
                self._cond.notify_all()
                continue
            if delta and window.collectors is not None:
                # Process backend: merge the worker's per-window
                # counter delta into the owning stream's collectors —
                # summed deltas equal direct accumulation.
                for name, counter in delta.items():
                    existing = window.collectors.get(name)
                    if existing is None:
                        window.collectors[name] = counter
                    else:
                        existing.merge(counter)
            self._stats.windows += 1
            self._stats.windows_by_replica[key] = \
                self._stats.windows_by_replica.get(key, 0) + 1
            rung_name = engine._levels[window.rung].rung.name
            self._stats.windows_by_rung[rung_name] = \
                self._stats.windows_by_rung.get(rung_name, 0) + 1
            if len(window.members) > 1:
                self._stats.batched_frames += len(window.members)
            if len({member.lane.name for member in window.members}) > 1:
                self._stats.cross_stream_windows += 1
            for member, result in zip(window.members, results):
                lane = member.lane
                engine._emit_result(lane.session, member.frame_id,
                                    result, member.faults)
                lane.service_latencies.append(now - member.t_submit)
                lane.inflight -= 1
                self._stats.frames_completed += 1
            self._cond.notify_all()

    def _abort_locked(self) -> None:
        """Fatal error: wake every waiter so nothing blocks forever."""
        for lane in self._lanes.values():
            lane.finalized = True
            lane.done.set()
        self._cond.notify_all()
