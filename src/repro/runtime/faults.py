"""Seeded, deterministic fault injection for the streaming runtime.

A vehicle's perception stack does not get to assume clean input: frames
drop on the sensor bus, point clouds arrive with NaN returns from wet
or specular surfaces, and co-scheduled workloads add latency jitter on
top of the model's own cost.  :class:`FaultInjector` reproduces those
three failure modes *deterministically* — every per-frame decision is
drawn from a generator seeded by ``(spec.seed, stream id, frame_id)``,
never from call order — so a chaos run is exactly repeatable and its
fault schedule can be computed independently of the engine that
consumes it (which is how the tests pin the
:class:`~repro.runtime.engine.StreamReport` counters down to exact
equality).

The taxonomy, and how :class:`~repro.runtime.engine.InferenceEngine`
reacts to each fault, is documented in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["FaultSpec", "FrameFaults", "FaultInjector"]

# Stream separators for the per-frame generators: drawing the drop /
# corrupt / jitter decisions and the NaN positions from *distinct*
# seeded streams keeps every decision independent of the others.
_DECISION_STREAM = 0x5EED
_PAYLOAD_STREAM = 0xBAD


@dataclass(frozen=True)
class FaultSpec:
    """Knobs of the injected failure distribution."""

    drop_rate: float = 0.0          # P(frame never arrives)
    corrupt_rate: float = 0.0       # P(point cloud is NaN-poisoned)
    nan_fraction: float = 0.05      # fraction of points poisoned
    #: latency jitter distribution: ``none`` | ``uniform`` | ``lognormal``
    #: (lognormal models the heavy-tailed co-scheduling spikes embedded
    #: boards actually see).
    jitter: str = "none"
    jitter_scale_s: float = 0.0     # scale parameter of the distribution
    seed: int = 0

    def __post_init__(self):
        for name in ("drop_rate", "corrupt_rate", "nan_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.jitter not in ("none", "uniform", "lognormal"):
            raise ValueError(f"unknown jitter distribution {self.jitter!r}")
        if self.jitter_scale_s < 0:
            raise ValueError("jitter_scale_s must be non-negative")


@dataclass(frozen=True)
class FrameFaults:
    """The faults scheduled for one frame."""

    frame_id: int
    dropped: bool = False
    corrupted: bool = False
    jitter_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.dropped or self.corrupted or self.jitter_s)


class FaultInjector:
    """Draws a deterministic fault schedule and applies it to scenes."""

    def __init__(self, spec: FaultSpec | None = None, **overrides):
        self.spec = replace(spec or FaultSpec(), **overrides) \
            if overrides else (spec or FaultSpec())

    # ------------------------------------------------------------------
    def _rng(self, stream: int, frame_id: int) -> np.random.Generator:
        return np.random.default_rng((self.spec.seed, stream, frame_id))

    def faults_for(self, frame_id: int) -> FrameFaults:
        """The fault decisions for one frame — pure in ``frame_id``."""
        spec = self.spec
        rng = self._rng(_DECISION_STREAM, frame_id)
        # Always consume all three draws so each decision's stream
        # position is fixed regardless of the other knobs' values.
        drop_draw = rng.random()
        corrupt_draw = rng.random()
        if spec.jitter == "uniform":
            jitter = rng.random() * spec.jitter_scale_s
        elif spec.jitter == "lognormal":
            jitter = rng.lognormal(mean=0.0, sigma=1.0) \
                * spec.jitter_scale_s
        else:
            rng.random()
            jitter = 0.0
        dropped = drop_draw < spec.drop_rate
        corrupted = (not dropped) and corrupt_draw < spec.corrupt_rate
        return FrameFaults(frame_id=frame_id, dropped=dropped,
                           corrupted=corrupted, jitter_s=float(jitter))

    def schedule(self, frame_ids) -> list[FrameFaults]:
        """The full fault schedule for a stream of frame ids."""
        return [self.faults_for(frame_id) for frame_id in frame_ids]

    # ------------------------------------------------------------------
    def corrupt_points(self, points: np.ndarray,
                       frame_id: int) -> np.ndarray:
        """Return a NaN-poisoned copy of a point cloud (input untouched)."""
        poisoned = np.array(points, dtype=points.dtype, copy=True)
        if poisoned.size == 0:
            return poisoned
        n_points = poisoned.shape[0]
        # Round, don't floor to 1: a fraction that rounds to zero is a
        # spec'd no-op (``nan_fraction=0.0`` must poison nothing).
        n_poison = int(round(self.spec.nan_fraction * n_points))
        if n_poison == 0:
            return poisoned
        rng = self._rng(_PAYLOAD_STREAM, frame_id)
        victims = rng.choice(n_points, size=min(n_poison, n_points),
                             replace=False)
        poisoned[victims] = np.nan
        return poisoned

    def apply(self, scene, faults: FrameFaults | None = None):
        """Apply the frame's faults to a scene.

        Returns ``None`` for a dropped frame, a shallow copy with a
        poisoned point cloud for a corrupted one, and the scene itself
        when clean.  Latency jitter does not touch the scene — the
        engine charges it on the frame's device cost.
        """
        faults = faults if faults is not None \
            else self.faults_for(scene.frame_id)
        if faults.dropped:
            return None
        if faults.corrupted:
            import copy
            poisoned = copy.copy(scene)
            poisoned.points = self.corrupt_points(scene.points,
                                                  faults.frame_id)
            return poisoned
        return scene
