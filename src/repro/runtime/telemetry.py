"""Per-layer executor telemetry and per-frame cost attribution.

The paper's efficiency score (eq. 2) prices every root layer by latency
and energy, but a frame-level report cannot say *which* layer burned a
missed deadline's budget.  This module is the observability substrate
that closes that gap, in two independent pieces:

* :class:`LayerTelemetry` — counters a :mod:`repro.nn.quantized`
  executor populates while it runs: MACs actually executed,
  im2col/scatter columns skipped by pattern-aware skipping vs. the
  dense total, the activation saturation (clip) rate out of
  ``quantize_activation``, and the int64 accumulator extrema tracked
  against the 2^53 float64-exactness bound that underwrites the
  lowered ≡ reference parity guarantee.

* :class:`TraceEvent` — the engine's per-frame attribution of simulated
  device cost to individual IR nodes (from the
  :class:`~repro.hardware.deploy.CompiledPlan` per-layer costs), plus
  pseudo-events for non-kernel overhead and injected latency jitter.
  Event latencies sum (within float tolerance) to the frame's recorded
  ``device_latency_s``, so
  :meth:`~repro.runtime.engine.StreamReport.top_offenders` can rank the
  layers responsible for deadline misses.

Both pieces are strictly opt-in: counters only *observe* values the
executors compute anyway, and attaching them cannot perturb a single
output bit (the invariant ``tests/runtime/test_telemetry.py`` pins).

Counter semantics are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import asdict, dataclass, replace

__all__ = ["ACC_EXACT_BITS", "LayerTelemetry", "TraceEvent",
           "LayerAttribution", "attribute_trace", "aggregate_telemetry",
           "telemetry_digest", "export_trace"]

#: Bit bound below which an int64 accumulation is also exact in float64
#: (the contract the ``reference`` execution mode relies on).
ACC_EXACT_BITS = 53

#: Pseudo-layer names used by the engine's trace events.
OVERHEAD_LAYER = "nonkernel"
JITTER_LAYER = "fault_jitter"


@dataclass
class LayerTelemetry:
    """Execution counters for one lowered layer.

    Populated by the :mod:`repro.nn.quantized` executors when attached
    (``executor.telemetry = counter``); all fields accumulate across
    forward calls until :meth:`reset`.

    Recording is thread-safe: a counter may be attached to executors
    driven by concurrent serving workers, so every ``record_*`` /
    :meth:`reset` / :meth:`snapshot` runs under an internal lock (a
    plain attribute set in ``__post_init__`` — not a dataclass field,
    so equality, ``replace`` and ``asdict`` see counters only).
    Totals then equal the serial sum regardless of interleaving.
    """

    layer: str = ""
    #: forward/reference invocations observed
    calls: int = 0
    #: multiply-accumulates actually executed (after column skipping)
    macs: int = 0
    #: dense im2col / scatter / input-feature columns per call, summed
    columns_total: int = 0
    #: all-zero *weight* columns skipped before the integer matmul —
    #: static pattern-pruning skips, known at compile time
    columns_skipped: int = 0
    #: positions/rows eligible for runtime occupancy skipping (counted
    #: only under sparse execution; 0 means the dynamic path never ran)
    dynamic_columns_total: int = 0
    #: positions/rows skipped at runtime because their *activations*
    #: were verifiably zero — per-frame sparsity, distinct from the
    #: static pattern skips above
    dynamic_columns_skipped: int = 0
    #: BEV canvas cells observed by the occupancy context, summed per
    #: frame (0 until sparse execution observes a scatter)
    canvas_cells_total: int = 0
    #: of those, cells an occupied pillar was scattered into
    canvas_cells_occupied: int = 0
    #: activation values quantized
    activations_total: int = 0
    #: activation values clipped to ±max_code (outside the calibrated range)
    activations_saturated: int = 0
    #: accumulator extrema across calls (int64 path == float64 path)
    acc_min: int | None = None
    acc_max: int | None = None

    def __post_init__(self):
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pickling (cross-process telemetry deltas)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Counters only — the lock is process-local and unpicklable.

        Serving's process backend ships per-window counter deltas from
        worker processes back to the scheduler, so a counter must cross
        a pickle boundary; taken under the lock so the state never
        tears a concurrent ``record_*``.
        """
        with self._lock:
            state = {field: getattr(self, field)
                     for field in self.__dataclass_fields__}
        return state

    def __setstate__(self, state: dict) -> None:
        for field, value in state.items():
            setattr(self, field, value)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (called by the executors)
    # ------------------------------------------------------------------
    def record_quantization(self, total: int, saturated: int) -> None:
        with self._lock:
            self.activations_total += int(total)
            self.activations_saturated += int(saturated)

    def record_matmul(self, macs: int, columns_total: int,
                      columns_skipped: int, frames: int = 1) -> None:
        """Record one matmul covering ``frames`` micro-batched frames.

        Callers pass per-batch totals (columns already multiplied by the
        batch size), so a batched call leaves counters equal to the sum
        of the ``frames`` single-frame calls it replaced — the batching
        telemetry contract ``tests/nn/test_batched_quantized.py`` pins.
        """
        with self._lock:
            self.calls += int(frames)
            self.macs += int(macs)
            self.columns_total += int(columns_total)
            self.columns_skipped += int(columns_skipped)

    def record_dynamic(self, total: int, skipped: int) -> None:
        """Record one call's runtime (activation-zero) skip opportunity.

        Only the sparse execution mode calls this, so the dynamic
        counters stay 0 — and every derived rate stays NaN — under
        plain lowered/reference execution, keeping old exports and
        digests byte-compatible.
        """
        with self._lock:
            self.dynamic_columns_total += int(total)
            self.dynamic_columns_skipped += int(skipped)

    def record_occupancy(self, cells_total: int, cells_occupied: int) -> None:
        """Record the observed canvas occupancy behind one call."""
        with self._lock:
            self.canvas_cells_total += int(cells_total)
            self.canvas_cells_occupied += int(cells_occupied)

    def record_accumulator(self, lo: int, hi: int) -> None:
        lo, hi = int(lo), int(hi)
        with self._lock:
            self.acc_min = lo if self.acc_min is None \
                else min(self.acc_min, lo)
            self.acc_max = hi if self.acc_max is None \
                else max(self.acc_max, hi)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def skip_rate(self) -> float:
        """Fraction of dense columns skipped by *static* pattern pruning.

        Historically the only skip counter; it keeps its exact meaning
        (weight-pattern skips only) now that runtime skips exist — see
        :attr:`dynamic_skip_rate` for those.  :attr:`pattern_skip_rate`
        is the explicit alias.
        """
        if self.columns_total == 0:
            return math.nan
        return self.columns_skipped / self.columns_total

    @property
    def pattern_skip_rate(self) -> float:
        """Alias of :attr:`skip_rate` under its unambiguous name."""
        return self.skip_rate

    @property
    def dynamic_skip_rate(self) -> float:
        """Fraction of columns skipped at runtime (zero activations).

        NaN unless sparse execution ran — the denominator only grows
        when the dynamic path was eligible.
        """
        if self.dynamic_columns_total == 0:
            return math.nan
        return self.dynamic_columns_skipped / self.dynamic_columns_total

    @property
    def occupied_fraction(self) -> float:
        """Observed occupied-canvas fraction (NaN without occupancy)."""
        if self.canvas_cells_total == 0:
            return math.nan
        return self.canvas_cells_occupied / self.canvas_cells_total

    @property
    def saturation_rate(self) -> float:
        """Fraction of activation values clipped by quantization."""
        if self.activations_total == 0:
            return math.nan
        return self.activations_saturated / self.activations_total

    @property
    def acc_absmax(self) -> int:
        """Largest accumulator magnitude observed (0 before any call)."""
        if self.acc_min is None or self.acc_max is None:
            return 0
        return max(abs(self.acc_min), abs(self.acc_max))

    @property
    def headroom_bits(self) -> float:
        """Bits of slack between the accumulator extrema and 2^53.

        Positive headroom certifies the float64 reference accumulation
        was exact (hence bit-for-bit equal to the int64 path); infinite
        when no accumulation has been observed or all sums were 0.
        """
        absmax = self.acc_absmax
        if absmax == 0:
            return math.inf
        return ACC_EXACT_BITS - math.log2(absmax)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.macs = 0
            self.columns_total = 0
            self.columns_skipped = 0
            self.dynamic_columns_total = 0
            self.dynamic_columns_skipped = 0
            self.canvas_cells_total = 0
            self.canvas_cells_occupied = 0
            self.activations_total = 0
            self.activations_saturated = 0
            self.acc_min = None
            self.acc_max = None

    def snapshot(self) -> "LayerTelemetry":
        """An independent copy (reports keep these, not live views).

        Taken under the lock so a snapshot never tears a concurrent
        ``record_*`` across fields.
        """
        with self._lock:
            return replace(self)

    def merge(self, other: "LayerTelemetry") -> "LayerTelemetry":
        """Fold another counter into this one (e.g. across streams)."""
        self.calls += other.calls
        self.macs += other.macs
        self.columns_total += other.columns_total
        self.columns_skipped += other.columns_skipped
        self.dynamic_columns_total += other.dynamic_columns_total
        self.dynamic_columns_skipped += other.dynamic_columns_skipped
        self.canvas_cells_total += other.canvas_cells_total
        self.canvas_cells_occupied += other.canvas_cells_occupied
        self.activations_total += other.activations_total
        self.activations_saturated += other.activations_saturated
        if other.acc_min is not None and other.acc_max is not None:
            self.record_accumulator(other.acc_min, other.acc_max)
        return self

    def to_json(self) -> dict:
        record = asdict(self)
        record["skip_rate"] = None if math.isnan(self.skip_rate) \
            else self.skip_rate
        record["pattern_skip_rate"] = record["skip_rate"]
        record["dynamic_skip_rate"] = None \
            if math.isnan(self.dynamic_skip_rate) else self.dynamic_skip_rate
        record["occupied_fraction"] = None \
            if math.isnan(self.occupied_fraction) else self.occupied_fraction
        record["saturation_rate"] = None \
            if math.isnan(self.saturation_rate) else self.saturation_rate
        record["headroom_bits"] = None \
            if math.isinf(self.headroom_bits) else self.headroom_bits
        return record


@dataclass(frozen=True)
class TraceEvent:
    """One frame's simulated device cost attributed to one IR node.

    ``kind`` is ``"layer"`` for real plan layers, ``"overhead"`` for the
    non-kernel pseudo-event (BN/activation traffic + host post-process),
    and ``"jitter"`` for injected latency jitter.  Within a frame, event
    latencies sum to the frame's recorded ``device_latency_s`` and event
    energies to its ``device_energy_j`` (within float tolerance).
    """

    frame_id: int
    layer: str
    latency_s: float
    energy_j: float
    kind: str = "layer"

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class LayerAttribution:
    """Aggregated trace cost of one layer over a set of frames."""

    layer: str
    latency_s: float = 0.0
    energy_j: float = 0.0
    frames: int = 0

    def to_json(self) -> dict:
        return asdict(self)


def attribute_trace(events, frame_ids=None) -> list[LayerAttribution]:
    """Aggregate trace events by layer, most expensive (latency) first.

    ``frame_ids`` optionally restricts the aggregation — passing the set
    of deadline-missing frames is how ``top_offenders`` answers "which
    layers caused the misses".
    """
    totals: dict[str, LayerAttribution] = {}
    for event in events:
        if frame_ids is not None and event.frame_id not in frame_ids:
            continue
        entry = totals.setdefault(event.layer,
                                  LayerAttribution(layer=event.layer))
        entry.latency_s += event.latency_s
        entry.energy_j += event.energy_j
        entry.frames += 1
    return sorted(totals.values(),
                  key=lambda a: a.latency_s, reverse=True)


def aggregate_telemetry(collectors: dict) -> dict:
    """Whole-model digest of a ``layer name → LayerTelemetry`` mapping."""
    total = LayerTelemetry(layer="<all>")
    for counter in collectors.values():
        total.merge(counter)
    headrooms = [c.headroom_bits for c in collectors.values()]
    return {
        "layers": len(collectors),
        "macs": total.macs,
        "skip_rate": total.skip_rate,
        "pattern_skip_rate": total.pattern_skip_rate,
        "dynamic_skip_rate": total.dynamic_skip_rate,
        "occupied_fraction": total.occupied_fraction,
        "saturation_rate": total.saturation_rate,
        "min_headroom_bits": min(headrooms, default=math.inf),
    }


def telemetry_digest(collectors: dict) -> str:
    """The one-line summary ``StreamReport.summary()`` appends.

    Keeps the historical phrasing (``columns skipped`` names the static
    pattern skips, as it always has) so old exports and log parsers
    stay readable; a dynamic clause is appended only when sparse
    execution actually ran.
    """
    agg = aggregate_telemetry(collectors)
    skip = agg["skip_rate"]
    sat = agg["saturation_rate"]
    head = agg["min_headroom_bits"]
    skip_text = "n/a" if math.isnan(skip) else f"{skip:.0%}"
    sat_text = "n/a" if math.isnan(sat) else f"{sat:.2%}"
    head_text = "inf" if math.isinf(head) else f"{head:.1f}"
    text = (f"telemetry: {agg['layers']} layers, "
            f"{agg['macs'] / 1e6:.2f}M MACs, "
            f"columns skipped {skip_text}, "
            f"saturation {sat_text}, "
            f"acc headroom >= {head_text} bits")
    dynamic = agg["dynamic_skip_rate"]
    if not math.isnan(dynamic):
        occupied = agg["occupied_fraction"]
        occupied_text = "n/a" if math.isnan(occupied) \
            else f"{occupied:.1%}"
        text += (f", dynamic columns skipped {dynamic:.0%} "
                 f"(canvas occupied {occupied_text})")
    return text


def export_trace(report) -> dict:
    """Serialize a traced :class:`~repro.runtime.engine.StreamReport`.

    The JSON document ``repro stream --trace out.json`` writes: frame
    records, per-layer trace events, the deadline-miss offender ranking,
    and (when telemetry was enabled) the per-layer counters.
    """
    record = {
        "deadline_s": report.deadline_s,
        "summary": report.summary(),
        "frames": [{
            "frame_id": f.frame_id,
            "status": f.status,
            "device_latency_s": f.device_latency_s,
            "device_energy_j": f.device_energy_j,
            "deadline_met": f.deadline_met,
            "fallback": f.fallback,
        } for f in report.frames],
        "events": [event.to_json() for event in report.trace],
        "top_offenders": [entry.to_json()
                          for entry in report.top_offenders(k=10)],
    }
    if report.telemetry:
        record["telemetry"] = {name: counter.to_json()
                               for name, counter
                               in sorted(report.telemetry.items())}
    return record
