"""Text tables, ASCII bar charts, and CSV export for experiment results."""

from __future__ import annotations

import os

__all__ = ["format_table", "format_bar_chart", "write_csv"]


def format_table(headers: list[str], rows: list[list],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.2f}" if abs(cell) >= 1 else f"{cell:.3f}"
    return str(cell)


def format_bar_chart(labels: list[str], values: list[float],
                     title: str = "", width: int = 40,
                     unit: str = "") -> str:
    """ASCII horizontal bar chart (the repo's stand-in for Figs 4/5)."""
    lines = [title] if title else []
    peak = max(values) if values else 1.0
    label_width = max(len(label) for label in labels) if labels else 0
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 1) if peak > 0 \
            else ""
        lines.append(f"{label.ljust(label_width)} | "
                     f"{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def write_csv(path: str, headers: list[str], rows: list[list]) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(",".join(headers) + "\n")
        for row in rows:
            handle.write(",".join(_fmt(cell) for cell in row) + "\n")
