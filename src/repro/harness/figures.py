"""Figures 1, 4, 5 and 6 — derived from Table 2 runs + qualitative output.

* Fig 4: inference speedup on the Jetson Orin per framework (bars).
* Fig 5: energy-usage reduction on the Jetson Orin per framework (bars).
* Fig 6: qualitative BEV comparison — ground truth vs predictions for
  the base model, R-TOSS and both UPAQ variants on one scene, rendered
  as an ASCII bird's-eye view plus box-alignment statistics.
* Fig 1 (motivation): SMOKE misses objects PointPillars detects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.boxes import (Box3D, boxes_to_array, iou_matrix_bev)

from .paper_reference import TABLE2
from .reporting import format_bar_chart
from .table2 import Table2Row

__all__ = ["speedups", "energy_reductions", "format_fig4", "format_fig5",
           "BEVCanvas", "render_bev", "alignment_report", "format_fig6",
           "detection_count_comparison", "format_fig1"]


# ----------------------------------------------------------------------
# Figs 4 & 5
# ----------------------------------------------------------------------
def speedups(rows: list[Table2Row], device: str = "jetson") -> dict:
    """Framework → speedup over the base model."""
    attr = "jetson_ms" if device == "jetson" else "rtx_ms"
    base = next(r for r in rows if r.framework == "Base Model")
    return {r.framework: getattr(base, attr) / getattr(r, attr)
            for r in rows}


def energy_reductions(rows: list[Table2Row], device: str = "jetson") -> dict:
    attr = "jetson_j" if device == "jetson" else "rtx_j"
    base = next(r for r in rows if r.framework == "Base Model")
    return {r.framework: getattr(base, attr) / getattr(r, attr)
            for r in rows}


def _paper_factors(model_name: str, column: int) -> dict:
    paper = TABLE2[model_name]
    base = paper["Base Model"][column]
    return {name: base / values[column] for name, values in paper.items()}


def format_fig4(model_name: str, rows: list[Table2Row]) -> str:
    measured = speedups(rows)
    paper = _paper_factors(model_name, column=3)
    labels = [f"{name} (paper {paper.get(name, 1.0):.2f}x)"
              for name in measured]
    return format_bar_chart(
        labels, list(measured.values()),
        title=f"Fig 4: Jetson Orin inference speedup — {model_name}",
        unit="x")


def format_fig5(model_name: str, rows: list[Table2Row]) -> str:
    measured = energy_reductions(rows)
    paper = _paper_factors(model_name, column=5)
    labels = [f"{name} (paper {paper.get(name, 1.0):.2f}x)"
              for name in measured]
    return format_bar_chart(
        labels, list(measured.values()),
        title=f"Fig 5: Jetson Orin energy reduction — {model_name}",
        unit="x")


# ----------------------------------------------------------------------
# Fig 6 — qualitative BEV comparison
# ----------------------------------------------------------------------
@dataclass
class BEVCanvas:
    x_range: tuple = (0.0, 51.2)
    y_range: tuple = (-25.6, 25.6)
    rows: int = 24
    cols: int = 48


def render_bev(gt_boxes: list[Box3D], pred_boxes: list[Box3D],
               canvas: BEVCanvas | None = None) -> str:
    """ASCII BEV: ``o`` ground truth, ``x`` prediction, ``*`` both."""
    canvas = canvas or BEVCanvas()
    grid = [[" "] * canvas.cols for _ in range(canvas.rows)]

    def mark(boxes, symbol):
        for box in boxes:
            col = int((box.x - canvas.x_range[0])
                      / (canvas.x_range[1] - canvas.x_range[0])
                      * canvas.cols)
            row = int((box.y - canvas.y_range[0])
                      / (canvas.y_range[1] - canvas.y_range[0])
                      * canvas.rows)
            if 0 <= row < canvas.rows and 0 <= col < canvas.cols:
                current = grid[row][col]
                if current == " ":
                    grid[row][col] = symbol
                elif current != symbol:
                    grid[row][col] = "*"

    mark(gt_boxes, "o")
    mark(pred_boxes, "x")
    border = "+" + "-" * canvas.cols + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    return f"{border}\n{body}\n{border}"


@dataclass
class AlignmentStats:
    name: str
    detected: int
    total_gt: int
    mean_center_error: float      # meters, over matched pairs
    mean_iou: float
    extraneous: int               # predictions matching no ground truth


def alignment_report(name: str, gt_boxes: list[Box3D],
                     pred_boxes: list[Box3D],
                     match_iou: float = 0.1) -> AlignmentStats:
    """Quantifies Fig 6's qualitative claims (misalignment, extras)."""
    if not pred_boxes or not gt_boxes:
        return AlignmentStats(name=name, detected=0, total_gt=len(gt_boxes),
                              mean_center_error=float("nan"), mean_iou=0.0,
                              extraneous=len(pred_boxes))
    iou = iou_matrix_bev(boxes_to_array(pred_boxes), boxes_to_array(gt_boxes))
    matched_gt = set()
    errors, ious = [], []
    extraneous = 0
    for i in np.argsort([-b.score for b in pred_boxes]):
        j = int(iou[i].argmax())
        if iou[i, j] >= match_iou and j not in matched_gt:
            matched_gt.add(j)
            gt, pred = gt_boxes[j], pred_boxes[i]
            errors.append(float(np.hypot(pred.x - gt.x, pred.y - gt.y)))
            ious.append(float(iou[i, j]))
        else:
            extraneous += 1
    return AlignmentStats(
        name=name, detected=len(matched_gt), total_gt=len(gt_boxes),
        mean_center_error=float(np.mean(errors)) if errors else float("nan"),
        mean_iou=float(np.mean(ious)) if ious else 0.0,
        extraneous=extraneous)


def format_fig6(scene, named_predictions: dict) -> str:
    """Render the Fig 6 comparison for one scene.

    ``named_predictions`` maps framework name → list[Box3D].
    """
    sections = ["Fig 6: qualitative BEV comparison "
                "(o = ground truth, x = prediction, * = overlap)"]
    for name, boxes in named_predictions.items():
        stats = alignment_report(name, scene.boxes, boxes)
        sections.append(
            f"\n--- {name}: {stats.detected}/{stats.total_gt} objects, "
            f"center err {stats.mean_center_error:.2f} m, "
            f"mean IoU {stats.mean_iou:.2f}, "
            f"{stats.extraneous} extraneous ---")
        sections.append(render_bev(scene.boxes, boxes))
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Fig 1 — LiDAR vs camera motivation
# ----------------------------------------------------------------------
def detection_count_comparison(scenes, lidar_model, camera_model,
                               match_iou: float = 0.1) -> dict:
    """Count ground-truth objects each detector finds on shared scenes."""
    results = {"total_gt": 0, "lidar_found": 0, "camera_found": 0}
    for scene in scenes:
        gt = scene.boxes
        results["total_gt"] += len(gt)
        for key, model in (("lidar_found", lidar_model),
                           ("camera_found", camera_model)):
            pred = model.predict(scene).boxes
            stats = alignment_report(key, gt, pred, match_iou=match_iou)
            results[key] += stats.detected
    return results


def format_fig1(counts: dict) -> str:
    total = max(counts["total_gt"], 1)
    return "\n".join([
        "Fig 1: LiDAR (PointPillars) vs camera (SMOKE) coverage",
        f"ground-truth objects : {counts['total_gt']}",
        f"PointPillars found   : {counts['lidar_found']} "
        f"({100 * counts['lidar_found'] / total:.0f}%)",
        f"SMOKE found          : {counts['camera_found']} "
        f"({100 * counts['camera_found'] / total:.0f}%)",
        "(paper: SMOKE misses foreground/background objects that the "
        "LiDAR detector finds)",
    ])
