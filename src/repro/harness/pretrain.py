"""Pretraining of baseline detectors with artifact caching.

The paper compresses *pretrained* PointPillars and SMOKE checkpoints.
This module trains them on the synthetic KITTI-like stream (fresh scenes
every step — the generator is the dataset, so there is no overfitting to
a fixed split), tracks validation mAP, keeps the best checkpoint, and
caches weights under ``artifacts/`` so experiments don't retrain.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.detection import evaluate_map
from repro.models import build_model
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator

__all__ = ["TrainConfig", "PretrainResult", "pretrain", "get_pretrained",
           "default_scene_config", "validation_scenes", "training_scenes"]

_ARTIFACT_DIR = os.environ.get(
    "REPRO_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "..", "..", "..", "artifacts"))

#: validation frame ids live far outside the training id range
_VAL_OFFSET = 10 ** 6


@dataclass
class TrainConfig:
    """Knobs for the pretraining loop."""

    steps: int = 3000
    lr: float = 2e-3
    lr_decay_at: tuple = (0.6, 0.85)   # fractions of total steps
    eval_every: int = 250
    eval_frames: int = 10
    seed: int = 0
    with_image: bool = False           # True for camera models (SMOKE)
    scene_config: SceneConfig | None = None
    #: apply LiDAR augmentation (rotation/flip/scale/jitter) per step;
    #: incompatible with camera models (augmentation drops the image)
    augment: bool = False


@dataclass
class PretrainResult:
    model: object
    best_map: float
    history: list = field(default_factory=list)   # (step, loss, mAP)
    val_scenes: list = field(default_factory=list)


def default_scene_config() -> SceneConfig:
    """The synthetic stand-in for KITTI used across all experiments."""
    return SceneConfig(lidar=LidarConfig(channels=24, azimuth_steps=240))


def validation_scenes(count: int, config: SceneConfig | None = None,
                      seed: int = 0, with_image: bool = True) -> list:
    generator = SceneGenerator(config or default_scene_config(), seed=seed)
    return [generator.generate(_VAL_OFFSET + i, with_image=with_image)
            for i in range(count)]


def training_scenes(count: int, config: SceneConfig | None = None,
                    seed: int = 0, with_image: bool = True,
                    start: int = 0) -> list:
    generator = SceneGenerator(config or default_scene_config(), seed=seed)
    return [generator.generate(start + i, with_image=with_image)
            for i in range(count)]


def pretrain(model, config: TrainConfig) -> PretrainResult:
    """Online-data training with best-checkpoint selection by val mAP."""
    scene_config = config.scene_config or default_scene_config()
    generator = SceneGenerator(scene_config, seed=config.seed)
    val = validation_scenes(config.eval_frames, scene_config,
                            seed=config.seed, with_image=config.with_image)

    optimizer = nn.optim.Adam(model.parameters(), lr=config.lr)
    from repro.nn.schedulers import StepDecay
    scheduler = StepDecay(
        optimizer,
        milestones=[int(config.steps * frac) for frac in config.lr_decay_at],
        gamma=0.4)

    if config.augment and config.with_image:
        raise ValueError("augmentation drops images; disable one of them")
    augment_rng = np.random.default_rng(config.seed + 17)

    best_map = -1.0
    best_state = model.state_dict()
    history = []
    for step in range(config.steps):
        scheduler.step()
        scene = generator.generate(step, with_image=config.with_image)
        if config.augment:
            from repro.pointcloud.augment import augment_scene
            scene = augment_scene(scene, rng=augment_rng)
        loss = model.train_step(optimizer, scene)
        if (step + 1) % config.eval_every == 0 or step == config.steps - 1:
            preds = [model.predict(s) for s in val]
            metrics = evaluate_map(preds, [s.boxes for s in val])
            history.append((step, loss, metrics["mAP"]))
            if metrics["mAP"] > best_map:
                best_map = metrics["mAP"]
                best_state = model.state_dict()
    model.load_state_dict(best_state)
    model.eval()
    return PretrainResult(model=model, best_map=best_map, history=history,
                          val_scenes=val)


def get_pretrained(model_name: str, train_config: TrainConfig | None = None,
                   cache: bool = True, **model_kwargs):
    """Build + pretrain a detector, reusing a cached checkpoint if present.

    Returns ``(model, PretrainResult | None)`` — the result is None on a
    cache hit (history is not persisted).
    """
    train_config = train_config or TrainConfig(
        with_image=(model_name == "smoke"))
    model = build_model(model_name, **model_kwargs)
    cache_key = f"{model_name}_s{train_config.steps}" \
                f"_seed{train_config.seed}_p{model.num_parameters()}"
    path = os.path.join(_ARTIFACT_DIR, cache_key + ".npz")
    if cache and os.path.exists(path):
        nn.load_model(model, path)
        model.eval()
        return model, None
    result = pretrain(model, train_config)
    if cache:
        os.makedirs(_ARTIFACT_DIR, exist_ok=True)
        nn.save_model(model, path)
    return model, result
