"""The paper's published numbers, for side-by-side reporting.

Every harness prints measured values next to these so EXPERIMENTS.md
can record paper-vs-measured for each table and figure.
"""

from __future__ import annotations

__all__ = ["TABLE1", "TABLE2", "FRAMEWORK_ORDER"]

#: Table 1 — model size (M parameters) and workstation exec time (ms).
TABLE1 = {
    "PointPillars": {"params_m": 4.8, "exec_ms": 6.85},
    "SMOKE": {"params_m": 19.51, "exec_ms": 30.65},
    "SECOND": {"params_m": 5.3, "exec_ms": 9.83},
    "Focals Conv": {"params_m": 13.70, "exec_ms": 26.5},
    "VSC": {"params_m": 24.5, "exec_ms": 40.56},
}

#: Column order of Table 2 / Figs 4–5.
FRAMEWORK_ORDER = ("Base Model", "Ps&Qs", "CLIP-Q", "R-TOSS", "LiDAR-PTQ",
                   "UPAQ (LCK)", "UPAQ (HCK)")

#: Table 2 — per model, per framework:
#: (compression ×, mAP, RTX 4080 ms, Jetson ms, RTX J, Jetson J).
TABLE2 = {
    "PointPillars": {
        "Base Model": (1.00, 78.96, 5.72, 35.98, 0.875, 0.863),
        "Ps&Qs": (1.89, 83.67, 5.17, 32.061, 0.658, 0.782),
        "CLIP-Q": (1.84, 79.68, 5.26, 35.07, 0.716, 0.841),
        "R-TOSS": (4.07, 85.26, 5.69, 35.94, 0.871, 0.862),
        "LiDAR-PTQ": (3.25, 78.90, 4.25, 29.65, 0.567, 0.711),
        "UPAQ (LCK)": (4.92, 86.15, 2.37, 19.96, 0.371, 0.472),
        "UPAQ (HCK)": (5.62, 84.25, 1.70, 18.23, 0.327, 0.417),
    },
    "SMOKE": {
        "Base Model": (1.00, 29.85, 28.36, 127.48, 8.95, 25.85),
        "Ps&Qs": (1.95, 31.03, 23.72, 93.65, 7.79, 19.21),
        "CLIP-Q": (1.84, 30.45, 25.48, 87.28, 8.63, 17.87),
        "R-TOSS": (4.25, 32.56, 24.98, 98.87, 4.37, 20.84),
        "LiDAR-PTQ": (3.57, 30.23, 12.75, 86.27, 4.79, 18.25),
        "UPAQ (LCK)": (4.23, 36.65, 9.67, 71.35, 3.21, 15.62),
        "UPAQ (HCK)": (5.13, 35.49, 8.23, 68.45, 2.83, 13.80),
    },
}
