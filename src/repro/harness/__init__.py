"""``repro.harness`` — regenerates every table and figure in the paper.

One module per artifact: :mod:`table1` (model sizes vs latency),
:mod:`table2` (the full framework comparison), :mod:`figures`
(Figs 1/4/5/6), plus pretraining with artifact caching and text/CSV
reporting.  ``benchmarks/`` drives these through pytest-benchmark.
"""

from .figures import (alignment_report, detection_count_comparison,
                      energy_reductions, format_fig1, format_fig4,
                      format_fig5, format_fig6, render_bev, speedups)
from .paper_reference import FRAMEWORK_ORDER, TABLE1, TABLE2
from .pretrain import (PretrainResult, TrainConfig, default_scene_config,
                       get_pretrained, pretrain, training_scenes,
                       validation_scenes)
from .reporting import format_bar_chart, format_table, write_csv
from .runner import RunnerConfig, run_all
from .table1 import Table1Row, format_table1, run_table1
from .table2 import (Table2Config, Table2Row, default_frameworks,
                     evaluate_model_map, format_table2, run_table2)

__all__ = [
    "TrainConfig", "PretrainResult", "pretrain", "get_pretrained",
    "default_scene_config", "training_scenes", "validation_scenes",
    "Table1Row", "run_table1", "format_table1",
    "Table2Config", "Table2Row", "run_table2", "format_table2",
    "default_frameworks", "evaluate_model_map",
    "speedups", "energy_reductions", "format_fig4", "format_fig5",
    "render_bev", "alignment_report", "format_fig6",
    "detection_count_comparison", "format_fig1",
    "format_table", "format_bar_chart", "write_csv",
    "RunnerConfig", "run_all",
    "TABLE1", "TABLE2", "FRAMEWORK_ORDER",
]
