"""One-shot experiment orchestration: regenerate everything, write a report.

``run_all`` executes Table 1, Table 2 for both models, and derives
Figs 4/5, writing a results directory with CSVs and a Markdown summary —
the artifact a reviewer would diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .figures import energy_reductions, format_fig4, format_fig5, speedups
from .reporting import write_csv
from .table1 import format_table1, run_table1
from .table2 import Table2Config, format_table2, run_table2

__all__ = ["RunnerConfig", "run_all"]


@dataclass
class RunnerConfig:
    """Budgets for a full regeneration run."""

    output_dir: str = "results"
    pointpillars: dict = field(default_factory=lambda: dict(
        pretrain_steps=6400, finetune_scenes=24, finetune_epochs=3,
        eval_frames=12))
    smoke: dict = field(default_factory=lambda: dict(
        pretrain_steps=1500, finetune_scenes=24, finetune_epochs=3,
        eval_frames=10))
    include_smoke: bool = True
    #: worker count for the UPAQ candidate search in every Table 2 run
    #: (bit-identical results for any value)
    search_workers: int = 1


def _table2_csv(path: str, rows) -> None:
    write_csv(path,
              ["framework", "compression", "mAP", "rtx_ms", "jetson_ms",
               "rtx_j", "jetson_j"],
              [[r.framework, r.compression, r.map_score, r.rtx_ms,
                r.jetson_ms, r.rtx_j, r.jetson_j] for r in rows])


def run_all(config: RunnerConfig | None = None) -> dict:
    """Run every experiment; returns {artifact name → result object}."""
    config = config or RunnerConfig()
    out = config.output_dir
    os.makedirs(out, exist_ok=True)
    results: dict = {}
    report_lines: list[str] = ["# UPAQ reproduction — generated results",
                               ""]

    table1 = run_table1()
    results["table1"] = table1
    write_csv(os.path.join(out, "table1.csv"),
              ["model", "params", "exec_ms", "paper_params_m",
               "paper_exec_ms"],
              [[r.model, r.params, r.exec_ms, r.paper_params_m,
                r.paper_exec_ms] for r in table1])
    report_lines += ["```", format_table1(table1), "```", ""]

    model_runs = [("pointpillars", "PointPillars", config.pointpillars)]
    if config.include_smoke:
        model_runs.append(("smoke", "SMOKE", config.smoke))

    for key, label, budget in model_runs:
        rows = run_table2(Table2Config(model_name=key,
                                       search_workers=config.search_workers,
                                       **budget))
        results[f"table2_{key}"] = rows
        _table2_csv(os.path.join(out, f"table2_{key}.csv"), rows)
        results[f"fig4_{key}"] = speedups(rows)
        results[f"fig5_{key}"] = energy_reductions(rows)
        report_lines += ["```", format_table2(label, rows), "",
                         format_fig4(label, rows), "",
                         format_fig5(label, rows), "```", ""]

    report_path = os.path.join(out, "REPORT.md")
    with open(report_path, "w") as handle:
        handle.write("\n".join(report_lines))
    results["report_path"] = report_path
    return results
