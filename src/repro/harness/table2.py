"""Table 2 — the paper's headline comparison.

For PointPillars and SMOKE: compression ratio, mAP, inference time and
per-inference energy on both devices, for the uncompressed base model,
the four baselines, and both UPAQ variants.

Latency/energy come from the analytic device models *anchored to the
paper's measured base-model values* (the documented substitution for
Jetson/RTX hardware): each device model is calibrated so the dense base
plan costs exactly what the paper reports, and compressed variants are
priced relative to that anchor.  mAP is measured on held-out synthetic
scenes after each framework's own fine-tuning policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import ClipQ, LidarPTQ, PsAndQs, RToss
from repro.core import UPAQCompressor, hck_config, lck_config
from repro.detection import evaluate_map
from repro.hardware import compile_model, default_devices
from repro.models.base import Detector3D

from .paper_reference import FRAMEWORK_ORDER, TABLE2
from .pretrain import TrainConfig, get_pretrained, training_scenes, \
    validation_scenes
from .reporting import format_table

__all__ = ["Table2Config", "Table2Row", "run_table2", "format_table2",
           "default_frameworks", "evaluate_model_map"]


@dataclass
class Table2Config:
    """Scale knobs for the Table 2 run."""

    model_name: str = "pointpillars"
    pretrain_steps: int = 3200
    finetune_scenes: int = 24
    finetune_epochs: int = 3
    eval_frames: int = 12
    seed: int = 0
    frameworks: tuple = FRAMEWORK_ORDER[1:]   # all but the base model
    model_kwargs: dict = field(default_factory=dict)
    #: worker count for the UPAQ candidate search (bit-identical results
    #: for any value; >1 parallelizes the per-root-layer evaluation)
    search_workers: int = 1


@dataclass
class Table2Row:
    framework: str
    compression: float
    map_score: float
    rtx_ms: float
    jetson_ms: float
    rtx_j: float
    jetson_j: float


def default_frameworks(seed: int = 0, search_workers: int = 1) -> dict:
    """Name → compressor instance, in the paper's column order."""
    return {
        "Ps&Qs": PsAndQs(),
        "CLIP-Q": ClipQ(),
        "R-TOSS": RToss(),
        "LiDAR-PTQ": LidarPTQ(),
        "UPAQ (LCK)": UPAQCompressor(
            lck_config(seed=seed, search_workers=search_workers)),
        "UPAQ (HCK)": UPAQCompressor(
            hck_config(seed=seed, search_workers=search_workers)),
    }


def evaluate_model_map(model: Detector3D, scenes) -> float:
    predictions = [model.predict(scene) for scene in scenes]
    return evaluate_map(predictions, [s.boxes for s in scenes])["mAP"]


def run_table2(config: Table2Config) -> list[Table2Row]:
    with_image = config.model_name == "smoke"
    base, _ = get_pretrained(
        config.model_name,
        TrainConfig(steps=config.pretrain_steps, seed=config.seed,
                    with_image=with_image),
        **config.model_kwargs)
    example_inputs = base.example_inputs()

    eval_scenes = validation_scenes(config.eval_frames, seed=config.seed,
                                    with_image=with_image)
    finetune = training_scenes(config.finetune_scenes, seed=config.seed,
                               with_image=with_image, start=500_000)

    # Anchor both devices to the paper's base-model measurements.
    paper = TABLE2[base.name]
    base_plan = compile_model(base, *example_inputs)
    devices = default_devices()
    jetson = devices["jetson"].calibrate(base_plan,
                                         paper["Base Model"][3] * 1e-3)
    rtx = devices["rtx4080"].calibrate(base_plan,
                                       paper["Base Model"][2] * 1e-3)
    energy_cal_jetson = paper["Base Model"][5] / jetson.energy(base_plan)
    energy_cal_rtx = paper["Base Model"][4] / rtx.energy(base_plan)

    def row_for(name: str, model: Detector3D, compression: float,
                map_score: float) -> Table2Row:
        plan = compile_model(model, *example_inputs)
        return Table2Row(
            framework=name, compression=compression, map_score=map_score,
            rtx_ms=rtx.latency(plan) * 1e3,
            jetson_ms=jetson.latency(plan) * 1e3,
            rtx_j=rtx.energy(plan) * energy_cal_rtx,
            jetson_j=jetson.energy(plan) * energy_cal_jetson)

    rows = [row_for("Base Model", base, 1.0,
                    evaluate_model_map(base, eval_scenes))]
    frameworks = default_frameworks(config.seed,
                                    search_workers=config.search_workers)
    for name in config.frameworks:
        framework = frameworks[name]
        report = framework.compress(base, *example_inputs)
        framework.finetune(report, finetune, epochs=config.finetune_epochs)
        map_score = evaluate_model_map(report.model, eval_scenes)
        rows.append(row_for(name, report.model, report.compression_ratio,
                            map_score))
    return rows


def format_table2(model_name: str, rows: list[Table2Row]) -> str:
    paper = TABLE2[model_name]
    table_rows = []
    for row in rows:
        ref = paper.get(row.framework)
        table_rows.append([
            row.framework,
            f"{row.compression:.2f}x", f"({ref[0]:.2f}x)",
            f"{row.map_score:.2f}", f"({ref[1]:.2f})",
            f"{row.rtx_ms:.2f}", f"({ref[2]:.2f})",
            f"{row.jetson_ms:.2f}", f"({ref[3]:.2f})",
            f"{row.rtx_j:.3f}", f"({ref[4]:.3f})",
            f"{row.jetson_j:.3f}", f"({ref[5]:.3f})",
        ])
    return format_table(
        ["Framework", "Compr", "paper", "mAP", "paper",
         "RTX ms", "paper", "Jetson ms", "paper",
         "RTX J", "paper", "Jetson J", "paper"],
        table_rows,
        title=f"Table 2 ({model_name}): measured vs (paper)")
