"""Table 1 — 3D OD model sizes vs execution time.

Builds the five detectors, counts parameters, and prices one forward
pass on the RTX 4080 device model (the paper measures exec time on the
workstation).  Because our models are reduced-scale, the table reports
both raw measurements and the paper's values; the reproduction target is
the *ordering* and relative factors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import compile_model, default_devices
from repro.models import build_model

from .paper_reference import TABLE1
from .reporting import format_table

__all__ = ["Table1Row", "run_table1", "format_table1"]

_MODEL_KEYS = ("pointpillars", "smoke", "second", "focalsconv", "vsc")


@dataclass
class Table1Row:
    model: str
    params: int
    exec_ms: float
    paper_params_m: float
    paper_exec_ms: float


def run_table1(model_keys: tuple = _MODEL_KEYS) -> list[Table1Row]:
    device = default_devices()["rtx4080"]
    rows = []
    for key in model_keys:
        model = build_model(key)
        plan = compile_model(model, *model.example_inputs())
        reference = TABLE1[model.name]
        rows.append(Table1Row(
            model=model.name,
            params=model.num_parameters(),
            exec_ms=device.latency(plan) * 1e3,
            paper_params_m=reference["params_m"],
            paper_exec_ms=reference["exec_ms"]))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    base = next(r for r in rows if r.model == "PointPillars")
    table_rows = []
    for row in rows:
        table_rows.append([
            row.model,
            f"{row.params / 1e6:.2f}M",
            f"{row.params / base.params:.2f}x",
            f"{row.paper_params_m / base.paper_params_m:.2f}x",
            f"{row.exec_ms:.3f}",
            f"{row.exec_ms / base.exec_ms:.2f}x",
            f"{row.paper_exec_ms / base.paper_exec_ms:.2f}x",
        ])
    return format_table(
        ["Model", "Params", "Size vs PP", "(paper)",
         "Exec ms", "Time vs PP", "(paper)"],
        table_rows, title="Table 1: model size vs execution time")
