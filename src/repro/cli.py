"""Command-line interface for the UPAQ reproduction.

Subcommands mirror the library's workflow::

    python -m repro.cli generate --frames 10 --out /tmp/kitti      # dataset
    python -m repro.cli train --model pointpillars --steps 500     # pretrain
    python -m repro.cli compress --model pointpillars --preset hck # compress
    python -m repro.cli evaluate --model pointpillars --frames 8   # mAP
    python -m repro.cli table1                                     # Table 1
    python -m repro.cli table2 --model pointpillars --scale quick  # Table 2
    python -m repro.cli sensitivity --model pointpillars           # analysis
    python -m repro.cli stream --inject-faults --fault-seed 7      # chaos
    python -m repro.cli serve --streams 4 --offered-load 30        # serving
    python -m repro.cli pack-archive --model tiny --out fleet.upak # archive
    python -m repro.cli archive ls fleet.upak                      # inspect
    python -m repro.cli stream --archive fleet.upak \\
        --ladder lck-16bit,lck-8bit,hck-8bit,hck-4bit              # ladder
    python -m repro.cli ir dump pointpillars --preset hck          # model IR
    python -m repro.cli fuzz --out /tmp/sweep.json                 # fuzz gate
    python -m repro.cli query "status = degraded" --report /tmp/sweep.json
"""

from __future__ import annotations

import argparse
import math
import sys
import time


def _cmd_generate(args) -> int:
    from repro.camera import CameraModel
    from repro.pointcloud import export_kitti, make_dataset
    data = make_dataset(args.frames, seed=args.seed, with_image=True)
    scenes = data["train"] + data["val"] + data["test"]
    export_kitti(scenes, args.out, camera=CameraModel.kitti_like())
    print(f"wrote {len(scenes)} KITTI-format frames to {args.out} "
          f"(split {len(data['train'])}/{len(data['val'])}"
          f"/{len(data['test'])})")
    return 0


def _cmd_train(args) -> int:
    from repro.harness import TrainConfig, get_pretrained
    config = TrainConfig(steps=args.steps, seed=args.seed,
                         with_image=(args.model == "smoke"))
    model, result = get_pretrained(args.model, config, cache=not args.fresh)
    if result is None:
        print(f"loaded cached {args.model} checkpoint "
              f"({model.num_parameters() / 1e3:.0f}k params)")
    else:
        print(f"trained {args.model} for {args.steps} steps; "
              f"best mAP {result.best_map:.2f}")
    return 0


def _cmd_compress(args) -> int:
    from repro.core import (UPAQCompressor, hck_config, lck_config,
                            pack_model)
    from repro.harness import TrainConfig, get_pretrained
    from repro.hardware import compile_model, default_devices

    config = {"hck": hck_config, "lck": lck_config}[args.preset](
        search_workers=args.workers, search_backend=args.backend,
        search_journal=args.journal, search_retries=args.retries,
        search_timeout_s=args.task_timeout)
    model, _ = get_pretrained(
        args.model, TrainConfig(steps=args.steps,
                                with_image=(args.model == "smoke")))
    inputs = model.example_inputs()
    report = UPAQCompressor(config).compress(model, *inputs)
    plan = compile_model(report.model, *inputs)
    device = default_devices()["jetson"]
    print(f"{config.name} on {args.model}: "
          f"{report.compression_ratio:.2f}x compression, "
          f"sparsity {report.overall_sparsity:.0%}, "
          f"mean {report.mean_bits:.1f} bits, "
          f"Jetson latency {device.latency(plan) * 1e3:.3f} ms")
    print(report.search.summary())
    if args.verbose_search:
        for stat in report.search.layers:
            cached = " (cached)" if stat.cached else ""
            print(f"  {stat.layer:42s} {stat.role:4s} "
                  f"{stat.candidates:4d} candidates "
                  f"{stat.wall_time_s * 1e3:8.2f} ms{cached}")
    if args.out:
        blob = pack_model(report.model)
        with open(args.out, "wb") as handle:
            handle.write(blob)
        print(f"packed model ({len(blob) / 1024:.1f} KiB) → {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.detection import evaluate_by_difficulty
    from repro.harness import (TrainConfig, get_pretrained,
                               validation_scenes)
    model, _ = get_pretrained(
        args.model, TrainConfig(steps=args.steps,
                                with_image=(args.model == "smoke")))
    scenes = validation_scenes(args.frames,
                               with_image=(args.model == "smoke"))
    predictions = [model.predict(scene) for scene in scenes]
    result = evaluate_by_difficulty(predictions, [s.boxes for s in scenes])

    def fmt(value, width=6, digits=2):
        # NaN means "no ground truth at this difficulty", not zero.
        if isinstance(value, float) and math.isnan(value):
            return "n/a".rjust(width)
        return f"{value:{width}.{digits}f}"

    for bucket, metrics in result.items():
        per_class = " ".join(f"{k}={fmt(v, 0, 1)}"
                             for k, v in metrics.items() if k != "mAP")
        print(f"{bucket:9s} mAP={fmt(metrics['mAP'])}  {per_class}")
    return 0


def _cmd_table1(args) -> int:
    from repro.harness import format_table1, run_table1
    print(format_table1(run_table1()))
    return 0


def _cmd_table2(args) -> int:
    from repro.harness import (Table2Config, format_fig4, format_fig5,
                               format_table2, run_table2)
    budgets = {
        "quick": dict(pretrain_steps=300, finetune_scenes=6,
                      finetune_epochs=1, eval_frames=4),
        "full": dict(pretrain_steps=6400 if args.model == "pointpillars"
                     else 1500,
                     finetune_scenes=24, finetune_epochs=3, eval_frames=12),
    }
    rows = run_table2(Table2Config(model_name=args.model,
                                   search_workers=args.workers,
                                   **budgets[args.scale]))
    label = "PointPillars" if args.model == "pointpillars" else "SMOKE"
    print(format_table2(label, rows))
    print()
    print(format_fig4(label, rows))
    print()
    print(format_fig5(label, rows))
    return 0


def _cmd_report(args) -> int:
    from repro.harness import RunnerConfig, run_all
    budgets = {
        "quick": dict(pretrain_steps=300, finetune_scenes=6,
                      finetune_epochs=1, eval_frames=4),
        "full": dict(pretrain_steps=6400, finetune_scenes=24,
                     finetune_epochs=3, eval_frames=12),
    }
    smoke_budgets = {
        "quick": dict(pretrain_steps=200, finetune_scenes=4,
                      finetune_epochs=1, eval_frames=4),
        "full": dict(pretrain_steps=1500, finetune_scenes=24,
                     finetune_epochs=3, eval_frames=10),
    }
    config = RunnerConfig(output_dir=args.out,
                          pointpillars=budgets[args.scale],
                          smoke=smoke_budgets[args.scale],
                          include_smoke=not args.skip_smoke,
                          search_workers=args.workers)
    results = run_all(config)
    print(f"report written to {results['report_path']}")
    return 0


def _build_stream_model(name: str):
    """Fresh architecture for a streamed / archived model name."""
    if name == "tiny":
        from repro.fuzzing import build_fuzz_model
        return build_fuzz_model("tiny")
    from repro.models import build_model
    return build_model(name)


def _cmd_stream(args) -> int:
    """Stream scenes through a deployment engine, optionally under chaos."""
    from repro.core import UPAQCompressor, hck_config, lck_config
    from repro.hardware import default_devices
    from repro.pointcloud import SceneGenerator
    from repro.runtime import (DegradationPolicy, FaultInjector, FaultSpec,
                               InferenceEngine)

    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch} "
              "(1 disables micro-batching)", file=sys.stderr)
        return 2
    if args.ladder and not args.archive:
        print("error: --ladder needs --archive (rung names index "
              "archive entries)", file=sys.stderr)
        return 2
    presets = {"hck": hck_config, "lck": lck_config}
    with_image = args.model == "smoke"
    model = None
    fallback = None
    ladder = None
    if args.archive:
        if args.fallback_model != "none":
            print("error: --fallback-model conflicts with --archive; "
                  "the ladder already orders the fallbacks",
                  file=sys.stderr)
            return 2
        from repro.core import ArchiveError, ArchiveReader
        from repro.runtime import DegradationLadder
        try:
            reader = ArchiveReader.open(args.archive)
        except (OSError, ArchiveError) as error:
            print(f"error: cannot open archive {args.archive}: {error}",
                  file=sys.stderr)
            return 2
        names = [part.strip() for part in args.ladder.split(",")
                 if part.strip()] if args.ladder else reader.names

        def factory(meta):
            return _build_stream_model(meta.get("model", args.model))

        try:
            ladder = DegradationLadder.from_archive(
                reader, names, factory,
                promote_after=args.promote_after,
                probation=args.probation)
        except (KeyError, ValueError, ArchiveError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"ladder from {args.archive}: " + " -> ".join(names))
    else:
        model = _build_stream_model(args.model)
        if args.preset != "none":
            model = UPAQCompressor(presets[args.preset]()).compress(
                model, *model.example_inputs()).model
        if args.fallback_model != "none":
            base = _build_stream_model(args.model)
            fallback = UPAQCompressor(
                presets[args.fallback_model]()).compress(
                base, *base.example_inputs()).model

    injector = None
    if args.inject_faults:
        injector = FaultInjector(FaultSpec(
            drop_rate=args.drop_rate, corrupt_rate=args.corrupt_rate,
            jitter="lognormal" if args.jitter_ms > 0 else "none",
            jitter_scale_s=args.jitter_ms / 1e3, seed=args.fault_seed))
    policy = DegradationPolicy(on_corrupt=args.on_corrupt,
                               max_consecutive_misses=args.miss_limit)
    engine = InferenceEngine(model, default_devices()[args.device],
                             deadline_s=args.deadline_ms / 1e3,
                             policy=policy, fault_injector=injector,
                             fallback_model=fallback, ladder=ladder,
                             execution=args.execution,
                             trace=bool(args.trace),
                             telemetry=args.telemetry,
                             batch_size=args.batch)
    generator = SceneGenerator(seed=args.seed)
    scenes = [generator.generate(i, with_image=with_image)
              for i in range(args.frames)]
    report = engine.run(scenes)
    print(report.summary())
    if engine.on_fallback:
        if ladder is not None:
            print(f"stream ended on rung {engine.active_rung!r} after "
                  f"repeated deadline misses")
        else:
            print(f"watchdog swapped to the {args.fallback_model.upper()} "
                  f"fallback model after repeated deadline misses")
    if args.swap_report:
        import json
        payload = {
            "ladder": list(engine.ladder.names),
            "swap_events": [{"frame_id": event.frame_id,
                             "kind": event.kind,
                             "from_rung": event.from_rung,
                             "to_rung": event.to_rung}
                            for event in report.swap_events],
            "frame_rungs": [{"frame_id": record.frame_id,
                             "rung": record.rung}
                            for record in report.frames],
            "rung_residency": report.rung_residency,
            "demotions": report.demotions,
            "promotions": report.promotions,
        }
        with open(args.swap_report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"swap-event report ({len(report.swap_events)} events) "
              f"→ {args.swap_report}")
    if args.trace:
        import json

        from repro.runtime import export_trace
        with open(args.trace, "w") as handle:
            json.dump(export_trace(report), handle, indent=2)
        offenders = report.top_offenders(k=3)
        print(f"trace: {len(report.trace)} events → {args.trace}")
        if offenders:
            worst = ", ".join(
                f"{entry.layer} ({entry.latency_s * 1e3:.3f} ms)"
                for entry in offenders)
            print(f"deadline-miss attribution: {worst}")
    return 0


def _cmd_serve(args) -> int:
    """Serve N synthetic client streams through a ServingEngine."""
    import json

    import numpy as np

    from repro.core import UPAQCompressor, hck_config, lck_config
    from repro.hardware import default_devices
    from repro.pointcloud import SceneGenerator
    from repro.runtime import InferenceEngine, ServingEngine

    if args.streams < 1:
        print(f"error: --streams must be >= 1, got {args.streams}",
              file=sys.stderr)
        return 2
    if args.frames < 1:
        print(f"error: --frames must be >= 1, got {args.frames}",
              file=sys.stderr)
        return 2
    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}",
              file=sys.stderr)
        return 2
    if args.queue_depth < 1:
        print(f"error: --queue-depth must be >= 1, got "
              f"{args.queue_depth}", file=sys.stderr)
        return 2
    if args.offered_load is not None and args.offered_load <= 0:
        print(f"error: --offered-load must be > 0 fps, got "
              f"{args.offered_load}", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print(f"error: --replicas must be >= 1, got {args.replicas}",
              file=sys.stderr)
        return 2
    presets = {"hck": hck_config, "lck": lck_config}

    def build_engine():
        model = _build_stream_model(args.model)
        if args.preset != "none":
            model = UPAQCompressor(presets[args.preset]()).compress(
                model, *model.example_inputs()).model
        return InferenceEngine(model, default_devices()[args.device],
                               deadline_s=args.deadline_ms / 1e3,
                               execution=args.execution,
                               batch_size=args.batch)

    # The process backend derives replica specs from one engine; the
    # thread backend needs a factory for replicas > 1 (each replica
    # attaches to its own model instance).  Compression is seeded, so
    # factory-built engines are identical.
    engine = build_engine() \
        if args.backend == "process" or args.replicas == 1 \
        else build_engine
    serving = ServingEngine(engine, replicas=args.replicas,
                            backend=args.backend,
                            max_streams=args.streams,
                            queue_depth=args.queue_depth)
    if args.backend == "process" and serving.backend != "process":
        print("warning: process backend unavailable on this platform; "
              "fell back to thread replicas", file=sys.stderr)
    streams = {}
    for index in range(args.streams):
        generator = SceneGenerator(seed=args.seed + index)
        streams[f"stream{index}"] = [
            generator.generate(frame, with_image=False)
            for frame in range(args.frames)]
    interval = 0.0 if args.offered_load is None \
        else 1.0 / args.offered_load
    start = time.perf_counter()
    reports = serving.serve(streams, interval_s=interval)
    elapsed = time.perf_counter() - start
    stats = serving.stats()
    per_stream = {}
    all_latencies = []
    for name, report in sorted(reports.items()):
        latencies = serving.service_latencies(name)
        all_latencies.extend(latencies)
        p50 = float(np.percentile(latencies, 50)) if latencies else 0.0
        p99 = float(np.percentile(latencies, 99)) if latencies else 0.0
        per_stream[name] = {
            "frames": report.num_frames,
            "ok": report.ok_frames,
            "service_p50_ms": p50 * 1e3,
            "service_p99_ms": p99 * 1e3,
        }
        print(f"{name}: {report.summary().splitlines()[0]}")
        print(f"{name}: wall service p50/p99 "
              f"{p50 * 1e3:.3f}/{p99 * 1e3:.3f} ms")
    serving.shutdown()
    total_frames = sum(r.num_frames for r in reports.values())
    throughput = total_frames / elapsed if elapsed > 0 else 0.0
    agg_p50 = float(np.percentile(all_latencies, 50)) \
        if all_latencies else 0.0
    agg_p99 = float(np.percentile(all_latencies, 99)) \
        if all_latencies else 0.0
    print(stats.summary())
    print(f"aggregate: {total_frames} frames in {elapsed:.3f}s "
          f"({throughput:.1f} fps), wall service p50/p99 "
          f"{agg_p50 * 1e3:.3f}/{agg_p99 * 1e3:.3f} ms")
    if args.report:
        payload = {
            "streams": args.streams,
            "frames_per_stream": args.frames,
            "offered_load_fps": args.offered_load,
            "batch": args.batch,
            "execution": args.execution,
            "backend": stats.backend,
            "backend_requested": args.backend,
            "replicas": stats.replicas,
            "aggregate": {
                "frames": total_frames,
                "elapsed_s": elapsed,
                "throughput_fps": throughput,
                "service_p50_ms": agg_p50 * 1e3,
                "service_p99_ms": agg_p99 * 1e3,
            },
            "per_stream": per_stream,
            "scheduler": {
                "windows": stats.windows,
                "cross_stream_windows": stats.cross_stream_windows,
                "batched_frames": stats.batched_frames,
                "frames_rejected": stats.frames_rejected,
                "frames_failed": stats.frames_failed,
                "failed_windows": stats.failed_windows,
                "window_holds": stats.window_holds,
                "deadline_dispatches": stats.deadline_dispatches,
                "window_timeouts": stats.window_timeouts,
                "pool_failures": stats.pool_failures,
                "windows_by_replica": stats.windows_by_replica,
                "windows_by_rung": stats.windows_by_rung,
            },
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"serving report → {args.report}")
    return 0


def _cmd_pack_archive(args) -> int:
    """Compress preset variants of one model into a variant archive."""
    from repro.core import ArchiveWriter, UPAQCompressor, pack_model
    from repro.fuzzing import build_preset_config
    from repro.ir import extract_ir

    variants = [part.strip() for part in args.variants.split(",")
                if part.strip()]
    if not variants:
        print("error: empty --variants list", file=sys.stderr)
        return 2
    writer = ArchiveWriter()
    for name in variants:
        try:
            preset = build_preset_config(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        model = _build_stream_model(args.model)
        if preset is None:
            ir = extract_ir(model, *model.example_inputs())
        else:
            outcome = UPAQCompressor(preset).compress(
                model, *model.example_inputs())
            model, ir = outcome.model, outcome.ir
        blob = pack_model(model, ir=ir)
        writer.add(name, blob, model=args.model, preset=name)
        print(f"  {name:12s} {len(blob) / 1024:8.1f} KiB packed")
    payload = writer.finish()
    with open(args.out, "wb") as handle:
        handle.write(payload)
    stats = writer.stats
    print(f"wrote {args.out}: {stats.entries} entries, "
          f"{stats.chunks_stored} chunks "
          f"({stats.shared_chunks} deduplicated), "
          f"{len(payload) / 1024:.1f} KiB on disk / "
          f"{stats.logical_bytes / 1024:.1f} KiB logical")
    return 0


def _open_archive(path):
    from repro.core import ArchiveError, ArchiveReader
    try:
        return ArchiveReader.open(path)
    except (OSError, ArchiveError) as error:
        print(f"error: cannot open archive {path}: {error}",
              file=sys.stderr)
        return None


def _cmd_archive_ls(args) -> int:
    reader = _open_archive(args.path)
    if reader is None:
        return 2
    print(f"{'name':16s} {'bytes':>10s} {'chunks':>7s}  meta")
    for entry in reader.entries:
        meta = " ".join(f"{key}={value}"
                        for key, value in sorted(entry.meta.items()))
        print(f"{entry.name:16s} {entry.length:10d} "
              f"{len(entry.chunks):7d}  {meta}")
    print(reader.summary())
    return 0


def _cmd_archive_verify(args) -> int:
    from repro.core import ArchiveError
    reader = _open_archive(args.path)
    if reader is None:
        return 2
    try:
        reader.verify()
    except ArchiveError as error:
        print(f"CORRUPT: {error}", file=sys.stderr)
        salvage = reader.salvage()
        for name in salvage.intact:
            print(f"  intact  {name}")
        for name, reason in salvage.corrupt.items():
            print(f"  corrupt {name}: {reason}")
        return 1
    print(f"OK: {reader.summary()}")
    return 0


def _cmd_ir_dump(args) -> int:
    """Print a model's extracted IR (nodes, edges, annotations) as JSON."""
    import json

    from repro.ir import extract_ir
    from repro.models import build_model

    model = build_model(args.model)
    if args.preset != "none":
        from repro.core import UPAQCompressor, hck_config, lck_config
        presets = {"hck": hck_config, "lck": lck_config}
        report = UPAQCompressor(presets[args.preset]()).compress(
            model, *model.example_inputs())
        ir = report.ir
    else:
        ir = extract_ir(model, *model.example_inputs())
    indent = None if args.compact else 2
    print(json.dumps(ir.to_json(), indent=indent, sort_keys=True))
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.core import analyze_sensitivity, suggest_bit_allocation
    from repro.models import build_model
    model = build_model(args.model)
    profile = analyze_sensitivity(model, *model.example_inputs(),
                                  quant_bits=(4, 8, 16))
    allocation = suggest_bit_allocation(profile, args.budget)
    print(f"{'layer':42s} {'err@4b':>8s} {'err@8b':>8s} {'suggested':>9s}")
    for entry in profile.layers:
        print(f"{entry.layer:42s} "
              f"{entry.output_error_by_bits[4]:8.4f} "
              f"{entry.output_error_by_bits[8]:8.4f} "
              f"{allocation[entry.layer]:6d}bit")
    return 0


def _parse_axis(value, default, known, label):
    """CSV axis flag: ``all`` → every known name, None → the default."""
    if value is None:
        return tuple(default)
    if value == "all":
        return tuple(known)
    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise SystemExit(f"error: empty --{label} list")
    return names


def _cmd_fuzz(args) -> int:
    import json

    from repro.fuzzing import (CONDITIONS, DEFAULT_CONDITIONS,
                               DEFAULT_PRESETS, DEFAULT_SCENARIOS,
                               FuzzConfig, GateThresholds, check_gate,
                               load_baseline, run_fuzz, write_baseline,
                               write_report)
    from repro.fuzzing import preset_names as all_presets
    from repro.pointcloud import scenario_names

    if args.list:
        print("scenarios: " + ", ".join(scenario_names()))
        print("presets:   " + ", ".join(all_presets()))
        print("conditions:" + "".join(f"\n  {c.name:10s} {c.description}"
                                      for c in CONDITIONS.values()))
        return 0

    try:
        config = FuzzConfig(
            scenarios=_parse_axis(args.scenarios, DEFAULT_SCENARIOS,
                                  scenario_names(), "scenarios"),
            presets=_parse_axis(args.presets, DEFAULT_PRESETS,
                                all_presets(), "presets"),
            conditions=_parse_axis(args.conditions, DEFAULT_CONDITIONS,
                                   tuple(CONDITIONS), "conditions"),
            frames_per_cell=args.frames, seed=args.seed, model=args.model,
            execution=args.execution)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"sweeping {config.num_cells} cells "
          f"({len(config.scenarios)} scenarios x {len(config.presets)} "
          f"presets x {len(config.conditions)} conditions, "
          f"{config.frames_per_cell} frames/cell, seed {config.seed})")

    def progress(key, metrics):
        map_text = "n/a" if math.isnan(metrics["mAP"]) \
            else f"{metrics['mAP']:5.1f}"
        print(f"  {key:48s} mAP {map_text}  "
              f"p99 {metrics['p99_ms']:7.3f} ms  "
              f"hit {metrics['deadline_hit_rate']:.2f}  "
              f"({metrics['ok_frames']} ok/"
              f"{metrics['degraded_frames']} degraded/"
              f"{metrics['dropped_frames']} dropped)")

    report = run_fuzz(config, progress=progress)
    if args.out:
        write_report(report, args.out)
        print(f"wrote sweep report to {args.out}")

    if args.write_baseline:
        write_baseline(report, args.baseline)
        print(f"wrote baseline ({len(report.cells)} cells) "
              f"to {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"error: no baseline at {args.baseline}; run with "
              "--write-baseline to create one", file=sys.stderr)
        return 2
    thresholds = GateThresholds(map_drop=args.map_drop,
                                p99_rise_frac=args.p99_rise,
                                hit_rate_drop=args.hit_rate_drop)
    try:
        gate = check_gate(report, baseline, thresholds)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.gate_report:
        with open(args.gate_report, "w") as handle:
            json.dump(gate.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote gate report to {args.gate_report}")
    print(gate.summary())
    for failure in gate.failures:
        print(f"  FAIL {failure['cell']}: {failure['metric']} "
              f"{failure['baseline']} -> {failure['current']} "
              f"({failure['kind']}, allowed {failure['allowed']})")
    for key in gate.new_cells:
        print(f"  NEW  {key}: not in baseline (refresh with "
              "--write-baseline to bless)")
    return 0 if gate.passed else 1


def _cmd_query(args) -> int:
    import json

    from repro.fuzzing import QueryError, load_report, parse_query
    try:
        predicate = parse_query(args.expr)
    except QueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = load_report(args.report)
    except FileNotFoundError:
        print(f"error: no sweep report at {args.report}; produce one "
              "with `repro fuzz --out`", file=sys.stderr)
        return 2
    matches = predicate.filter(report.rows)
    if args.count:
        print(len(matches))
        return 0
    for row in matches:
        safe = {key: (None if isinstance(value, float)
                      and math.isnan(value) else value)
                for key, value in row.items()}
        print(json.dumps(safe, sort_keys=True))
    print(f"{len(matches)} of {len(report.rows)} rows matched",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UPAQ reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic KITTI dataset")
    p.add_argument("--frames", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("train", help="pretrain a detector (cached)")
    p.add_argument("--model", default="pointpillars",
                   choices=["pointpillars", "smoke"])
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fresh", action="store_true",
                   help="ignore the artifact cache")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("compress", help="compress a pretrained detector")
    p.add_argument("--model", default="pointpillars",
                   choices=["pointpillars", "smoke"])
    p.add_argument("--preset", default="hck", choices=["hck", "lck"])
    p.add_argument("--steps", type=int, default=300,
                   help="pretraining steps of the base checkpoint")
    p.add_argument("--out", default=None,
                   help="write the packed compressed model here")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel workers for the candidate search "
                        "(results are identical for any worker count)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "serial", "thread", "process"],
                   help="worker pool backend for the candidate search")
    p.add_argument("--verbose-search", action="store_true",
                   help="print per-layer search timings and cache hits")
    p.add_argument("--journal", default=None,
                   help="JSONL checkpoint journal; an interrupted search "
                        "resumes from it instead of starting over")
    p.add_argument("--retries", type=int, default=0,
                   help="retry budget per search task (flaky workers)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-task deadline in seconds on pooled backends")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("evaluate", help="stratified mAP of a checkpoint")
    p.add_argument("--model", default="pointpillars",
                   choices=["pointpillars", "smoke"])
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--frames", type=int, default=8)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2 + Figs 4/5")
    p.add_argument("--model", default="pointpillars",
                   choices=["pointpillars", "smoke"])
    p.add_argument("--scale", default="quick", choices=["quick", "full"])
    p.add_argument("--workers", type=int, default=1,
                   help="parallel workers for the UPAQ candidate search")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("report",
                       help="run every experiment, write results/ dir")
    p.add_argument("--out", default="results")
    p.add_argument("--scale", default="quick", choices=["quick", "full"])
    p.add_argument("--skip-smoke", action="store_true")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel workers for the UPAQ candidate search")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("stream",
                       help="stream scenes through a deployment engine "
                            "with optional fault injection")
    p.add_argument("--model", default="pointpillars")
    p.add_argument("--frames", type=int, default=12)
    p.add_argument("--seed", type=int, default=0,
                   help="scene generator seed")
    p.add_argument("--preset", default="none",
                   choices=["none", "hck", "lck"],
                   help="compress the streamed model with this preset")
    p.add_argument("--deadline-ms", type=float, default=50.0)
    p.add_argument("--device", default="jetson",
                   choices=["jetson", "rtx4080"])
    p.add_argument("--inject-faults", action="store_true",
                   help="enable the seeded chaos injector")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--drop-rate", type=float, default=0.1)
    p.add_argument("--corrupt-rate", type=float, default=0.05)
    p.add_argument("--jitter-ms", type=float, default=0.0,
                   help="lognormal latency jitter scale")
    p.add_argument("--on-corrupt", default="last_good",
                   choices=["last_good", "skip"],
                   help="degradation policy for corrupt frames")
    p.add_argument("--miss-limit", type=int, default=3,
                   help="consecutive deadline misses arming the watchdog "
                        "(0 disables)")
    p.add_argument("--fallback-model", default="none",
                   choices=["none", "hck", "lck"],
                   help="preset compressed as the watchdog fallback")
    p.add_argument("--execution", default="reference",
                   choices=["reference", "lowered", "lowered-sparse"],
                   help="run quantized layers on float64 fake-quant "
                        "reference executors, int64 lowered kernels, or "
                        "occupancy-windowed lowered kernels that skip "
                        "verified all-zero columns (all bit-for-bit "
                        "identical outputs)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record per-frame per-layer cost attributions "
                        "and export them as a JSON trace (see "
                        "docs/OBSERVABILITY.md)")
    p.add_argument("--telemetry", action="store_true",
                   help="attach per-layer executor counters (MACs, "
                        "skipped columns, saturation, accumulator "
                        "headroom); the summary gains a digest line")
    p.add_argument("--batch", type=int, default=1, metavar="N",
                   help="micro-batching window: run up to N valid "
                        "in-flight frames as one batched lowered pass "
                        "(byte-identical to per-frame execution; "
                        "see docs/PERFORMANCE.md)")
    p.add_argument("--archive", default=None, metavar="PATH",
                   help="model-variant archive (see `repro "
                        "pack-archive`); the stream runs a degradation "
                        "ladder of its entries instead of a single "
                        "model")
    p.add_argument("--ladder", default=None, metavar="RUNGS",
                   help="CSV of archive entry names ordering the "
                        "ladder, primary first (default: every entry "
                        "in pack order)")
    p.add_argument("--promote-after", type=int, default=5, metavar="N",
                   help="consecutive on-deadline frames before the "
                        "ladder promotes one rung back up (0 disables "
                        "promotion)")
    p.add_argument("--probation", type=int, default=3, metavar="N",
                   help="frames after a promotion during which a "
                        "single miss demotes immediately")
    p.add_argument("--swap-report", default=None, metavar="PATH",
                   help="write the swap events, per-frame rung "
                        "attribution and residency as JSON")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("serve",
                       help="serve N concurrent synthetic client "
                            "streams through a ServingEngine with "
                            "cross-stream micro-batching (see "
                            "docs/SERVING.md)")
    p.add_argument("--streams", type=int, default=4,
                   help="number of concurrent client streams")
    p.add_argument("--frames", type=int, default=8,
                   help="frames per stream")
    p.add_argument("--offered-load", type=float, default=None,
                   metavar="FPS",
                   help="per-stream submission rate in frames/s "
                        "(default: submit as fast as possible)")
    p.add_argument("--model", default="tiny")
    p.add_argument("--preset", default="hck",
                   choices=["none", "hck", "lck"],
                   help="compress the served model with this preset")
    p.add_argument("--execution", default="lowered",
                   choices=["reference", "lowered", "lowered-sparse"])
    p.add_argument("--batch", type=int, default=4, metavar="N",
                   help="micro-batch window size filled across streams")
    p.add_argument("--deadline-ms", type=float, default=50.0)
    p.add_argument("--device", default="jetson",
                   choices=["jetson", "rtx4080"])
    p.add_argument("--queue-depth", type=int, default=8,
                   help="per-stream pipeline bound (backpressure past "
                        "this many queued + in-flight frames)")
    p.add_argument("--backend", default="thread",
                   choices=["thread", "process"],
                   help="window-execution backend: in-process threads "
                        "or a pool of replica worker processes "
                        "(GIL-free; falls back to threads when no "
                        "multiprocessing start method is usable)")
    p.add_argument("--replicas", type=int, default=1, metavar="K",
                   help="replica pool size — windows that may execute "
                        "concurrently")
    p.add_argument("--seed", type=int, default=0,
                   help="scene generator base seed (stream i uses "
                        "seed + i)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write per-stream and aggregate p50/p99 wall "
                        "service latency + throughput as JSON")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("pack-archive",
                       help="compress preset variants into one "
                            "checksummed model-variant archive")
    p.add_argument("--model", default="tiny",
                   choices=["tiny", "pointpillars", "smoke"])
    p.add_argument("--variants",
                   default="lck-16bit,lck-8bit,hck-8bit,hck-4bit",
                   help="CSV of fuzz-preset names to pack (identical "
                        "packed layers across variants are stored "
                        "once)")
    p.add_argument("--out", required=True,
                   help="write the archive here")
    p.set_defaults(func=_cmd_pack_archive)

    p = sub.add_parser("archive",
                       help="inspect a model-variant archive")
    archive_sub = p.add_subparsers(dest="archive_command", required=True)
    p = archive_sub.add_parser("ls", help="list entries and dedup stats")
    p.add_argument("path", help="archive file")
    p.set_defaults(func=_cmd_archive_ls)
    p = archive_sub.add_parser(
        "verify", help="strict integrity check (trailer + every entry); "
                       "on corruption, prints what salvage would keep")
    p.add_argument("path", help="archive file")
    p.set_defaults(func=_cmd_archive_verify)

    p = sub.add_parser("ir", help="inspect the layer-level model IR")
    ir_sub = p.add_subparsers(dest="ir_command", required=True)
    p = ir_sub.add_parser("dump",
                          help="print the extracted ModelIR as JSON")
    p.add_argument("model", choices=["pointpillars", "smoke"],
                   help="model to extract")
    p.add_argument("--preset", default="none",
                   choices=["none", "hck", "lck"],
                   help="compress with this preset first, so the dump "
                        "shows compression annotations")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON instead of indented")
    p.set_defaults(func=_cmd_ir_dump)

    p = sub.add_parser(
        "fuzz", help="scenario-matrix fuzz sweep with regression gating")
    p.add_argument("--scenarios", default=None,
                   help="CSV of scenario families, or 'all' "
                        "(default: all families)")
    p.add_argument("--presets", default=None,
                   help="CSV of compression presets, or 'all' "
                        "(default: hck,lck,hck-4bit,lck-16bit)")
    p.add_argument("--conditions", default=None,
                   help="CSV of runtime conditions, or 'all' "
                        "(default: clean,faulty,pressure)")
    p.add_argument("--frames", type=int, default=3,
                   help="frames streamed per cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--model", default="tiny",
                   choices=["tiny", "pointpillars"])
    p.add_argument("--execution", default="reference",
                   choices=["reference", "lowered", "lowered-sparse"])
    p.add_argument("--baseline", default="artifacts/fuzz_baseline.json",
                   help="committed baseline to gate against")
    p.add_argument("--out", default=None,
                   help="write the full sweep report (cells + rows) here")
    p.add_argument("--gate-report", default=None,
                   help="write the machine-readable gate verdict here")
    p.add_argument("--write-baseline", action="store_true",
                   help="bless this sweep as the new baseline (no gating)")
    p.add_argument("--map-drop", type=float, default=3.0,
                   help="allowed absolute mAP drop in points")
    p.add_argument("--p99-rise", type=float, default=0.25,
                   help="allowed relative p99 latency rise")
    p.add_argument("--hit-rate-drop", type=float, default=0.15,
                   help="allowed absolute deadline-hit-rate drop")
    p.add_argument("--list", action="store_true",
                   help="list scenario/preset/condition names and exit")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "query", help="filter saved fuzz-sweep rows with a query expression")
    p.add_argument("expr",
                   help="e.g. \"status = degraded and latency_ms > 30\"")
    p.add_argument("--report", required=True,
                   help="sweep report written by `repro fuzz --out`")
    p.add_argument("--count", action="store_true",
                   help="print only the number of matching rows")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("sensitivity",
                       help="per-layer quantization sensitivity")
    p.add_argument("--model", default="pointpillars")
    p.add_argument("--budget", type=float, default=0.05,
                   help="max tolerated relative output error")
    p.set_defaults(func=_cmd_sensitivity)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
