"""``repro.camera`` — pinhole projection and synthetic image rendering.

Substitute for KITTI's calibrated RGB camera: provides the camera model
used by the SMOKE detector's 2D→3D uplifting and a painter's renderer
that turns synthetic scenes into images.
"""

from .projection import (CameraModel, box_fully_visible, project_box,
                         project_points)
from .render import CLASS_ALBEDO, render_scene

__all__ = [
    "CameraModel", "project_points", "project_box", "box_fully_visible",
    "render_scene", "CLASS_ALBEDO",
]
