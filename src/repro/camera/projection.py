"""Pinhole camera model and 3D→2D projection.

Stands in for KITTI's calibrated color camera.  The camera sits at the
LiDAR origin looking down +x (the driving direction); camera coordinates
follow the usual convention (u right, v down, optical axis forward).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.boxes import Box3D

__all__ = ["CameraModel", "project_points", "project_box", "box_fully_visible"]


@dataclass
class CameraModel:
    """Intrinsics + mounting pose of the synthetic camera."""

    width: int = 128
    height: int = 40
    focal: float = 72.0
    cx: float | None = None
    cy: float | None = None
    mount_height: float = 1.65   # meters above ground

    @staticmethod
    def kitti_like(width: int = 128, height: int = 40) -> "CameraModel":
        """A small camera with KITTI's wide aspect ratio (~1242x375)."""
        return CameraModel(width=width, height=height,
                           focal=width * 0.58)

    def intrinsics(self) -> np.ndarray:
        cx = self.cx if self.cx is not None else self.width / 2
        cy = self.cy if self.cy is not None else self.height / 2
        return np.array([[self.focal, 0, cx],
                         [0, self.focal, cy],
                         [0, 0, 1.0]])


def _world_to_camera(points: np.ndarray, camera: CameraModel) -> np.ndarray:
    """LiDAR/ground coords (x fwd, y left, z up) → camera coords."""
    cam = np.empty_like(np.asarray(points, dtype=np.float64))
    cam[:, 0] = -points[:, 1]                       # u axis: right
    cam[:, 1] = camera.mount_height - points[:, 2]  # v axis: down
    cam[:, 2] = points[:, 0]                        # depth: forward
    return cam


def project_points(points: np.ndarray,
                   camera: CameraModel) -> tuple[np.ndarray, np.ndarray]:
    """Project (N, 3) world points; returns (pixels (N,2), depth (N,))."""
    cam = _world_to_camera(points, camera)
    depth = cam[:, 2]
    k = camera.intrinsics()
    with np.errstate(divide="ignore", invalid="ignore"):
        u = k[0, 0] * cam[:, 0] / depth + k[0, 2]
        v = k[1, 1] * cam[:, 1] / depth + k[1, 2]
    return np.stack([u, v], axis=1), depth


def project_box(box: Box3D, camera: CameraModel) -> np.ndarray | None:
    """Axis-aligned 2D bbox [u_min v_min u_max v_max] of a 3D box.

    Returns None when the box is entirely behind the camera.
    """
    pixels, depth = project_points(box.corners(), camera)
    visible = depth > 0.5
    if not visible.any():
        return None
    pixels = pixels[visible]
    return np.array([pixels[:, 0].min(), pixels[:, 1].min(),
                     pixels[:, 0].max(), pixels[:, 1].max()])


def box_fully_visible(box: Box3D, camera: CameraModel) -> bool:
    """True when the whole projected box lies inside the image."""
    bbox = project_box(box, camera)
    if bbox is None:
        return False
    return (bbox[0] >= 0 and bbox[1] >= 0
            and bbox[2] < camera.width and bbox[3] < camera.height)
