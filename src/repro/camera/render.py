"""Synthetic camera image rendering.

Produces a depth-ordered painter's rendering of a scene: sky gradient,
road plane, then object boxes as projected shaded quads with per-class
albedo and distance shading.  The output (3, H, W) float32 image carries
enough structure — silhouettes at the right image position and scale —
for a keypoint-style monocular detector (SMOKE) to learn from.
"""

from __future__ import annotations

import numpy as np

from repro.pointcloud.boxes import Box3D

from .projection import CameraModel, project_box, project_points

__all__ = ["render_scene", "CLASS_ALBEDO"]

CLASS_ALBEDO = {
    "Car": np.array([0.25, 0.3, 0.75]),
    "Pedestrian": np.array([0.75, 0.35, 0.25]),
    "Cyclist": np.array([0.3, 0.7, 0.3]),
}


def _paint_background(camera: CameraModel,
                      rng: np.random.Generator) -> np.ndarray:
    h, w = camera.height, camera.width
    image = np.zeros((3, h, w), dtype=np.float32)
    horizon = int(h * 0.45)
    # Sky: vertical gradient.
    sky = np.linspace(0.9, 0.6, max(horizon, 1))[:, None]
    image[2, :horizon, :] = sky
    image[1, :horizon, :] = sky * 0.8
    image[0, :horizon, :] = sky * 0.6
    # Road: darker gradient with mild texture noise.
    road_rows = h - horizon
    road = np.linspace(0.35, 0.55, max(road_rows, 1))[:, None]
    road = road + rng.normal(0, 0.01, size=(road_rows, w))
    image[:, horizon:, :] = road[None].astype(np.float32)
    return image


def render_scene(camera: CameraModel, boxes: list[Box3D],
                 rng: np.random.Generator | None = None) -> np.ndarray:
    """Render boxes onto a synthetic road image, far-to-near."""
    rng = rng or np.random.default_rng(0)
    image = _paint_background(camera, rng)
    h, w = camera.height, camera.width

    order = np.argsort([-b.x for b in boxes])  # paint distant boxes first
    for idx in order:
        box = boxes[idx]
        bbox = project_box(box, camera)
        if bbox is None:
            continue
        u0 = int(np.clip(np.floor(bbox[0]), 0, w))
        v0 = int(np.clip(np.floor(bbox[1]), 0, h))
        u1 = int(np.clip(np.ceil(bbox[2]), 0, w))
        v1 = int(np.clip(np.ceil(bbox[3]), 0, h))
        if u1 <= u0 or v1 <= v0:
            continue
        albedo = CLASS_ALBEDO.get(box.label, np.array([0.5, 0.5, 0.5]))
        # Shade by distance; closer objects are brighter and more textured.
        shade = float(np.clip(1.2 - box.x / 60.0, 0.3, 1.0))
        patch = albedo[:, None, None] * shade
        texture = rng.normal(0, 0.02, size=(1, v1 - v0, u1 - u0))
        image[:, v0:v1, u0:u1] = np.clip(patch + texture, 0.0, 1.0)
        # A brighter roofline helps the keypoint head localize box tops.
        roof_v = max(v0, v1 - max((v1 - v0) // 4, 1))
        image[:, v0:roof_v, u0:u1] *= 0.85
        # Mark the projected 3D center with a small highlight.
        center_px, depth = project_points(box.center[None], camera)
        if depth[0] > 0.5:
            cu = int(np.clip(center_px[0, 0], 0, w - 1))
            cv = int(np.clip(center_px[0, 1], 0, h - 1))
            image[:, max(cv - 1, 0):cv + 1, max(cu - 1, 0):cu + 1] = \
                np.clip(patch * 1.4, 0, 1)
    return image.astype(np.float32)
