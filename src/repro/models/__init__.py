"""``repro.models`` — the 3D object detectors evaluated in the paper.

PointPillars (LiDAR, pillar pseudo-images) and SMOKE (monocular camera,
keypoint uplifting) are the two compression targets; SECOND, Focals Conv
and VSC complete the Table 1 size/latency comparison.
"""

from .base import Detector3D
from .focalsconv import FocalsConv
from .monoflex import MonoFlex
from .pointpillars import PointPillars
from .registry import MODEL_REGISTRY, available_models, build_model
from .second import SECOND
from .smoke import SMOKE
from .vsc import VSC

__all__ = [
    "Detector3D", "PointPillars", "SMOKE", "SECOND", "FocalsConv", "VSC",
    "MonoFlex",
    "MODEL_REGISTRY", "build_model", "available_models",
]
