"""Model registry: build any paper model by name."""

from __future__ import annotations

from .base import Detector3D
from .focalsconv import FocalsConv
from .monoflex import MonoFlex
from .pointpillars import PointPillars
from .second import SECOND
from .smoke import SMOKE
from .vsc import VSC

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

MODEL_REGISTRY = {
    "pointpillars": PointPillars,
    "smoke": SMOKE,
    "monoflex": MonoFlex,
    "second": SECOND,
    "focalsconv": FocalsConv,
    "vsc": VSC,
}


def available_models() -> list[str]:
    return sorted(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Detector3D:
    """Instantiate a registered detector by (case-insensitive) name."""
    key = name.lower().replace(" ", "").replace("-", "")
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; "
                       f"available: {available_models()}")
    return MODEL_REGISTRY[key](**kwargs)
