"""VSC-lite: virtual sparse convolution variant.

VSC densifies sparse point regions with *virtual points* before
convolution.  The dense-simulated version emulates this with a virtual-
point synthesis stack: the voxelized input is upsampled 2×, refined by
convolutions that hallucinate intermediate structure, pooled back, and
concatenated with the original features.  It is the largest and slowest
model in Table 1, which the wide channel configuration preserves.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.pointcloud.voxelize import VoxelConfig

from .second import SECOND

__all__ = ["VSC"]


class VSC(SECOND):
    """SECOND with a virtual-point synthesis front end and wide stages."""

    name = "VSC"

    def __init__(self, voxel_config: VoxelConfig | None = None,
                 middle_channels: int = 44,
                 stage_channels: tuple = (84, 160, 288),
                 upsample_channels: int = 64,
                 score_threshold: float = 0.3, seed: int = 0):
        super().__init__(voxel_config=voxel_config,
                         middle_channels=middle_channels,
                         stage_channels=stage_channels,
                         upsample_channels=upsample_channels,
                         score_threshold=score_threshold, seed=seed)
        rng = np.random.default_rng(seed + 2)
        self.virtual_synth = nn.Sequential(
            nn.ConvBNReLU(middle_channels, middle_channels, 3, rng=rng),
            nn.ConvBNReLU(middle_channels, middle_channels, 3, rng=rng),
        )
        self.virtual_merge = nn.ConvBNReLU(middle_channels * 2,
                                           middle_channels, 1, rng=rng)

    def forward(self, bev: Tensor) -> dict:
        features = self.middle(bev)
        # Virtual points: upsample, refine, pool back to the native grid.
        virtual = F.upsample_nearest2d(features, 2)
        virtual = self.virtual_synth(virtual)
        virtual = F.avg_pool2d(virtual, 2)
        merged = self.virtual_merge(
            Tensor.concatenate([features, virtual], axis=1))
        return self.head(self.backbone(merged))
