"""MonoFlex-lite: flexible monocular 3D detection (Zhang et al., the
UPAQ paper's [15]).

MonoFlex's core idea beyond SMOKE is *flexible depth*: instead of a
single regressed depth, each object combines a directly-regressed depth
with a geometric depth recovered from the projected object height
(``depth ≈ f·H/h``), weighted by learned per-branch uncertainties.  The
lite version shares SMOKE's DLA backbone and keypoint formulation and
adds the two-branch depth head + uncertainty-weighted ensemble decode —
enough structure for UPAQ to compress a second, differently-shaped
camera model.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.camera import CameraModel, project_points
from repro.nn import Tensor
from repro.pointcloud.boxes import Box3D
from repro.pointcloud.scenes import Scene

from .smoke.model import SMOKE, _STRIDE

__all__ = ["MonoFlex"]

#: extra regression channels: geometric pixel-height code + two
#: log-uncertainties (direct depth, geometric depth)
_EXTRA_REG = 3


class MonoFlex(SMOKE):
    """SMOKE + flexible two-branch depth estimation."""

    name = "MonoFlex"

    def __init__(self, camera: CameraModel | None = None,
                 base_channels: int = 72, head_channels: int = 120,
                 stage_depths: tuple = (2, 2, 2),
                 score_threshold: float = 0.3, max_objects: int = 20,
                 seed: int = 0):
        super().__init__(camera=camera, base_channels=base_channels,
                         head_channels=head_channels,
                         stage_depths=stage_depths,
                         score_threshold=score_threshold,
                         max_objects=max_objects, seed=seed)
        rng = np.random.default_rng(seed + 5)
        self.depth_branch = nn.Sequential(
            nn.ConvBNReLU(self.backbone.out_channels, head_channels // 2,
                          3, rng=rng),
            nn.Conv2d(head_channels // 2, _EXTRA_REG, 1, rng=rng),
        )

    def forward(self, image: Tensor) -> dict:
        features = self.backbone(image)
        outputs = self.head(features)
        outputs["flex"] = self.depth_branch(features)
        return outputs

    # ------------------------------------------------------------------
    def _flex_targets(self, scene: Scene) -> tuple[np.ndarray, np.ndarray]:
        """Per-keypoint geometric-height codes (+ mask)."""
        fh = self.camera.height // _STRIDE
        fw = self.camera.width // _STRIDE
        flex = np.zeros((_EXTRA_REG, fh, fw), dtype=np.float32)
        mask = np.zeros((fh, fw), dtype=np.float32)
        for box in scene.boxes:
            pixel, depth = project_points(box.center[None], self.camera)
            if depth[0] <= 0.5:
                continue
            col, row = int(pixel[0, 0] / _STRIDE), int(pixel[0, 1] / _STRIDE)
            if not (0 <= col < fw and 0 <= row < fh):
                continue
            pixel_height = self.camera.focal * box.dz / depth[0]
            flex[0, row, col] = np.log(max(pixel_height, 1.0)
                                       / self.camera.height)
            mask[row, col] = 1.0
        return flex, mask

    def loss(self, outputs: dict, scene: Scene) -> Tensor:
        base = super().loss(outputs, scene)
        flex_target, mask = self._flex_targets(scene)
        flex_pred = outputs["flex"].reshape(*flex_target.shape)
        weights = np.zeros_like(flex_target)
        weights[0] = mask                       # supervise the height code
        flex_loss = nn.losses.smooth_l1_loss(
            flex_pred, Tensor(flex_target), beta=0.2,
            weights=Tensor(weights))
        return base + flex_loss

    # ------------------------------------------------------------------
    def _decode(self, heat: np.ndarray, reg: np.ndarray,
                flex: np.ndarray | None = None) -> list[Box3D]:
        if flex is None:
            return super()._decode(heat, reg)
        boxes = super()._decode(heat, reg)
        # Re-estimate each box's depth with the uncertainty-weighted
        # ensemble of direct and geometric depth.
        num_classes, fh, fw = heat.shape
        refined: list[Box3D] = []
        for box in boxes:
            # Recover the keypoint cell from the box's projection.
            pixel, depth = project_points(box.center[None], self.camera)
            col = int(np.clip(pixel[0, 0] / _STRIDE, 0, fw - 1))
            row = int(np.clip(pixel[0, 1] / _STRIDE, 0, fh - 1))
            direct_depth = box.x
            height_code = flex[0, row, col]
            pixel_height = np.exp(np.clip(height_code, -4, 2)) \
                * self.camera.height
            geometric_depth = float(np.clip(
                self.camera.focal * box.dz / max(pixel_height, 1e-3),
                1.0, 80.0))
            log_var_direct = float(np.clip(flex[1, row, col], -4, 4))
            log_var_geo = float(np.clip(flex[2, row, col], -4, 4))
            w_direct = np.exp(-log_var_direct)
            w_geo = np.exp(-log_var_geo)
            fused = (direct_depth * w_direct + geometric_depth * w_geo) \
                / (w_direct + w_geo)
            scale = fused / max(direct_depth, 1e-6)
            refined.append(Box3D(
                x=float(fused), y=float(box.y * scale), z=box.z,
                dx=box.dx, dy=box.dy, dz=box.dz, yaw=box.yaw,
                label=box.label, score=box.score))
        return refined

    def predict(self, scene: Scene):
        from repro.detection import DetectionResult
        self.eval()
        with nn.no_grad():
            outputs = self.forward(*self.preprocess(scene))
        heat = 1.0 / (1.0 + np.exp(-outputs["heatmap"].data[0]))
        boxes = self._decode(heat, outputs["reg"].data[0],
                             outputs["flex"].data[0])
        return DetectionResult(boxes=boxes, frame_id=scene.frame_id)
