"""Pillar Feature Network: the 1×1-conv point encoder of PointPillars.

Each pillar's points (9-dim augmented features) pass through a shared
1×1 convolution + BatchNorm + ReLU, then a masked max over the points
yields one feature vector per pillar.  The 1×1 convolutions here are the
layers UPAQ's Algorithm 5 (1×1→k×k transformation) exists for: fixing
their weights during quantization damages early-layer accuracy, which is
the motivation given in the paper.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.pointcloud.voxelize import Pillars

__all__ = ["PillarFeatureNet"]


class PillarFeatureNet(nn.Module):
    """(P, N, 9) pillars → (P, C) pillar features."""

    def __init__(self, in_features: int = 9, out_channels: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_channels = out_channels
        self.conv = nn.Conv2d(in_features, out_channels, kernel_size=1,
                              bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, features: Tensor, mask: Tensor) -> Tensor:
        # (P, N, F) → (1, F, P, N) so the shared point encoder is a true
        # 1×1 convolution over the pillar/point grid.
        p, n, f = features.shape
        x = features.transpose(2, 0, 1).reshape(1, f, p, n)
        x = self.bn(self.conv(x)).relu()
        # Masked max over points: empty slots contribute -inf.
        mask_4d = mask.reshape(1, 1, p, n)
        neg_inf = (1.0 - mask_4d) * (-1e4)
        x = x * mask_4d + neg_inf
        pooled = x.max(axis=3)                    # (1, C, P)
        return pooled.reshape(self.out_channels, p).transpose(1, 0)

    def encode_pillars(self, pillars: Pillars) -> tuple[Tensor, Tensor]:
        """Wrap numpy pillar tensors for the forward pass."""
        return Tensor(pillars.features), Tensor(pillars.mask)
