"""SSD detection head: per-anchor objectness and box residuals."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor

__all__ = ["SSDHead"]


class SSDHead(nn.Module):
    """1×1-conv head producing (A, H, W) scores and (A*7, H, W) deltas."""

    BOX_DIM = 7

    def __init__(self, in_channels: int, anchors_per_cell: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.anchors_per_cell = anchors_per_cell
        self.cls_head = nn.Conv2d(in_channels, anchors_per_cell, 1, rng=rng)
        self.reg_head = nn.Conv2d(in_channels,
                                  anchors_per_cell * self.BOX_DIM, 1, rng=rng)

    def forward(self, features: Tensor) -> dict:
        return {"cls": self.cls_head(features),
                "reg": self.reg_head(features)}

    def flatten_outputs(self, outputs: dict) -> tuple[Tensor, Tensor]:
        """Reshape head maps to anchor-major (A_total,) / (A_total, 7).

        Ordering matches :class:`repro.detection.anchors.AnchorGrid`:
        cell-major (row, col) then anchor-within-cell.
        """
        cls = outputs["cls"]
        reg = outputs["reg"]
        _, a, h, w = cls.shape
        cls_flat = cls.transpose(0, 2, 3, 1).reshape(h * w * a)
        reg_flat = reg.reshape(1, a, self.BOX_DIM, h, w) \
            .transpose(0, 3, 4, 1, 2).reshape(h * w * a, self.BOX_DIM)
        return cls_flat, reg_flat
