"""The full PointPillars detector.

A reduced-width but architecturally faithful PointPillars: pillar
encoding → Pillar Feature Network (1×1 convs) → scatter to BEV canvas →
2D CNN backbone with upsample fusion → SSD anchor head, trained with
focal + smooth-L1 losses and decoded with rotated NMS.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.detection import (AnchorConfig, AnchorGrid, DetectionResult,
                             assign_targets, decode_boxes, nms_bev)
from repro.nn import Tensor
from repro.nn import functional as F
from repro.pointcloud.boxes import array_to_boxes
from repro.pointcloud.scenes import Scene
from repro.pointcloud.voxelize import PillarConfig, PillarEncoder

from ..base import Detector3D
from .backbone import PointPillarsBackbone
from .head import SSDHead

__all__ = ["PointPillars"]


class PointPillars(Detector3D):
    """LiDAR 3D detector over pillar pseudo-images."""

    name = "PointPillars"

    def __init__(self, pillar_config: PillarConfig | None = None,
                 pfn_channels: int = 32,
                 stage_channels: tuple = (32, 64, 128),
                 stage_depths: tuple = (2, 2, 2),
                 upsample_channels: int = 32,
                 score_threshold: float = 0.3,
                 nms_iou: float = 0.3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.pillar_config = pillar_config or PillarConfig()
        self.encoder = PillarEncoder(self.pillar_config)
        self.score_threshold = score_threshold
        self.nms_iou = nms_iou

        from .pfn import PillarFeatureNet
        self.pfn = PillarFeatureNet(out_channels=pfn_channels, rng=rng)
        self.backbone = PointPillarsBackbone(
            in_channels=pfn_channels, stage_channels=stage_channels,
            stage_depths=stage_depths, upsample_channels=upsample_channels,
            rng=rng)

        self.anchor_config = AnchorConfig()
        ny, nx = self.pillar_config.grid_shape
        self.feature_shape = (ny // 2, nx // 2)   # backbone runs at H/2
        self.anchor_grid = AnchorGrid(
            self.anchor_config,
            x_range=self.pillar_config.x_range,
            y_range=self.pillar_config.y_range,
            feature_shape=self.feature_shape)
        self.head = SSDHead(self.backbone.out_channels,
                            self.anchor_config.anchors_per_cell, rng=rng)

    # ------------------------------------------------------------------
    # Forward path
    # ------------------------------------------------------------------
    def preprocess(self, scene: Scene) -> tuple:
        pillars = self.encoder.encode(scene.points)
        return (Tensor(pillars.features), Tensor(pillars.mask),
                pillars.indices)

    def forward(self, features: Tensor, mask: Tensor,
                indices: np.ndarray) -> dict:
        pillar_features = self.pfn(features, mask)
        canvas = F.scatter_to_grid(pillar_features, indices,
                                   self.pillar_config.grid_shape)
        bev = self.backbone(canvas)
        return self.head(bev)

    def example_inputs(self) -> tuple:
        rng = np.random.default_rng(0)
        p, n = 64, self.pillar_config.max_points_per_pillar
        features = rng.standard_normal((p, n, 9)).astype(np.float32)
        mask = np.ones((p, n), dtype=np.float32)
        ny, nx = self.pillar_config.grid_shape
        cells = rng.choice(ny * nx, size=p, replace=False)
        indices = np.stack([cells // nx, cells % nx], axis=1)
        return Tensor(features), Tensor(mask), indices

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def loss(self, outputs: dict, scene: Scene) -> Tensor:
        targets = assign_targets(self.anchor_grid, scene.boxes)
        cls_flat, reg_flat = self.head.flatten_outputs(outputs)

        valid = (targets.cls_target >= 0).astype(np.float32)
        positive = (targets.cls_target == 1).astype(np.float32)
        n_pos = max(float(positive.sum()), 1.0)

        cls_loss = nn.losses.focal_loss(
            cls_flat, Tensor(positive), normalizer=n_pos,
            weights=Tensor(valid))
        reg_weights = Tensor(
            np.repeat(positive[:, None], SSDHead.BOX_DIM, axis=1))
        reg_loss = nn.losses.smooth_l1_loss(
            reg_flat, Tensor(targets.reg_target), beta=1.0 / 9.0,
            weights=reg_weights)
        return cls_loss + 2.0 * reg_loss

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, scene: Scene) -> DetectionResult:
        self.eval()
        with nn.no_grad():
            outputs = self.forward(*self.preprocess(scene))
        return self._decode_head_outputs(outputs, scene.frame_id)

    def predict_batch(self, scenes) -> list[DetectionResult]:
        """Batched inference: per-scene pillar encoding, one trunk pass.

        Pillarization and the PFN are inherently per-scene (ragged
        pillar counts); the BEV canvases are then concatenated along the
        batch axis so the backbone + head — the dominant cost — run
        once over the whole micro-batch.  Every trunk op is
        batch-parallel (convs see a leading batch dimension, BN uses
        running stats, the rest are elementwise), so per-frame slices
        decode exactly as in :meth:`predict`.
        """
        if len(scenes) <= 1:
            return [self.predict(scene) for scene in scenes]
        self.eval()
        with nn.no_grad():
            canvases = []
            for scene in scenes:
                features, mask, indices = self.preprocess(scene)
                pillar_features = self.pfn(features, mask)
                canvases.append(F.scatter_to_grid(
                    pillar_features, indices,
                    self.pillar_config.grid_shape))
            canvas = Tensor(np.concatenate(
                [c.data for c in canvases], axis=0))
            outputs = self.head(self.backbone(canvas))
        return [self._decode_head_outputs(
                    {key: Tensor(value.data[i:i + 1])
                     for key, value in outputs.items()},
                    scene.frame_id)
                for i, scene in enumerate(scenes)]

    def _decode_head_outputs(self, outputs: dict,
                             frame_id: int) -> DetectionResult:
        cls_flat, reg_flat = self.head.flatten_outputs(outputs)
        scores = 1.0 / (1.0 + np.exp(-cls_flat.data))
        deltas = reg_flat.data

        boxes_out = []
        for cls in self.anchor_config.class_names:
            cls_mask = (self.anchor_grid.labels == cls) \
                & (scores >= self.score_threshold)
            idx = np.where(cls_mask)[0]
            if len(idx) == 0:
                continue
            # Keep the strongest candidates before the O(n^2) NMS.
            idx = idx[np.argsort(-scores[idx])[:64]]
            decoded = decode_boxes(deltas[idx], self.anchor_grid.boxes[idx])
            keep = nms_bev(decoded, scores[idx], iou_threshold=self.nms_iou,
                           max_keep=20)
            kept = array_to_boxes(decoded[keep],
                                  labels=[cls] * len(keep),
                                  scores=scores[idx][keep])
            boxes_out.extend(kept)
        return DetectionResult(boxes=boxes_out, frame_id=frame_id)
