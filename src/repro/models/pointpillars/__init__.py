"""PointPillars: pillar-encoded LiDAR 3D object detection."""

from .backbone import PointPillarsBackbone
from .head import SSDHead
from .model import PointPillars
from .pfn import PillarFeatureNet

__all__ = ["PointPillars", "PillarFeatureNet", "PointPillarsBackbone",
           "SSDHead"]
