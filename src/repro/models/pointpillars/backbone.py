"""The 2D CNN backbone of PointPillars.

Three strided stages over the pseudo-image, each followed by a
transposed-convolution that brings its output back to a common scale;
the three upsampled maps are concatenated, mirroring the original
top-down + upsample-fusion design.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor

__all__ = ["PointPillarsBackbone"]


class _Stage(nn.Module):
    """One downsampling stage: strided conv then ``depth`` 3×3 convs."""

    def __init__(self, in_channels: int, out_channels: int, depth: int,
                 stride: int, rng: np.random.Generator | None):
        super().__init__()
        blocks = [nn.ConvBNReLU(in_channels, out_channels, 3,
                                stride=stride, rng=rng)]
        for _ in range(depth):
            blocks.append(nn.ConvBNReLU(out_channels, out_channels, 3,
                                        rng=rng))
        self.blocks = nn.Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        return self.blocks(x)


class PointPillarsBackbone(nn.Module):
    """Pseudo-image (1, C, H, W) → fused BEV features at H/2 × W/2."""

    def __init__(self, in_channels: int = 32,
                 stage_channels: tuple = (32, 64, 128),
                 stage_depths: tuple = (2, 2, 2),
                 upsample_channels: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.out_channels = upsample_channels * len(stage_channels)
        self.stage1 = _Stage(in_channels, stage_channels[0],
                             stage_depths[0], stride=2, rng=rng)
        self.stage2 = _Stage(stage_channels[0], stage_channels[1],
                             stage_depths[1], stride=2, rng=rng)
        self.stage3 = _Stage(stage_channels[1], stage_channels[2],
                             stage_depths[2], stride=2, rng=rng)
        self.up1 = nn.ConvTranspose2d(stage_channels[0], upsample_channels,
                                      1, stride=1, bias=False, rng=rng)
        self.up2 = nn.ConvTranspose2d(stage_channels[1], upsample_channels,
                                      2, stride=2, bias=False, rng=rng)
        self.up3 = nn.ConvTranspose2d(stage_channels[2], upsample_channels,
                                      4, stride=4, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(upsample_channels)
        self.bn2 = nn.BatchNorm2d(upsample_channels)
        self.bn3 = nn.BatchNorm2d(upsample_channels)

    def forward(self, x: Tensor) -> Tensor:
        s1 = self.stage1(x)
        s2 = self.stage2(s1)
        s3 = self.stage3(s2)
        u1 = self.bn1(self.up1(s1)).relu()
        u2 = self.bn2(self.up2(s2)).relu()
        u3 = self.bn3(self.up3(s3)).relu()
        return Tensor.concatenate([u1, u2, u3], axis=1)
