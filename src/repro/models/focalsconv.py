"""Focals-Conv-lite: focal sparse convolution variant of SECOND.

Focals Conv learns which spatial positions deserve computation ("focal"
importance) and concentrates convolution there.  The dense-simulated
version keeps the mechanism: a lightweight importance branch predicts a
per-cell gate that multiplicatively sparsifies the feature map before a
(wider) backbone, so downstream compute is focused on occupied and
object-dense regions.  The model is intentionally heavier than SECOND,
matching Table 1's parameter ordering.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.pointcloud.voxelize import VoxelConfig

from .second import SECOND

__all__ = ["FocalsConv"]


class FocalsConv(SECOND):
    """SECOND with a learned focal-importance gate and wider stages."""

    name = "Focals Conv"

    def __init__(self, voxel_config: VoxelConfig | None = None,
                 middle_channels: int = 40,
                 stage_channels: tuple = (60, 112, 216),
                 upsample_channels: int = 52,
                 score_threshold: float = 0.3, seed: int = 0):
        super().__init__(voxel_config=voxel_config,
                         middle_channels=middle_channels,
                         stage_channels=stage_channels,
                         upsample_channels=upsample_channels,
                         score_threshold=score_threshold, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.focal_gate = nn.Sequential(
            nn.ConvBNReLU(middle_channels, middle_channels // 2, 3, rng=rng),
            nn.Conv2d(middle_channels // 2, 1, 1, rng=rng),
            nn.Sigmoid(),
        )

    def forward(self, bev: Tensor) -> dict:
        features = self.middle(bev)
        gate = self.focal_gate(features)
        focused = features * gate   # broadcast over channels
        return self.head(self.backbone(focused))
