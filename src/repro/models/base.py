"""Common interface all 3D detectors in the repo implement."""

from __future__ import annotations

from repro import nn
from repro.detection.evaluation import DetectionResult
from repro.pointcloud.scenes import Scene

__all__ = ["Detector3D"]


class Detector3D(nn.Module):
    """A trainable 3D object detector.

    Subclasses provide preprocessing from a :class:`Scene` to model
    inputs, a differentiable forward, a training loss, and box decoding.
    ``example_inputs`` feeds graph tracing (UPAQ Algorithm 1) and the
    hardware cost model.
    """

    #: human-readable model name used in tables
    name: str = "detector"

    def example_inputs(self) -> tuple:
        """Representative inputs for tracing/cost analysis."""
        raise NotImplementedError

    def preprocess(self, scene: Scene) -> tuple:
        """Convert a scene into forward() inputs."""
        raise NotImplementedError

    def predict(self, scene: Scene) -> DetectionResult:
        """Full inference: preprocess → forward → decode → NMS."""
        raise NotImplementedError

    def predict_batch(self, scenes) -> list[DetectionResult]:
        """Inference over a micro-batch of scenes, one result per scene.

        Subclasses with a batch-parallel trunk override this to run the
        shared backbone/head in one pass (the streaming engine's
        micro-batching window relies on it); the default is the
        sequential loop, which is always semantically equivalent.
        """
        return [self.predict(scene) for scene in scenes]

    def loss(self, outputs, scene: Scene):
        """Training loss for one frame."""
        raise NotImplementedError

    def train_step(self, optimizer, scene: Scene) -> float:
        """One optimization step on one frame; returns the loss value."""
        self.train()
        optimizer.zero_grad()
        outputs = self.forward(*self.preprocess(scene))
        loss = self.loss(outputs, scene)
        loss.backward()
        optimizer.step()
        return loss.item()
