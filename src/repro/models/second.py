"""SECOND-lite: sparsely-embedded voxel detector.

SECOND voxelizes the cloud in 3D and runs sparse convolutions through a
middle encoder before a 2D BEV backbone.  Dense numpy has no sparse-conv
kernels, so the middle encoder is *dense-simulated sparse*: the voxel
grid's z-axis is folded into channels (the standard height-compression
trick) and a conv stack processes only a grid whose activity mirrors the
sparse occupancy.  Parameter count sits slightly above PointPillars,
matching Table 1's ordering.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.detection import (AnchorConfig, AnchorGrid, DetectionResult,
                             assign_targets, decode_boxes, nms_bev)
from repro.nn import Tensor
from repro.pointcloud.boxes import array_to_boxes
from repro.pointcloud.scenes import Scene
from repro.pointcloud.voxelize import VoxelConfig, VoxelEncoder

from .base import Detector3D
from .pointpillars.backbone import PointPillarsBackbone
from .pointpillars.head import SSDHead

__all__ = ["SECOND"]


class SECOND(Detector3D):
    """Voxel-based LiDAR detector with a height-folding middle encoder."""

    name = "SECOND"

    def __init__(self, voxel_config: VoxelConfig | None = None,
                 middle_channels: int = 32,
                 stage_channels: tuple = (32, 64, 128),
                 upsample_channels: int = 32,
                 score_threshold: float = 0.3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.voxel_config = voxel_config or VoxelConfig()
        self.encoder = VoxelEncoder(self.voxel_config)
        self.score_threshold = score_threshold

        nz = self.voxel_config.grid_shape[0]
        in_channels = 4 * nz
        self.middle = nn.Sequential(
            nn.ConvBNReLU(in_channels, middle_channels, 3, rng=rng),
            nn.ConvBNReLU(middle_channels, middle_channels, 3, rng=rng),
        )
        self.backbone = PointPillarsBackbone(
            in_channels=middle_channels, stage_channels=stage_channels,
            upsample_channels=upsample_channels, rng=rng)

        self.anchor_config = AnchorConfig()
        _, ny, nx = self.voxel_config.grid_shape
        self.anchor_grid = AnchorGrid(
            self.anchor_config, x_range=self.voxel_config.x_range,
            y_range=self.voxel_config.y_range,
            feature_shape=(ny // 2, nx // 2))
        self.head = SSDHead(self.backbone.out_channels,
                            self.anchor_config.anchors_per_cell, rng=rng)

    def preprocess(self, scene: Scene) -> tuple:
        voxels = self.encoder.encode(scene.points)
        dense = voxels.to_dense()            # (4, nz, ny, nx)
        nz = dense.shape[1]
        folded = dense.reshape(4 * nz, *dense.shape[2:])
        return (Tensor(folded[None]),)

    def forward(self, bev: Tensor) -> dict:
        return self.head(self.backbone(self.middle(bev)))

    def example_inputs(self) -> tuple:
        nz, ny, nx = self.voxel_config.grid_shape
        rng = np.random.default_rng(0)
        return (Tensor(rng.random((1, 4 * nz, ny, nx)).astype(np.float32)),)

    def loss(self, outputs: dict, scene: Scene) -> Tensor:
        targets = assign_targets(self.anchor_grid, scene.boxes)
        cls_flat, reg_flat = self.head.flatten_outputs(outputs)
        valid = (targets.cls_target >= 0).astype(np.float32)
        positive = (targets.cls_target == 1).astype(np.float32)
        n_pos = max(float(positive.sum()), 1.0)
        cls_loss = nn.losses.focal_loss(cls_flat, Tensor(positive),
                                        normalizer=n_pos,
                                        weights=Tensor(valid))
        reg_weights = Tensor(np.repeat(positive[:, None], 7, axis=1))
        reg_loss = nn.losses.smooth_l1_loss(reg_flat,
                                            Tensor(targets.reg_target),
                                            beta=1.0 / 9.0,
                                            weights=reg_weights)
        return cls_loss + 2.0 * reg_loss

    def predict(self, scene: Scene) -> DetectionResult:
        self.eval()
        with nn.no_grad():
            outputs = self.forward(*self.preprocess(scene))
        cls_flat, reg_flat = self.head.flatten_outputs(outputs)
        scores = 1.0 / (1.0 + np.exp(-cls_flat.data))
        boxes_out = []
        for cls in self.anchor_config.class_names:
            mask = (self.anchor_grid.labels == cls) \
                & (scores >= self.score_threshold)
            idx = np.where(mask)[0]
            if len(idx) == 0:
                continue
            idx = idx[np.argsort(-scores[idx])[:64]]
            decoded = decode_boxes(reg_flat.data[idx],
                                   self.anchor_grid.boxes[idx])
            keep = nms_bev(decoded, scores[idx], max_keep=20)
            boxes_out.extend(array_to_boxes(decoded[keep],
                                            labels=[cls] * len(keep),
                                            scores=scores[idx][keep]))
        return DetectionResult(boxes=boxes_out, frame_id=scene.frame_id)
