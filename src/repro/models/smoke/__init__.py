"""SMOKE: single-stage monocular 3D object detection."""

from .backbone import DLALiteBackbone
from .head import REG_DIM, SmokeHead
from .model import SMOKE

__all__ = ["SMOKE", "DLALiteBackbone", "SmokeHead", "REG_DIM"]
