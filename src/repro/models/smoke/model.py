"""The full SMOKE monocular 3D detector.

Single-stage keypoint estimation: each object is detected as the
projected 3D-center keypoint on a class heatmap (CenterNet-style focal
loss on Gaussian-splatted targets), with an 8-dim regression that lifts
the keypoint to a full 3D box using the camera intrinsics: sub-pixel
offset, depth code, log-size residuals against class priors, and
sin/cos yaw.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.camera import CameraModel, project_points
from repro.detection import DetectionResult
from repro.nn import Tensor
from repro.pointcloud.boxes import Box3D, CLASS_NAMES
from repro.pointcloud.scenes import Scene

from ..base import Detector3D
from .backbone import DLALiteBackbone
from .head import REG_DIM, SmokeHead

__all__ = ["SMOKE"]

_DIM_PRIORS = {
    "Car": (3.9, 1.6, 1.56),
    "Pedestrian": (0.8, 0.6, 1.73),
    "Cyclist": (1.76, 0.6, 1.73),
}
_DEPTH_REF = 25.0   # depth = DEPTH_REF * exp(code)
_STRIDE = 4


def _gaussian_radius(height: float, width: float,
                     min_overlap: float = 0.5) -> float:
    """CenterNet's radius so any center within it keeps IoU≥min_overlap."""
    a = 1
    b = height + width
    c = width * height * (1 - min_overlap) / (1 + min_overlap)
    sq = np.sqrt(max(b ** 2 - 4 * a * c, 0))
    return max((b - sq) / 2, 1.0)


def _splat_gaussian(heatmap: np.ndarray, row: int, col: int,
                    radius: int) -> None:
    """Draw a 2D Gaussian peak onto ``heatmap`` in place."""
    h, w = heatmap.shape
    sigma = max(radius / 3.0, 0.6)
    for r in range(max(row - radius, 0), min(row + radius + 1, h)):
        for c in range(max(col - radius, 0), min(col + radius + 1, w)):
            value = np.exp(-((r - row) ** 2 + (c - col) ** 2)
                           / (2 * sigma ** 2))
            heatmap[r, c] = max(heatmap[r, c], value)


class SMOKE(Detector3D):
    """Monocular camera 3D detector with 2D→3D uplifting."""

    name = "SMOKE"

    def __init__(self, camera: CameraModel | None = None,
                 base_channels: int = 72, head_channels: int = 120,
                 stage_depths: tuple = (2, 2, 2),
                 score_threshold: float = 0.3, max_objects: int = 20,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.camera = camera or CameraModel.kitti_like()
        self.class_names = CLASS_NAMES
        self.score_threshold = score_threshold
        self.max_objects = max_objects
        self.backbone = DLALiteBackbone(base_channels=base_channels,
                                        stage_depths=stage_depths, rng=rng)
        self.head = SmokeHead(self.backbone.out_channels,
                              num_classes=len(self.class_names),
                              head_channels=head_channels, rng=rng)

    # ------------------------------------------------------------------
    # Forward path
    # ------------------------------------------------------------------
    def preprocess(self, scene: Scene) -> tuple:
        if scene.image is None:
            raise ValueError("SMOKE requires scenes rendered with images")
        return (Tensor(scene.image[None]),)

    def forward(self, image: Tensor) -> dict:
        return self.head(self.backbone(image))

    def example_inputs(self) -> tuple:
        h, w = self.camera.height, self.camera.width
        rng = np.random.default_rng(0)
        return (Tensor(rng.random((1, 3, h, w)).astype(np.float32)),)

    # ------------------------------------------------------------------
    # Targets + loss
    # ------------------------------------------------------------------
    def _keypoint_targets(self, scene: Scene) -> tuple:
        fh = self.camera.height // _STRIDE
        fw = self.camera.width // _STRIDE
        heatmap = np.zeros((len(self.class_names), fh, fw), dtype=np.float32)
        reg = np.zeros((REG_DIM, fh, fw), dtype=np.float32)
        reg_mask = np.zeros((fh, fw), dtype=np.float32)
        for box in scene.boxes:
            pixel, depth = project_points(box.center[None], self.camera)
            if depth[0] <= 0.5:
                continue
            u, v = pixel[0] / _STRIDE
            col, row = int(u), int(v)
            if not (0 <= col < fw and 0 <= row < fh):
                continue
            cls_idx = self.class_names.index(box.label)
            size_px = max(self.camera.focal * box.dz / depth[0] / _STRIDE, 1)
            radius = int(_gaussian_radius(size_px, size_px))
            _splat_gaussian(heatmap[cls_idx], row, col, radius)
            heatmap[cls_idx, row, col] = 1.0
            prior = _DIM_PRIORS[box.label]
            reg[:, row, col] = [
                u - col, v - row,
                np.log(depth[0] / _DEPTH_REF),
                np.log(box.dx / prior[0]),
                np.log(box.dy / prior[1]),
                np.log(box.dz / prior[2]),
                np.sin(box.yaw), np.cos(box.yaw),
            ]
            reg_mask[row, col] = 1.0
        return heatmap, reg, reg_mask

    def loss(self, outputs: dict, scene: Scene) -> Tensor:
        heat_target, reg_target, reg_mask = self._keypoint_targets(scene)
        heat_logits = outputs["heatmap"].reshape(*heat_target.shape)
        reg_pred = outputs["reg"].reshape(*reg_target.shape)

        heat_loss = self._centernet_focal(heat_logits, heat_target)
        weights = Tensor(np.broadcast_to(reg_mask, reg_target.shape).copy())
        reg_loss = nn.losses.smooth_l1_loss(
            reg_pred, Tensor(reg_target), beta=0.2, weights=weights)
        return heat_loss + 2.0 * reg_loss

    @staticmethod
    def _centernet_focal(logits: Tensor, target: np.ndarray,
                         alpha: float = 2.0, beta: float = 4.0) -> Tensor:
        """Penalty-reduced focal loss on Gaussian heatmaps (CenterNet)."""
        prob = logits.sigmoid().clip(1e-4, 1 - 1e-4)
        positive = (target >= 1.0 - 1e-6).astype(np.float32)
        negative = 1.0 - positive
        neg_weight = np.power(1.0 - target, beta, dtype=np.float32)
        pos_loss = (1.0 - prob) ** alpha * prob.log() * Tensor(positive)
        neg_loss = (prob ** alpha) * (1.0 - prob).log() \
            * Tensor(neg_weight * negative)
        n_pos = max(float(positive.sum()), 1.0)
        return -(pos_loss.sum() + neg_loss.sum()) / n_pos

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def predict(self, scene: Scene) -> DetectionResult:
        self.eval()
        with nn.no_grad():
            outputs = self.forward(*self.preprocess(scene))
        heat = 1.0 / (1.0 + np.exp(-outputs["heatmap"].data[0]))
        reg = outputs["reg"].data[0]
        boxes = self._decode(heat, reg)
        return DetectionResult(boxes=boxes, frame_id=scene.frame_id)

    def predict_batch(self, scenes) -> list[DetectionResult]:
        """Batched inference: stack images, one backbone/head pass.

        Every trunk op is batch-parallel, so slicing the batched head
        outputs per frame decodes exactly as :meth:`predict`.
        """
        if len(scenes) <= 1:
            return [self.predict(scene) for scene in scenes]
        self.eval()
        with nn.no_grad():
            images = Tensor(np.concatenate(
                [self.preprocess(scene)[0].data for scene in scenes],
                axis=0))
            outputs = self.forward(images)
        results = []
        for i, scene in enumerate(scenes):
            heat = 1.0 / (1.0 + np.exp(-outputs["heatmap"].data[i]))
            boxes = self._decode(heat, outputs["reg"].data[i])
            results.append(DetectionResult(boxes=boxes,
                                           frame_id=scene.frame_id))
        return results

    def _decode(self, heat: np.ndarray, reg: np.ndarray) -> list[Box3D]:
        num_classes, fh, fw = heat.shape
        # 3×3 local-max suppression per class.
        padded = np.pad(heat, ((0, 0), (1, 1), (1, 1)), constant_values=-1)
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (3, 3), axis=(1, 2))
        is_peak = heat >= windows.max(axis=(-1, -2)) - 1e-9
        candidates = heat * is_peak

        flat = candidates.reshape(-1)
        order = np.argsort(-flat)[:self.max_objects]
        boxes: list[Box3D] = []
        k = self.camera.intrinsics()
        for raw in order:
            score = flat[raw]
            if score < self.score_threshold:
                break
            cls_idx, rem = divmod(int(raw), fh * fw)
            row, col = divmod(rem, fw)
            offsets = reg[:, row, col]
            u = (col + offsets[0]) * _STRIDE
            v = (row + offsets[1]) * _STRIDE
            depth = _DEPTH_REF * np.exp(np.clip(offsets[2], -3, 3))
            x_cam = (u - k[0, 2]) * depth / k[0, 0]
            y_cam = (v - k[1, 2]) * depth / k[1, 1]
            prior = _DIM_PRIORS[self.class_names[cls_idx]]
            dims = np.exp(np.clip(offsets[3:6], -2, 2)) * np.array(prior)
            yaw = float(np.arctan2(offsets[6], offsets[7]))
            boxes.append(Box3D(
                x=float(depth), y=float(-x_cam),
                z=float(self.camera.mount_height - y_cam),
                dx=float(dims[0]), dy=float(dims[1]), dz=float(dims[2]),
                yaw=yaw, label=self.class_names[cls_idx],
                score=float(score)))
        return boxes
