"""DLA-lite backbone for SMOKE.

A reduced Deep Layer Aggregation network: a convolutional stem, three
strided stages, and iterative aggregation nodes that upsample deeper
features and fuse them (via 1×1 projection convolutions) back to
stride-4 resolution — the feature map SMOKE's keypoint heads consume.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F

__all__ = ["DLALiteBackbone"]


class _AggregationNode(nn.Module):
    """Fuse a deep (coarse) and a shallow (fine) feature map."""

    def __init__(self, deep_channels: int, shallow_channels: int,
                 out_channels: int, scale: int,
                 rng: np.random.Generator | None):
        super().__init__()
        self.scale = scale
        self.project = nn.Conv2d(deep_channels, out_channels, 1,
                                 bias=False, rng=rng)
        self.lateral = nn.Conv2d(shallow_channels, out_channels, 1,
                                 bias=False, rng=rng)
        self.fuse = nn.ConvBNReLU(out_channels, out_channels, 3, rng=rng)

    def forward(self, deep: Tensor, shallow: Tensor) -> Tensor:
        up = F.upsample_nearest2d(self.project(deep), self.scale)
        return self.fuse(up + self.lateral(shallow))


class DLALiteBackbone(nn.Module):
    """(1, 3, H, W) image → (1, C, H/4, W/4) aggregated features."""

    def __init__(self, base_channels: int = 24,
                 stage_depths: tuple = (2, 2, 2),
                 rng: np.random.Generator | None = None):
        super().__init__()
        c1, c2, c3 = base_channels, base_channels * 2, base_channels * 4
        self.out_channels = c2

        self.stem = nn.ConvBNReLU(3, c1, 3, rng=rng)

        def stage(cin, cout, depth):
            blocks = [nn.ConvBNReLU(cin, cout, 3, stride=2, rng=rng)]
            blocks.extend(nn.ConvBNReLU(cout, cout, 3, rng=rng)
                          for _ in range(depth - 1))
            return nn.Sequential(*blocks)

        self.level1 = stage(c1, c1, stage_depths[0])   # stride 2
        self.level2 = stage(c1, c2, stage_depths[1])   # stride 4
        self.level3 = stage(c2, c3, stage_depths[2])   # stride 8
        self.agg32 = _AggregationNode(c3, c2, c2, scale=2, rng=rng)
        self.agg21 = _AggregationNode(c2, c2, c2, scale=1, rng=rng)

    def forward(self, image: Tensor) -> Tensor:
        x0 = self.stem(image)
        x1 = self.level1(x0)
        x2 = self.level2(x1)
        x3 = self.level3(x2)
        fused = self.agg32(x3, x2)          # stride 4
        return self.agg21(fused, fused)     # extra aggregation at stride 4
