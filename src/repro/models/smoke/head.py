"""SMOKE keypoint heads: class heatmaps + 8-dim 3D regression."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor

__all__ = ["SmokeHead", "REG_DIM"]

#: [offset_u, offset_v, depth_code, log-dz, log-dy, log-dx, sin yaw, cos yaw]
REG_DIM = 8


class SmokeHead(nn.Module):
    """Two parallel conv branches over the backbone feature map."""

    def __init__(self, in_channels: int, num_classes: int,
                 head_channels: int = 48,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.num_classes = num_classes
        self.heat_branch = nn.Sequential(
            nn.ConvBNReLU(in_channels, head_channels, 3, rng=rng),
            nn.Conv2d(head_channels, num_classes, 1, rng=rng),
        )
        self.reg_branch = nn.Sequential(
            nn.ConvBNReLU(in_channels, head_channels, 3, rng=rng),
            nn.Conv2d(head_channels, REG_DIM, 1, rng=rng),
        )
        # Bias the heatmap towards "no object" so focal loss starts stable.
        final = self.heat_branch[1]
        final.bias.data[:] = -2.19  # sigmoid ≈ 0.1

    def forward(self, features: Tensor) -> dict:
        return {"heatmap": self.heat_branch(features),
                "reg": self.reg_branch(features)}
