"""Integer-arithmetic inference for quantized layers.

Fake quantization (the training-side view used everywhere else in the
repo) keeps weights as floats that happen to lie on an integer grid.
Deployment engines instead run the *integer* arithmetic directly:
``y = (W_q @ x_q) · s_w · s_x``.  This module implements that path for
every kernel layer the IR knows — :class:`QuantizedConv2d`,
:class:`QuantizedConvTranspose2d`, :class:`QuantizedLinear` — so the
runtime can execute a compressed model on real integer MACs
(Jacob et al., the paper's [35]).

Two guarantees make the executors testable:

* **Pattern-aware skipping is exact.**  Pruned kernel positions are
  zero *codes*; im2col columns (conv), scatter columns (deconv) and
  input features (linear) whose weights are all-zero are skipped before
  the integer matmul, and skipping a zero integer column cannot change
  an integer accumulation.
* **``reference()`` is bit-for-bit.**  Each executor's ``reference``
  method runs the float-side semantics — dequantize *after* the
  accumulation — in float64.  Integer sums of b≤16-bit codes stay far
  below 2⁵³, so the float64 accumulation is exact and equals the int64
  accumulation; both paths then apply the identical rescale multiply,
  producing identical bit patterns.  This is the parity the
  ``execution="lowered"`` runtime asserts against
  ``execution="reference"``.

Each executor carries an opt-in ``telemetry`` slot (a
:class:`repro.runtime.telemetry.LayerTelemetry`); when set, the shared
``_accumulate`` core counts executed MACs, skipped vs. total columns,
activation saturation, and the accumulator extrema.  Counters only
observe values both paths already compute, so attaching them cannot
perturb either guarantee (see ``docs/OBSERVABILITY.md``).

Batching and compile-once packing (see ``docs/PERFORMANCE.md``):

* Every executor accepts a leading batch dimension and runs the whole
  micro-batch through **one** matmul.  Because both accumulation paths
  are exact, the batched result is *byte-identical* to stacking the
  per-frame results — summation blocking cannot change an exact sum.
* The pruned weight matrix is **compacted once** at construction
  (:meth:`_compact`): ``weight_codes`` reduced to the ``_keep_cols``
  columns, instead of boolean-masked on every forward.
* The im2col / scatter geometry comes from the shape-keyed plan cache
  in :mod:`repro.nn.functional`, restricted to the kept columns and
  memoized per input shape on the executor.
* When the a-priori accumulator bound certifies every intermediate sum
  stays below 2⁵³ (true for all 4–16-bit configurations this repo
  produces), both paths share a float64 BLAS gemm whose result is the
  exact integer accumulation; otherwise each path falls back to an
  int64/float64 einsum.
"""

from __future__ import annotations

import numpy as np

from .functional import col2im_plan, im2col_plan
from .layers import Conv2d, ConvTranspose2d, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["QuantizedConv2d", "QuantizedConvTranspose2d", "QuantizedLinear",
           "activation_scale", "quantize_activation"]

#: Accumulator magnitude below which float64 integer arithmetic is exact
#: (kept equal to ``2 ** repro.runtime.telemetry.ACC_EXACT_BITS``; not
#: imported to keep :mod:`repro.nn` free of runtime dependencies).
_EXACT_ACC_LIMIT = 2 ** 53

#: Per-executor cap on memoized input-shape plans.
_MAX_SHAPE_PLANS = 8


def _batched_gemm(w: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``(o, k) @ (n, k, p) -> (n, o, p)`` as one broadcast BLAS gemm.

    ``matmul`` broadcasts the stacked operand without materializing a
    rearranged copy of ``cols``, which is what makes the batched path
    cheaper than ``n`` separate calls.  Only used when the accumulation
    is certified exact, where any summation order or blocking yields
    the identical integer result.
    """
    if cols.shape[0] == 1:
        return np.matmul(w, cols[0])[None]
    return np.matmul(w, cols)


def activation_scale(x: np.ndarray, bits: int = 8) -> float:
    """Symmetric max-calibrated scale for an activation tensor."""
    max_code = 2 ** (bits - 1) - 1
    alpha = float(np.abs(x).max())
    return alpha / max_code if alpha > 0 else 1.0


def quantize_activation(x: np.ndarray, scale: float,
                        bits: int = 8, telemetry=None) -> np.ndarray:
    """Activation → integer codes at a fixed scale.

    ``telemetry`` (a :class:`repro.runtime.telemetry.LayerTelemetry`)
    optionally counts how many values saturate — round outside
    ``[-max_code, max_code]`` and get clipped, i.e. fall outside the
    calibrated range.  Counting never changes the returned codes.
    """
    max_code = 2 ** (bits - 1) - 1
    rounded = np.round(x / scale)
    if telemetry is not None:
        telemetry.record_quantization(
            rounded.size, int((np.abs(rounded) > max_code).sum()))
    return np.clip(rounded, -max_code, max_code).astype(np.int64)


def _per_channel_codes(flat: np.ndarray, bits: int):
    """Quantize (channels, k) rows to integer codes + per-row scales."""
    max_code = 2 ** (bits - 1) - 1
    alphas = np.abs(flat).max(axis=1)
    scales = np.where(alphas > 0, alphas / max_code, 1.0)
    codes = np.clip(np.round(flat / scales[:, None]), -max_code, max_code)
    return codes.astype(np.int64), scales.astype(np.float64)


def _as_array(x) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x)


class QuantizedConv2d(Module):
    """A convolution executed in integer arithmetic.

    Weights are stored as int64 codes with one scale per output filter
    (per-channel quantization, the deployment-standard granularity);
    activations are quantized on entry with a calibration scale.
    Pattern-pruned weight columns are skipped in im2col.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, stride: int, padding: int,
                 input_scale: float, activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.stride = stride
        self.padding = padding
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        # Columns of the (out_c, in_c·k·k) weight matrix where *every*
        # filter is zero — the positions pattern pruning blanked in all
        # kernels of an input channel.  Skipped exactly (zero columns
        # contribute nothing to an integer accumulation).
        w_mat = self.weight_codes.reshape(self.weight_codes.shape[0], -1)
        self._keep_cols = np.any(w_mat != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``.

        Call after mutating ``_keep_cols``; also clears the per-shape
        plan cache, whose gather indices embed the kept columns.
        """
        out_c = self.weight_codes.shape[0]
        w_mat = self.weight_codes.reshape(out_c, -1)
        self._w_kept = np.ascontiguousarray(w_mat[:, self._keep_cols])
        self._w_kept_f64 = self._w_kept.astype(np.float64)
        self._kept = int(self._keep_cols.sum())
        max_w = int(np.abs(self._w_kept).max()) if self._w_kept.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        # |acc| <= kept · max|w| · max|x|: when below 2^53 every partial
        # sum is an exactly-representable float64 integer, certifying
        # the shared BLAS gemm path.
        self._use_gemm = self._kept * max_w * act_max < _EXACT_ACC_LIMIT
        self._plans: dict = {}

    def _shape_plan(self, c: int, h: int, w: int):
        """Kept-column gather indices + geometry for one input shape."""
        key = (c, h, w)
        entry = self._plans.get(key)
        if entry is None:
            kernel = self.weight_codes.shape[-1]
            geometry = im2col_plan(c, h, w, kernel, self.stride,
                                   self.padding)
            idx = geometry.indices if self._keep_cols.all() \
                else geometry.indices[self._keep_cols]
            if len(self._plans) >= _MAX_SHAPE_PLANS:
                self._plans.pop(next(iter(self._plans)))
            entry = (idx.ravel(), geometry)
            self._plans[key] = entry
        return entry

    @staticmethod
    def from_float(conv: Conv2d, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedConv2d":
        """Quantize a float convolution with per-filter weight scales."""
        weights = conv.weight.data.astype(np.float64)
        out_c = weights.shape[0]
        codes, scales = _per_channel_codes(weights.reshape(out_c, -1),
                                           weight_bits)
        bias = None if conv.bias is None else conv.bias.data
        return QuantizedConv2d(codes.reshape(weights.shape), scales, bias,
                               conv.stride, conv.padding, input_scale,
                               activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        """Shared core: quantize → gather kept columns → one matmul.

        ``dtype=int64`` is the deployment path; ``dtype=float64`` is the
        reference semantics.  Both see the same codes and the same
        skipped columns, and both accumulations are exact, so they
        return equal values — and when the compaction-time bound
        certified exactness, both share the float64 gemm outright.  The
        whole micro-batch (leading ``n``) runs as one matmul, which is
        byte-identical to ``n`` single-frame calls because exact sums
        are blocking-independent.
        """
        n, c, h, w = data.shape
        out_c = self.weight_codes.shape[0]
        telemetry = self.telemetry
        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits,
                                      telemetry=telemetry)
        idx, geometry = self._shape_plan(c, h, w)
        use_gemm = self._use_gemm
        work = x_codes if not use_gemm and np.dtype(dtype) == np.int64 \
            else x_codes.astype(np.float64)
        cols = geometry.pad(work).reshape(n, -1).take(idx, axis=1) \
            .reshape(n, self._kept, geometry.positions)
        if use_gemm:
            acc = _batched_gemm(self._w_kept_f64, cols)
        elif np.dtype(dtype) == np.int64:
            acc = np.einsum("ok,nkp->nop", self._w_kept, cols)
        else:
            acc = np.einsum("ok,nkp->nop", self._w_kept_f64, cols)
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=n * out_c * self._kept * geometry.positions,
                columns_total=n * keep.size,
                columns_skipped=n * (keep.size - self._kept),
                frames=n)
            if acc.size:
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray, input_shape: tuple) -> Tensor:
        n, _, h, w = input_shape
        out_c = self.weight_codes.shape[0]
        kernel = self.weight_codes.shape[-1]
        out_h = (h + 2 * self.padding - kernel) // self.stride + 1
        out_w = (w + 2 * self.padding - kernel) // self.stride + 1
        rescale = self.weight_scales[None, :, None] * self.input_scale
        out = acc.astype(np.float64) * rescale
        out = out.reshape(n, out_c, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return Tensor(out.astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        data = _as_array(x)
        # The integer core: exact accumulation of the int64 codes (via
        # the certified gemm when the bound holds), exactly as a
        # deployment engine's INT8 MACs with a 32/64-bit accumulator.
        return self._finish(self._accumulate(data, np.int64), data.shape)

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.float64), data.shape)

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """The float32 training-side view: dequantized weights convolved
        with the quantized input by the normal float pipeline.

        Used by tests to assert integer execution ≈ fake quantization
        (within float32 rounding of the rescale — one ulp per output).
        """
        weights = (self.weight_codes.reshape(len(self.weight_scales), -1)
                   * self.weight_scales[:, None]) \
            .reshape(self.weight_codes.shape)
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.conv2d(Tensor(x_deq.astype(np.float32)),
                       Tensor(weights.astype(np.float32)),
                       None if self.bias is None
                       else Tensor(self.bias.astype(np.float32)),
                       stride=self.stride, padding=self.padding)
        return out


class QuantizedConvTranspose2d(Module):
    """A transposed convolution executed in integer arithmetic.

    Weight layout is IOHW (matching :class:`ConvTranspose2d`); scales
    are per *output* channel, so the rescale is applied after the
    col2im scatter-add, which never mixes output channels.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, stride: int, padding: int,
                 input_scale: float, activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.stride = stride
        self.padding = padding
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        in_c = self.weight_codes.shape[0]
        w_mat = self.weight_codes.reshape(in_c, -1)
        # Scatter columns (out-channel, ki, kj) that no input channel
        # writes to — all-zero weights, skipped exactly.
        self._keep_cols = np.any(w_mat != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``."""
        in_c, _, kernel, _ = self.weight_codes.shape
        w_mat = self.weight_codes.reshape(in_c, -1)
        # (kept, in_c): rows are the kept scatter columns, ready for the
        # (kept, in_c) @ (n, in_c, h·w) gemm.
        self._w_keptT = np.ascontiguousarray(w_mat[:, self._keep_cols].T)
        self._w_keptT_f64 = self._w_keptT.astype(np.float64)
        self._kept = int(self._keep_cols.sum())
        max_w = int(np.abs(self._w_keptT).max()) if self._w_keptT.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        # Each scatter-added output cell sums at most k·k contributors,
        # each an in_c-length dot: |acc| <= k²·in_c·max|w|·max|x|.
        self._use_gemm = (kernel * kernel * in_c * max_w * act_max
                          < _EXACT_ACC_LIMIT)
        self._plans: dict = {}

    def _shape_plan(self, h: int, w: int):
        """The kept-column scatter plan for one input spatial shape."""
        key = (h, w)
        plan = self._plans.get(key)
        if plan is None:
            _, out_c, kernel, _ = self.weight_codes.shape
            out_h = (h - 1) * self.stride - 2 * self.padding + kernel
            out_w = (w - 1) * self.stride - 2 * self.padding + kernel
            plan = col2im_plan(out_c, out_h, out_w, kernel, self.stride,
                               self.padding).restrict(self._keep_cols)
            if len(self._plans) >= _MAX_SHAPE_PLANS:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
        return plan

    @staticmethod
    def from_float(deconv: ConvTranspose2d, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedConvTranspose2d":
        """Quantize a float deconvolution with per-out-channel scales."""
        weights = deconv.weight.data.astype(np.float64)     # (in, out, k, k)
        out_c = weights.shape[1]
        per_out = weights.transpose(1, 0, 2, 3).reshape(out_c, -1)
        codes_t, scales = _per_channel_codes(per_out, weight_bits)
        codes = codes_t.reshape(out_c, weights.shape[0],
                                *weights.shape[2:]).transpose(1, 0, 2, 3)
        bias = None if deconv.bias is None else deconv.bias.data
        return QuantizedConvTranspose2d(codes, scales, bias, deconv.stride,
                                        deconv.padding, input_scale,
                                        activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        n, c, h, w = data.shape
        in_c = self.weight_codes.shape[0]
        telemetry = self.telemetry
        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits,
                                      telemetry=telemetry)
        use_gemm = self._use_gemm
        x_mat = x_codes.reshape(n, in_c, h * w)
        if use_gemm or np.dtype(dtype) != np.int64:
            x_mat = x_mat.astype(np.float64)
        if use_gemm:
            cols = _batched_gemm(self._w_keptT_f64, x_mat)
        elif np.dtype(dtype) == np.int64:
            cols = np.einsum("oi,nip->nop", self._w_keptT, x_mat)
        else:
            cols = np.einsum("oi,nip->nop", self._w_keptT_f64, x_mat)
        acc = self._shape_plan(h, w).apply(cols)
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=n * in_c * self._kept * h * w,
                columns_total=n * keep.size,
                columns_skipped=n * (keep.size - self._kept),
                frames=n)
            if acc.size:
                # Range of the *scatter-added* accumulator — the value
                # the 2^53 exactness bound must cover.
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray) -> Tensor:
        rescale = self.weight_scales[None, :, None, None] * self.input_scale
        out = acc.astype(np.float64) * rescale
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return Tensor(out.astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return self._finish(self._accumulate(_as_array(x), np.int64))

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        return self._finish(self._accumulate(_as_array(x), np.float64))

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """Float32 view via the normal deconvolution pipeline."""
        out_c = self.weight_codes.shape[1]
        weights = (self.weight_codes.transpose(1, 0, 2, 3)
                   .reshape(out_c, -1) * self.weight_scales[:, None]) \
            .reshape(out_c, self.weight_codes.shape[0],
                     *self.weight_codes.shape[2:]).transpose(1, 0, 2, 3)
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.conv_transpose2d(Tensor(x_deq.astype(np.float32)),
                                 Tensor(weights.astype(np.float32)),
                                 None if self.bias is None
                                 else Tensor(self.bias.astype(np.float32)),
                                 stride=self.stride, padding=self.padding)
        return out


class QuantizedLinear(Module):
    """An affine layer executed in integer arithmetic.

    Weight layout is (out, in) with per-output-row scales.  Input
    features whose weight column is entirely zero (pruned in every
    output row) are skipped before the integer matmul.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, input_scale: float,
                 activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        self._keep_cols = np.any(self.weight_codes != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``."""
        self._w_kept = np.ascontiguousarray(
            self.weight_codes[:, self._keep_cols])
        self._w_kept_f64 = self._w_kept.astype(np.float64)
        self._keep_idx = np.flatnonzero(self._keep_cols)
        self._kept = int(self._keep_idx.size)
        max_w = int(np.abs(self._w_kept).max()) if self._w_kept.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        self._use_gemm = self._kept * max_w * act_max < _EXACT_ACC_LIMIT

    @staticmethod
    def from_float(linear: Linear, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedLinear":
        """Quantize a float affine layer with per-row weight scales."""
        weights = linear.weight.data.astype(np.float64)
        codes, scales = _per_channel_codes(weights, weight_bits)
        bias = None if linear.bias is None else linear.bias.data
        return QuantizedLinear(codes, scales, bias, input_scale,
                               activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        in_features = self.weight_codes.shape[1]
        telemetry = self.telemetry
        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits,
                                      telemetry=telemetry)
        # A leading batch dimension (ndim > 2) folds into the row axis:
        # one gemm covers the whole micro-batch.
        frames = data.shape[0] if data.ndim > 2 else 1
        x_mat = x_codes.reshape(-1, in_features)
        if self._kept != in_features:
            x_mat = x_mat.take(self._keep_idx, axis=1)
        if self._use_gemm:
            acc = x_mat.astype(np.float64) @ self._w_kept_f64.T
        elif np.dtype(dtype) == np.int64:
            acc = x_mat @ self._w_kept.T
        else:
            acc = x_mat.astype(np.float64) @ self._w_kept_f64.T
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=x_mat.shape[0] * self._kept * self._w_kept.shape[0],
                columns_total=frames * keep.size,
                columns_skipped=frames * (keep.size - self._kept),
                frames=frames)
            if acc.size:
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray, input_shape: tuple) -> Tensor:
        out = acc.astype(np.float64) \
            * (self.weight_scales[None, :] * self.input_scale)
        if self.bias is not None:
            out = out + self.bias[None, :]
        out_shape = input_shape[:-1] + (self.weight_codes.shape[0],)
        return Tensor(out.reshape(out_shape).astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.int64), data.shape)

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.float64), data.shape)

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """Float32 view via the normal affine pipeline."""
        weights = self.weight_codes * self.weight_scales[:, None]
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.linear(Tensor(x_deq.astype(np.float32)),
                       Tensor(weights.astype(np.float32)),
                       None if self.bias is None
                       else Tensor(self.bias.astype(np.float32)))
        return out
