"""Integer-arithmetic inference for quantized layers.

Fake quantization (the training-side view used everywhere else in the
repo) keeps weights as floats that happen to lie on an integer grid.
Deployment engines instead run the *integer* arithmetic directly:
``y = (W_q @ x_q) · s_w · s_x``.  This module implements that path for
every kernel layer the IR knows — :class:`QuantizedConv2d`,
:class:`QuantizedConvTranspose2d`, :class:`QuantizedLinear` — so the
runtime can execute a compressed model on real integer MACs
(Jacob et al., the paper's [35]).

Two guarantees make the executors testable:

* **Pattern-aware skipping is exact.**  Pruned kernel positions are
  zero *codes*; im2col columns (conv), scatter columns (deconv) and
  input features (linear) whose weights are all-zero are skipped before
  the integer matmul, and skipping a zero integer column cannot change
  an integer accumulation.
* **``reference()`` is bit-for-bit.**  Each executor's ``reference``
  method runs the float-side semantics — dequantize *after* the
  accumulation — in float64.  Integer sums of b≤16-bit codes stay far
  below 2⁵³, so the float64 accumulation is exact and equals the int64
  accumulation; both paths then apply the identical rescale multiply,
  producing identical bit patterns.  This is the parity the
  ``execution="lowered"`` runtime asserts against
  ``execution="reference"``.

Each executor carries an opt-in ``telemetry`` slot (a
:class:`repro.runtime.telemetry.LayerTelemetry`); when set, the shared
``_accumulate`` core counts executed MACs, skipped vs. total columns,
activation saturation, and the accumulator extrema.  Counters only
observe values both paths already compute, so attaching them cannot
perturb either guarantee (see ``docs/OBSERVABILITY.md``).

Batching and compile-once packing (see ``docs/PERFORMANCE.md``):

* Every executor accepts a leading batch dimension and runs the whole
  micro-batch through **one** matmul.  Because both accumulation paths
  are exact, the batched result is *byte-identical* to stacking the
  per-frame results — summation blocking cannot change an exact sum.
* The pruned weight matrix is **compacted once** at construction
  (:meth:`_compact`): ``weight_codes`` reduced to the ``_keep_cols``
  columns, instead of boolean-masked on every forward.
* The im2col / scatter geometry comes from the shape-keyed plan cache
  in :mod:`repro.nn.functional`, restricted to the kept columns and
  memoized per input shape on the executor.
* When the a-priori accumulator bound certifies every intermediate sum
  stays below 2⁵³ (true for all 4–16-bit configurations this repo
  produces), both paths share a float64 BLAS gemm whose result is the
  exact integer accumulation; otherwise each path falls back to an
  int64/float64 einsum.

Occupancy-gated dynamic sparsity (``execution="lowered-sparse"``; see
``docs/PERFORMANCE.md``): under an active
:class:`~repro.nn.occupancy.OccupancyContext` the executors
additionally skip work that the *activations* make dead, on top of the
static weight-pattern skips:

* The context only **gates** the machinery; every decision derives
  from one-pass scans of the layer's actual inputs, so sparse
  execution is unconditionally bit-identical to dense — a wrong or
  stale context can only cost speed, never bits.
* The conv path restricts itself to the nonzero-support window
  (receptive-field-dilated, via the memoized window plans) and then
  **subsets the cached gather indices to the union-active columns
  before the gather** — the gather, not the gemm, dominates a lowered
  conv, so eliminated columns are never materialized at all; their
  accumulators are reconstructed as exact zeros.
* With no telemetry attached, quantization is **deferred onto the
  gathered columns** (quantize∘gather ≡ gather∘quantize elementwise;
  occupancy is scanned on the float input, whose support is a
  conservative superset of the code support).  Attached telemetry
  forces eager quantization so the saturation counters see every
  value.
* A work floor (:data:`_MIN_DYNAMIC_WORK`) keeps layers whose gather
  is too small to amortize the scans on the plain dense path.
"""

from __future__ import annotations

import threading

import numpy as np

from .functional import (col2im_plan, col2im_window_plan, im2col_plan,
                         im2col_window_plan)
from .layers import Conv2d, ConvTranspose2d, Linear
from .module import Module
from .occupancy import current_occupancy
from .tensor import Tensor

__all__ = ["QuantizedConv2d", "QuantizedConvTranspose2d", "QuantizedLinear",
           "activation_scale", "quantize_activation"]

#: Accumulator magnitude below which float64 integer arithmetic is exact
#: (kept equal to ``2 ** repro.runtime.telemetry.ACC_EXACT_BITS``; not
#: imported to keep :mod:`repro.nn` free of runtime dependencies).
_EXACT_ACC_LIMIT = 2 ** 53

#: Per-executor cap on memoized input-shape (and windowed) plans.
_MAX_SHAPE_PLANS = 16


def _memoized_plan(plans: dict, lock: threading.Lock, key, build):
    """Thread-safe get-or-build on an executor's bounded plan memo.

    The forward path is documented concurrency-safe (concurrent
    serving streams share one compiled program — see
    ``docs/SERVING.md``), so every get / FIFO-evict / insert on the
    per-executor ``_plans`` dict happens under its lock.  ``build``
    runs *outside* the lock (plan construction gathers large index
    arrays); when two threads race on a cold key, the first insert
    wins and both return the same entry, keeping every caller
    consistent.
    """
    with lock:
        entry = plans.get(key)
    if entry is not None:
        return entry
    built = build()
    with lock:
        entry = plans.get(key)
        if entry is None:
            while len(plans) >= _MAX_SHAPE_PLANS:
                plans.pop(next(iter(plans)))
            plans[key] = built
            entry = built
    return entry

#: Sentinel window: the layer input is verified all-zero, so the whole
#: accumulator is reconstructed as zeros without touching a matmul.
_EMPTY_WINDOW = "empty"


#: A window below this much of the full area is not worth restricting
#: the plan for (per-column elimination still applies on the dense
#: gather, so a near-full window loses almost nothing by running dense).
_WINDOW_FULL_FRACTION = 15 / 16

#: Column elimination runs only when at least this fraction of gathered
#: columns is all-zero — below it the subset/embed copies cost more
#: than the gather and matmul work they save.
_MIN_COLUMN_SKIP = 1 / 8

#: Dynamic sparsity machinery (occupancy scans, dilation, windows,
#: column subsetting) only engages when the layer's gather is at least
#: this many elements (``kept rows × positions``).  Below the floor the
#: dense kernel finishes in microseconds and the scans alone would cost
#: more than they can save, so sparse mode runs the layer dense — which
#: is trivially bit-identical.  Telemetry overrides the floor: when a
#: counter is attached the scans run anyway so the dynamic-skip and
#: occupancy counters stay meaningful on every layer.
_MIN_DYNAMIC_WORK = 1 << 15


def _support_window(occupied: np.ndarray) -> tuple[int, int, int, int] | None:
    """Tight nonzero-support bbox of an ``(h, w)`` occupancy map.

    The map comes from one pass over the actual codes, so the bbox is
    exact *by construction* — everything outside it really is zero,
    and windowed execution never depends on the occupancy context
    being right (a stale or adversarial context only gates the scan,
    it cannot shrink the window below the true support).  A canvas
    bbox could not be trusted this way: each 3×3 conv grows the actual
    support by a one-pixel halo, so a few layers into the backbone the
    scaled canvas bbox no longer bounds it.  Returns ``None`` when the
    map is entirely empty.
    """
    rows = np.flatnonzero(occupied.any(axis=1))
    if rows.size == 0:
        return None
    cols = np.flatnonzero(occupied.any(axis=0))
    return (int(rows[0]), int(rows[-1]) + 1,
            int(cols[0]), int(cols[-1]) + 1)


def _dilate_columns(occ: np.ndarray, kernel: int, stride: int,
                    padding: int, out_h: int, out_w: int) -> np.ndarray:
    """Which output positions read at least one occupied input cell.

    ``occ`` is the per-frame ``(n, h, w)`` collapsed occupancy of the
    input codes; the k×k boolean dilation below is the *exact*
    column-nonzero condition of the im2col gather — an output position
    is all-zero iff no cell of its receptive field holds any nonzero
    channel.  k² strided OR-accumulations over an ``(n, out_h, out_w)``
    bool array cost far less than scanning the gathered columns
    themselves (k²·c values per position).
    """
    n, h, w = occ.shape
    if kernel == 1 and stride == 1 and padding == 0:
        # 1×1 geometry: the columns *are* the cells.
        return occ
    if padding:
        padded = np.zeros((n, h + 2 * padding, w + 2 * padding),
                          dtype=bool)
        padded[:, padding:padding + h, padding:padding + w] = occ
    else:
        padded = occ
    active = np.zeros((n, out_h, out_w), dtype=bool)
    span_h = (out_h - 1) * stride + 1
    span_w = (out_w - 1) * stride + 1
    for ki in range(kernel):
        for kj in range(kernel):
            active |= padded[:, ki:ki + span_h:stride,
                             kj:kj + span_w:stride]
    return active


def _bucket_window(window: tuple[int, int, int, int], h: int, w: int,
                   buckets: int = 8) -> tuple[int, int, int, int]:
    """Round a support window outward onto a coarse grid.

    Per-frame support boxes differ by a pixel or two between frames;
    without bucketing every frame would miss the memoized window-plan
    caches and pay a plan rebuild.  Rounding outward keeps exactness
    (the expanded window still contains the full support) while
    collapsing nearby windows onto at most ``buckets``² cache keys.
    """
    r0, r1, c0, c1 = window
    bh = max(1, h // buckets)
    bw = max(1, w // buckets)
    return (r0 // bh * bh, min(h, -(-r1 // bh) * bh),
            c0 // bw * bw, min(w, -(-c1 // bw) * bw))


def _record_occupancy(telemetry, context, frames: int) -> None:
    """Fold the observed canvas occupancy into a layer's counters."""
    cells = context.canvas_cells
    if telemetry is not None and cells:
        telemetry.record_occupancy(frames * cells,
                                   frames * context.occupied_cells)


def _batched_gemm(w: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``(o, k) @ (n, k, p) -> (n, o, p)`` as one broadcast BLAS gemm.

    ``matmul`` broadcasts the stacked operand without materializing a
    rearranged copy of ``cols``, which is what makes the batched path
    cheaper than ``n`` separate calls.  Only used when the accumulation
    is certified exact, where any summation order or blocking yields
    the identical integer result.
    """
    if cols.shape[0] == 1:
        return np.matmul(w, cols[0])[None]
    return np.matmul(w, cols)


def _matmul_skip_zero_columns(w: np.ndarray, cols: np.ndarray,
                              int_work: bool, use_gemm: bool,
                              active: np.ndarray | None
                              ) -> tuple[np.ndarray, int]:
    """``(o, k) @ (n, k, p)`` eliminating verified all-zero columns.

    ``active`` is the precomputed ``(n, p)`` column-activity mask
    (``None`` runs dense) — derived from the actual input codes, so an
    inactive column is *verified* all-zero.  Returns ``(acc,
    executed)`` where ``executed`` counts the columns that hit the
    matmul.  When enough columns are inactive the matmul runs on the
    active subset and the rest is reconstructed as exact zeros —
    bit-for-bit what the dense product yields for them, since zero
    codes accumulate to exact zeros in int64 and certified float64
    alike (the ``-0.0`` a float product can leave is canonicalized by
    ``_finish``).  Each surviving column's dot product reduces over
    the untouched ``k`` axis in the same order as the dense call, so
    the active subset is byte-identical too.
    """
    n, k, p = cols.shape
    total = n * p

    def dense() -> np.ndarray:
        if use_gemm:
            return _batched_gemm(w, cols)
        return np.einsum("ok,nkp->nop", w, cols)

    if active is None or total == 0:
        return dense(), total
    executed = int(active.sum())
    if total - executed < max(1, int(total * _MIN_COLUMN_SKIP)):
        return dense(), total
    acc = np.zeros((n, w.shape[0], p),
                   dtype=np.int64 if int_work else np.float64)
    if executed:
        sel = cols.swapaxes(0, 1)[:, active]
        if use_gemm:
            res = np.matmul(w, sel)
        else:
            res = np.einsum("ok,ka->oa", w, sel)
        acc.swapaxes(0, 1)[:, active] = res
    return acc, executed


def activation_scale(x: np.ndarray, bits: int = 8) -> float:
    """Symmetric max-calibrated scale for an activation tensor."""
    max_code = 2 ** (bits - 1) - 1
    alpha = float(np.abs(x).max())
    return alpha / max_code if alpha > 0 else 1.0


def quantize_activation(x: np.ndarray, scale: float,
                        bits: int = 8, telemetry=None) -> np.ndarray:
    """Activation → integer codes at a fixed scale.

    ``telemetry`` (a :class:`repro.runtime.telemetry.LayerTelemetry`)
    optionally counts how many values saturate — round outside
    ``[-max_code, max_code]`` and get clipped, i.e. fall outside the
    calibrated range.  Counting never changes the returned codes.
    """
    max_code = 2 ** (bits - 1) - 1
    rounded = np.round(x / scale)
    if telemetry is not None:
        telemetry.record_quantization(
            rounded.size, int((np.abs(rounded) > max_code).sum()))
    return np.clip(rounded, -max_code, max_code).astype(np.int64)


def _per_channel_codes(flat: np.ndarray, bits: int):
    """Quantize (channels, k) rows to integer codes + per-row scales."""
    max_code = 2 ** (bits - 1) - 1
    alphas = np.abs(flat).max(axis=1)
    scales = np.where(alphas > 0, alphas / max_code, 1.0)
    codes = np.clip(np.round(flat / scales[:, None]), -max_code, max_code)
    return codes.astype(np.int64), scales.astype(np.float64)


def _as_array(x) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x)


class QuantizedConv2d(Module):
    """A convolution executed in integer arithmetic.

    Weights are stored as int64 codes with one scale per output filter
    (per-channel quantization, the deployment-standard granularity);
    activations are quantized on entry with a calibration scale.
    Pattern-pruned weight columns are skipped in im2col.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, stride: int, padding: int,
                 input_scale: float, activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.stride = stride
        self.padding = padding
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        # Columns of the (out_c, in_c·k·k) weight matrix where *every*
        # filter is zero — the positions pattern pruning blanked in all
        # kernels of an input channel.  Skipped exactly (zero columns
        # contribute nothing to an integer accumulation).
        w_mat = self.weight_codes.reshape(self.weight_codes.shape[0], -1)
        self._keep_cols = np.any(w_mat != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``.

        Call after mutating ``_keep_cols``; also clears the per-shape
        plan cache, whose gather indices embed the kept columns.
        """
        out_c = self.weight_codes.shape[0]
        w_mat = self.weight_codes.reshape(out_c, -1)
        self._w_kept = np.ascontiguousarray(w_mat[:, self._keep_cols])
        self._w_kept_f64 = self._w_kept.astype(np.float64)
        self._kept = int(self._keep_cols.sum())
        max_w = int(np.abs(self._w_kept).max()) if self._w_kept.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        # |acc| <= kept · max|w| · max|x|: when below 2^53 every partial
        # sum is an exactly-representable float64 integer, certifying
        # the shared BLAS gemm path.
        self._use_gemm = self._kept * max_w * act_max < _EXACT_ACC_LIMIT
        self._plans: dict = {}
        # Guards every get/evict/insert on _plans: the forward path may
        # be driven by concurrent serving streams.  (Re)compaction
        # itself stays a single-threaded construction-time operation.
        self._plans_lock = threading.Lock()

    def _shape_plan(self, c: int, h: int, w: int):
        """Kept-column gather indices + geometry for one input shape."""

        def build():
            kernel = self.weight_codes.shape[-1]
            geometry = im2col_plan(c, h, w, kernel, self.stride,
                                   self.padding)
            idx = geometry.indices if self._keep_cols.all() \
                else geometry.indices[self._keep_cols]
            return (idx.ravel(), geometry)

        return _memoized_plan(self._plans, self._plans_lock,
                              (c, h, w), build)

    def _window_plan(self, c: int, h: int, w: int, window: tuple):
        """Kept-column gather indices restricted to an output window."""

        def build():
            kernel = self.weight_codes.shape[-1]
            plan = im2col_window_plan(c, h, w, kernel, self.stride,
                                      self.padding, window)
            idx = plan.indices if self._keep_cols.all() \
                else plan.indices[self._keep_cols]
            return (idx.ravel(), plan)

        return _memoized_plan(self._plans, self._plans_lock,
                              (c, h, w, window), build)

    def _dynamic_window(self, occ: np.ndarray, h: int, w: int,
                        geometry):
        """The occupancy-derived output window, if one applies.

        ``occ`` is the collapsed ``(n, h, w)`` occupancy of the input
        codes.  Returns ``None`` (run dense), :data:`_EMPTY_WINDOW`
        (the input is verified all-zero — reconstruct a zero
        accumulator), or a half-open ``(oi0, oi1, oj0, oj1)``
        output-position window whose complement provably accumulates
        to zero.  The window is the codes' own nonzero-support bbox
        (:func:`_support_window`), so exactness never depends on the
        occupancy context being right: the context only gates the
        scan, and a stale or wrong context can only cost speed, never
        bits.  Near-full windows run dense — per-column elimination on
        the dense gather covers them.
        """
        support = _support_window(occ.any(axis=0))
        if support is None:
            return _EMPTY_WINDOW
        r0, r1, c0, c1 = _bucket_window(support, h, w)
        if (r1 - r0) * (c1 - c0) >= _WINDOW_FULL_FRACTION * h * w:
            return None
        kernel = self.weight_codes.shape[-1]
        stride, pad = self.stride, self.padding
        # Output position oi reads input rows [oi·s − p, oi·s − p + k);
        # keep exactly those intersecting the occupied rows [r0, r1).
        oi0 = max(0, -(-(r0 + pad - kernel + 1) // stride))
        oi1 = min(geometry.out_h, (r1 - 1 + pad) // stride + 1)
        oj0 = max(0, -(-(c0 + pad - kernel + 1) // stride))
        oj1 = min(geometry.out_w, (c1 - 1 + pad) // stride + 1)
        if oi0 >= oi1 or oj0 >= oj1:
            # No output position reads an occupied cell: every column
            # is all-zero.
            return _EMPTY_WINDOW
        if (oi1 - oi0) * (oj1 - oj0) \
                >= _WINDOW_FULL_FRACTION * geometry.positions:
            return None
        return (oi0, oi1, oj0, oj1)

    @staticmethod
    def from_float(conv: Conv2d, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedConv2d":
        """Quantize a float convolution with per-filter weight scales."""
        weights = conv.weight.data.astype(np.float64)
        out_c = weights.shape[0]
        codes, scales = _per_channel_codes(weights.reshape(out_c, -1),
                                           weight_bits)
        bias = None if conv.bias is None else conv.bias.data
        return QuantizedConv2d(codes.reshape(weights.shape), scales, bias,
                               conv.stride, conv.padding, input_scale,
                               activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        """Shared core: quantize → gather kept columns → one matmul.

        ``dtype=int64`` is the deployment path; ``dtype=float64`` is the
        reference semantics.  Both see the same codes and the same
        skipped columns, and both accumulations are exact, so they
        return equal values — and when the compaction-time bound
        certified exactness, both share the float64 gemm outright.  The
        whole micro-batch (leading ``n``) runs as one matmul, which is
        byte-identical to ``n`` single-frame calls because exact sums
        are blocking-independent.

        Under an active :class:`~repro.nn.occupancy.OccupancyContext`
        (sparse lowered execution) the gather additionally restricts to
        the verified occupied output window and then to the columns
        that read at least one occupied cell — the subsetting happens
        on the *plan indices*, before the gather, so skipped columns
        are never materialized at all; their accumulators are
        reconstructed as exact zeros.  Both restrictions derive from
        scans of the actual codes, so the sparse path is
        unconditionally bit-for-bit: every surviving position's dot
        product reduces over identical kept rows in identical order.
        """
        n, c, h, w = data.shape
        out_c = self.weight_codes.shape[0]
        telemetry = self.telemetry
        idx, geometry = self._shape_plan(c, h, w)
        use_gemm = self._use_gemm
        int_work = not use_gemm and np.dtype(dtype) == np.int64
        acc_dtype = np.int64 if int_work else np.float64
        context = current_occupancy()
        dynamic = context is not None and (
            telemetry is not None
            or self._kept * geometry.positions >= _MIN_DYNAMIC_WORK)
        # With no counters attached, quantization is deferred onto the
        # gathered columns (quantization is elementwise and zero maps
        # to code zero, so quantize∘gather ≡ gather∘quantize); the
        # occupancy scan then runs on the float input, whose nonzero
        # support is a superset of the code support — conservative,
        # hence still exact.  Attached telemetry forces eager
        # quantization so the saturation counters see every value.
        defer_quant = dynamic and telemetry is None
        if defer_quant:
            x_codes = None
            occ = data.astype(bool).any(axis=1)
        else:
            x_codes = quantize_activation(data, self.input_scale,
                                          self.activation_bits,
                                          telemetry=telemetry)
            occ = x_codes.any(axis=1) if dynamic else None
        window = None if occ is None \
            else self._dynamic_window(occ, h, w, geometry)
        if window is _EMPTY_WINDOW:
            acc = np.zeros((n, out_c, geometry.positions), dtype=acc_dtype)
            executed = 0
        else:
            if window is not None:
                idx, plan = self._window_plan(c, h, w, window)
            else:
                plan = geometry
            act_idx = None
            if occ is not None:
                kernel = self.weight_codes.shape[-1]
                active = _dilate_columns(occ, kernel, self.stride,
                                         self.padding, geometry.out_h,
                                         geometry.out_w)
                if window is not None:
                    oi0, oi1, oj0, oj1 = window
                    active = active[:, oi0:oi1, oj0:oj1]
                # Column subsetting shares one gather across the
                # micro-batch, so the eliminated set is the columns
                # inactive in *every* frame (the union of the
                # per-frame activity masks survives).
                union = active.reshape(n, plan.positions).any(axis=0)
                inactive = plan.positions - int(union.sum())
                if inactive >= max(1, int(plan.positions
                                          * _MIN_COLUMN_SKIP)):
                    act_idx = np.flatnonzero(union)
            w_mat = self._w_kept if int_work else self._w_kept_f64
            if act_idx is not None:
                # Restrict the gather itself: subset the cached index
                # matrix to the active columns, gather only those, and
                # embed the products back at their positions.  The
                # gather is the dominant cost of a lowered conv, so
                # this is where eliminated columns actually pay off.
                sub = idx.reshape(self._kept, plan.positions) \
                    .take(act_idx, axis=1)
                if x_codes is None \
                        and act_idx.size * self._kept >= data.size:
                    # Deferring only pays while the gathered subset is
                    # smaller than the input (k>1 gathers duplicate
                    # cells k² times); otherwise quantize eagerly.
                    x_codes = quantize_activation(
                        data, self.input_scale, self.activation_bits)
                source = data if x_codes is None else x_codes
                cols = plan.pad(source).reshape(n, -1) \
                    .take(sub.ravel(), axis=1) \
                    .reshape(n, self._kept, act_idx.size)
                if x_codes is None:
                    cols = quantize_activation(cols, self.input_scale,
                                               self.activation_bits)
                if not int_work:
                    cols = cols.astype(np.float64)
                if use_gemm:
                    res = _batched_gemm(w_mat, cols)
                else:
                    res = np.einsum("ok,nkp->nop", w_mat, cols)
                acc = np.zeros((n, out_c, plan.positions),
                               dtype=res.dtype)
                acc[:, :, act_idx] = res
                executed = n * int(act_idx.size)
            else:
                if x_codes is None:
                    x_codes = quantize_activation(
                        data, self.input_scale, self.activation_bits)
                work = x_codes if int_work else x_codes.astype(np.float64)
                cols = plan.pad(work).reshape(n, -1).take(idx, axis=1) \
                    .reshape(n, self._kept, plan.positions)
                if use_gemm:
                    acc = _batched_gemm(w_mat, cols)
                else:
                    acc = np.einsum("ok,nkp->nop", w_mat, cols)
                executed = n * plan.positions
            if window is not None:
                oi0, oi1, oj0, oj1 = window
                full = np.zeros((n, out_c, geometry.out_h, geometry.out_w),
                                dtype=acc.dtype)
                full[:, :, oi0:oi1, oj0:oj1] = acc.reshape(
                    n, out_c, oi1 - oi0, oj1 - oj0)
                acc = full.reshape(n, out_c, geometry.positions)
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=out_c * self._kept * executed,
                columns_total=n * keep.size,
                columns_skipped=n * (keep.size - self._kept),
                frames=n)
            if context is not None:
                telemetry.record_dynamic(
                    n * geometry.positions,
                    n * geometry.positions - executed)
                _record_occupancy(telemetry, context, n)
            if acc.size:
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray, input_shape: tuple) -> Tensor:
        n, _, h, w = input_shape
        out_c = self.weight_codes.shape[0]
        kernel = self.weight_codes.shape[-1]
        out_h = (h + 2 * self.padding - kernel) // self.stride + 1
        out_w = (w + 2 * self.padding - kernel) // self.stride + 1
        rescale = self.weight_scales[None, :, None] * self.input_scale
        out = acc.astype(np.float64) * rescale
        out = out.reshape(n, out_c, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        else:
            # Canonicalize zero signs: a dense matmul over an all-zero
            # column can yield -0.0 where the occupancy-windowed path
            # reconstructs +0.0.  Adding 0.0 maps -0.0 to +0.0 and is
            # the identity elsewhere, so every execution mode emits the
            # same bytes.
            out = out + 0.0
        return Tensor(out.astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        data = _as_array(x)
        # The integer core: exact accumulation of the int64 codes (via
        # the certified gemm when the bound holds), exactly as a
        # deployment engine's INT8 MACs with a 32/64-bit accumulator.
        return self._finish(self._accumulate(data, np.int64), data.shape)

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.float64), data.shape)

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """The float32 training-side view: dequantized weights convolved
        with the quantized input by the normal float pipeline.

        Used by tests to assert integer execution ≈ fake quantization
        (within float32 rounding of the rescale — one ulp per output).
        """
        weights = (self.weight_codes.reshape(len(self.weight_scales), -1)
                   * self.weight_scales[:, None]) \
            .reshape(self.weight_codes.shape)
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.conv2d(Tensor(x_deq.astype(np.float32)),
                       Tensor(weights.astype(np.float32)),
                       None if self.bias is None
                       else Tensor(self.bias.astype(np.float32)),
                       stride=self.stride, padding=self.padding)
        return out


class QuantizedConvTranspose2d(Module):
    """A transposed convolution executed in integer arithmetic.

    Weight layout is IOHW (matching :class:`ConvTranspose2d`); scales
    are per *output* channel, so the rescale is applied after the
    col2im scatter-add, which never mixes output channels.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, stride: int, padding: int,
                 input_scale: float, activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.stride = stride
        self.padding = padding
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        in_c = self.weight_codes.shape[0]
        w_mat = self.weight_codes.reshape(in_c, -1)
        # Scatter columns (out-channel, ki, kj) that no input channel
        # writes to — all-zero weights, skipped exactly.
        self._keep_cols = np.any(w_mat != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``."""
        in_c, _, kernel, _ = self.weight_codes.shape
        w_mat = self.weight_codes.reshape(in_c, -1)
        # (kept, in_c): rows are the kept scatter columns, ready for the
        # (kept, in_c) @ (n, in_c, h·w) gemm.
        self._w_keptT = np.ascontiguousarray(w_mat[:, self._keep_cols].T)
        self._w_keptT_f64 = self._w_keptT.astype(np.float64)
        self._kept = int(self._keep_cols.sum())
        max_w = int(np.abs(self._w_keptT).max()) if self._w_keptT.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        # Each scatter-added output cell sums at most k·k contributors,
        # each an in_c-length dot: |acc| <= k²·in_c·max|w|·max|x|.
        self._use_gemm = (kernel * kernel * in_c * max_w * act_max
                          < _EXACT_ACC_LIMIT)
        self._plans: dict = {}
        # Same discipline as QuantizedConv2d: the memo must be safe
        # under concurrent forward callers.
        self._plans_lock = threading.Lock()

    def _shape_plan(self, h: int, w: int):
        """The kept-column scatter plan for one input spatial shape."""

        def build():
            _, out_c, kernel, _ = self.weight_codes.shape
            out_h = (h - 1) * self.stride - 2 * self.padding + kernel
            out_w = (w - 1) * self.stride - 2 * self.padding + kernel
            return col2im_plan(out_c, out_h, out_w, kernel, self.stride,
                               self.padding).restrict(self._keep_cols)

        return _memoized_plan(self._plans, self._plans_lock,
                              (h, w), build)

    def _out_shape(self, h: int, w: int) -> tuple[int, int]:
        kernel = self.weight_codes.shape[-1]
        return ((h - 1) * self.stride - 2 * self.padding + kernel,
                (w - 1) * self.stride - 2 * self.padding + kernel)

    def _window_scatter_plan(self, h: int, w: int, out_window: tuple):
        """Kept-column scatter plan over an output-cell window."""

        def build():
            _, out_c, kernel, _ = self.weight_codes.shape
            out_h, out_w = self._out_shape(h, w)
            return col2im_window_plan(out_c, out_h, out_w, kernel,
                                      self.stride, self.padding,
                                      out_window).restrict(self._keep_cols)

        return _memoized_plan(self._plans, self._plans_lock,
                              (h, w, out_window), build)

    def _dynamic_window(self, occ: np.ndarray, h: int, w: int):
        """The occupancy-derived *input* window, if one applies.

        ``occ`` is the collapsed ``(n, h, w)`` occupancy of the input
        codes.  Returns ``None`` (dense), :data:`_EMPTY_WINDOW` (input
        verified all-zero), or a half-open input window whose
        complement is verified zero — its scatter image is then the
        only output region that can be nonzero.  The window is the
        codes' own support bbox, bucketed like the conv counterpart;
        near-full windows run dense (column elimination covers them).
        """
        support = _support_window(occ.any(axis=0))
        if support is None:
            return _EMPTY_WINDOW
        r0, r1, c0, c1 = _bucket_window(support, h, w)
        if (r1 - r0) * (c1 - c0) >= _WINDOW_FULL_FRACTION * h * w:
            return None
        return (r0, r1, c0, c1)

    @staticmethod
    def from_float(deconv: ConvTranspose2d, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedConvTranspose2d":
        """Quantize a float deconvolution with per-out-channel scales."""
        weights = deconv.weight.data.astype(np.float64)     # (in, out, k, k)
        out_c = weights.shape[1]
        per_out = weights.transpose(1, 0, 2, 3).reshape(out_c, -1)
        codes_t, scales = _per_channel_codes(per_out, weight_bits)
        codes = codes_t.reshape(out_c, weights.shape[0],
                                *weights.shape[2:]).transpose(1, 0, 2, 3)
        bias = None if deconv.bias is None else deconv.bias.data
        return QuantizedConvTranspose2d(codes, scales, bias, deconv.stride,
                                        deconv.padding, input_scale,
                                        activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        n, c, h, w = data.shape
        in_c = self.weight_codes.shape[0]
        kernel = self.weight_codes.shape[-1]
        telemetry = self.telemetry
        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits,
                                      telemetry=telemetry)
        use_gemm = self._use_gemm
        int_work = not use_gemm and np.dtype(dtype) == np.int64
        acc_dtype = np.int64 if int_work else np.float64
        context = current_occupancy()
        dynamic = context is not None and (
            telemetry is not None
            or self._kept * h * w >= _MIN_DYNAMIC_WORK)
        occ = x_codes.any(axis=1) if dynamic else None
        window = None if occ is None else self._dynamic_window(occ, h, w)
        out_h, out_w = self._out_shape(h, w)
        if window is _EMPTY_WINDOW:
            out_c = self.weight_codes.shape[1]
            acc = np.zeros((n, out_c, out_h, out_w), dtype=acc_dtype)
            executed = 0
        elif window is not None:
            # Matmul only the occupied input positions (their complement
            # is verified zero, so its columns are exact zeros), then
            # scatter into only the output cells the window can reach.
            r0, r1, c0, c1 = window
            x_win = x_codes[:, :, r0:r1, c0:c1] \
                .reshape(n, in_c, (r1 - r0) * (c1 - c0))
            if not int_work:
                x_win = x_win.astype(np.float64)
            active = occ[:, r0:r1, c0:c1].reshape(n, -1)
            w_mat = self._w_keptT if int_work else self._w_keptT_f64
            cols_win, executed = _matmul_skip_zero_columns(
                w_mat, x_win, int_work, use_gemm, active)
            cols = np.zeros((n, self._kept, h * w), dtype=cols_win.dtype)
            cols.reshape(n, self._kept, h, w)[:, :, r0:r1, c0:c1] = \
                cols_win.reshape(n, self._kept, r1 - r0, c1 - c0)
            # Input position (i, j) scatters into output rows
            # [i·s − p, i·s − p + k); the window's image bounds its
            # nonzero output support.
            ob = (max(0, r0 * self.stride - self.padding),
                  min(out_h, (r1 - 1) * self.stride - self.padding
                      + kernel),
                  max(0, c0 * self.stride - self.padding),
                  min(out_w, (c1 - 1) * self.stride - self.padding
                      + kernel))
            out_c = self.weight_codes.shape[1]
            if ob[0] >= ob[1] or ob[2] >= ob[3]:
                acc = np.zeros((n, out_c, out_h, out_w), dtype=acc_dtype)
            elif ob == (0, out_h, 0, out_w):
                acc = self._shape_plan(h, w).apply(cols)
            else:
                acc_win = self._window_scatter_plan(h, w, ob).apply(cols)
                acc = np.zeros((n, out_c, out_h, out_w),
                               dtype=acc_win.dtype)
                acc[:, :, ob[0]:ob[1], ob[2]:ob[3]] = acc_win
        else:
            x_mat = x_codes.reshape(n, in_c, h * w)
            if not int_work:
                x_mat = x_mat.astype(np.float64)
            active = None if occ is None else occ.reshape(n, h * w)
            w_mat = self._w_keptT if int_work else self._w_keptT_f64
            cols, executed = _matmul_skip_zero_columns(
                w_mat, x_mat, int_work, use_gemm, active)
            acc = self._shape_plan(h, w).apply(cols)
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=in_c * self._kept * executed,
                columns_total=n * keep.size,
                columns_skipped=n * (keep.size - self._kept),
                frames=n)
            if context is not None:
                telemetry.record_dynamic(n * h * w,
                                         n * h * w - executed)
                _record_occupancy(telemetry, context, n)
            if acc.size:
                # Range of the *scatter-added* accumulator — the value
                # the 2^53 exactness bound must cover.
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray) -> Tensor:
        rescale = self.weight_scales[None, :, None, None] * self.input_scale
        out = acc.astype(np.float64) * rescale
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        else:
            # Canonicalize zero signs (see QuantizedConv2d._finish).
            out = out + 0.0
        return Tensor(out.astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return self._finish(self._accumulate(_as_array(x), np.int64))

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        return self._finish(self._accumulate(_as_array(x), np.float64))

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """Float32 view via the normal deconvolution pipeline."""
        out_c = self.weight_codes.shape[1]
        weights = (self.weight_codes.transpose(1, 0, 2, 3)
                   .reshape(out_c, -1) * self.weight_scales[:, None]) \
            .reshape(out_c, self.weight_codes.shape[0],
                     *self.weight_codes.shape[2:]).transpose(1, 0, 2, 3)
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.conv_transpose2d(Tensor(x_deq.astype(np.float32)),
                                 Tensor(weights.astype(np.float32)),
                                 None if self.bias is None
                                 else Tensor(self.bias.astype(np.float32)),
                                 stride=self.stride, padding=self.padding)
        return out


class QuantizedLinear(Module):
    """An affine layer executed in integer arithmetic.

    Weight layout is (out, in) with per-output-row scales.  Input
    features whose weight column is entirely zero (pruned in every
    output row) are skipped before the integer matmul.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, input_scale: float,
                 activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits
        #: opt-in counter slot (LayerTelemetry); never touches outputs
        self.telemetry = None
        self._keep_cols = np.any(self.weight_codes != 0, axis=0)
        self._compact()

    def _compact(self) -> None:
        """(Re)build the packed execution structures from ``_keep_cols``."""
        self._w_kept = np.ascontiguousarray(
            self.weight_codes[:, self._keep_cols])
        self._w_kept_f64 = self._w_kept.astype(np.float64)
        self._keep_idx = np.flatnonzero(self._keep_cols)
        self._kept = int(self._keep_idx.size)
        max_w = int(np.abs(self._w_kept).max()) if self._w_kept.size else 0
        act_max = 2 ** (self.activation_bits - 1) - 1
        self._use_gemm = self._kept * max_w * act_max < _EXACT_ACC_LIMIT

    @staticmethod
    def from_float(linear: Linear, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedLinear":
        """Quantize a float affine layer with per-row weight scales."""
        weights = linear.weight.data.astype(np.float64)
        codes, scales = _per_channel_codes(weights, weight_bits)
        bias = None if linear.bias is None else linear.bias.data
        return QuantizedLinear(codes, scales, bias, input_scale,
                               activation_bits)

    def _accumulate(self, data: np.ndarray, dtype) -> np.ndarray:
        in_features = self.weight_codes.shape[1]
        out_features = self.weight_codes.shape[0]
        telemetry = self.telemetry
        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits,
                                      telemetry=telemetry)
        # A leading batch dimension (ndim > 2) folds into the row axis:
        # one gemm covers the whole micro-batch.
        frames = data.shape[0] if data.ndim > 2 else 1
        x_mat = x_codes.reshape(-1, in_features)
        if self._kept != in_features:
            x_mat = x_mat.take(self._keep_idx, axis=1)
        use_f64 = self._use_gemm or np.dtype(dtype) != np.int64
        # Under an active occupancy context (sparse lowered execution)
        # skip all-zero input rows at runtime: a zero row's accumulator
        # is exactly zero in either dtype, so reconstructing it costs
        # no bits.  No window geometry is needed — the rows themselves
        # are the evidence.
        context = current_occupancy()
        dynamic = context is not None and (
            telemetry is not None or x_mat.size >= _MIN_DYNAMIC_WORK)
        row_active = None
        if dynamic and x_mat.size:
            row_active = np.any(x_mat != 0, axis=1)
            skipped = x_mat.shape[0] - int(row_active.sum())
            if skipped < max(1, int(x_mat.shape[0] * _MIN_COLUMN_SKIP)):
                row_active = None
        if row_active is not None:
            active = int(row_active.sum())
            weights = self._w_kept_f64 if use_f64 else self._w_kept
            x_act = x_mat[row_active]
            if use_f64:
                x_act = x_act.astype(np.float64)
            acc = np.zeros((x_mat.shape[0], out_features),
                           dtype=np.float64 if use_f64 else np.int64)
            if active:
                acc[row_active] = x_act @ weights.T
        else:
            active = x_mat.shape[0]
            if use_f64:
                acc = x_mat.astype(np.float64) @ self._w_kept_f64.T
            else:
                acc = x_mat @ self._w_kept.T
        if telemetry is not None:
            keep = self._keep_cols
            telemetry.record_matmul(
                macs=active * self._kept * out_features,
                columns_total=frames * keep.size,
                columns_skipped=frames * (keep.size - self._kept),
                frames=frames)
            if context is not None:
                telemetry.record_dynamic(x_mat.shape[0],
                                         x_mat.shape[0] - active)
            if acc.size:
                telemetry.record_accumulator(acc.min(), acc.max())
        return acc

    def _finish(self, acc: np.ndarray, input_shape: tuple) -> Tensor:
        out = acc.astype(np.float64) \
            * (self.weight_scales[None, :] * self.input_scale)
        if self.bias is not None:
            out = out + self.bias[None, :]
        else:
            # Canonicalize zero signs (see QuantizedConv2d._finish).
            out = out + 0.0
        out_shape = input_shape[:-1] + (self.weight_codes.shape[0],)
        return Tensor(out.reshape(out_shape).astype(np.float32))

    def forward(self, x: Tensor) -> Tensor:
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.int64), data.shape)

    def reference(self, x: Tensor) -> Tensor:
        """Float-semantics twin: float64 accumulate, identical rescale."""
        data = _as_array(x)
        return self._finish(self._accumulate(data, np.float64), data.shape)

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """Float32 view via the normal affine pipeline."""
        weights = self.weight_codes * self.weight_scales[:, None]
        data = _as_array(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.linear(Tensor(x_deq.astype(np.float32)),
                       Tensor(weights.astype(np.float32)),
                       None if self.bias is None
                       else Tensor(self.bias.astype(np.float32)))
        return out
