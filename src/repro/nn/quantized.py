"""Integer-arithmetic inference for quantized layers.

Fake quantization (the training-side view used everywhere else in the
repo) keeps weights as floats that happen to lie on an integer grid.
Deployment engines instead run the *integer* arithmetic directly:
``y = (W_q @ x_q) · s_w · s_x``.  This module implements that path so we
can verify the two are numerically equivalent — the property that makes
TensorRT-style INT8 engines produce the same results the fake-quantized
model was validated with (Jacob et al., the paper's [35]).

``QuantizedConv2d.from_float`` captures a float convolution plus an
activation scale into integer weights; ``forward`` quantizes the
incoming activation, convolves entirely in int64, and rescales.
"""

from __future__ import annotations

import numpy as np

from .functional import im2col
from .layers import Conv2d
from .module import Module
from .tensor import Tensor

__all__ = ["QuantizedConv2d", "activation_scale", "quantize_activation"]


def activation_scale(x: np.ndarray, bits: int = 8) -> float:
    """Symmetric max-calibrated scale for an activation tensor."""
    max_code = 2 ** (bits - 1) - 1
    alpha = float(np.abs(x).max())
    return alpha / max_code if alpha > 0 else 1.0


def quantize_activation(x: np.ndarray, scale: float,
                        bits: int = 8) -> np.ndarray:
    """Activation → integer codes at a fixed scale."""
    max_code = 2 ** (bits - 1) - 1
    return np.clip(np.round(x / scale), -max_code, max_code) \
        .astype(np.int64)


class QuantizedConv2d(Module):
    """A convolution executed in integer arithmetic.

    Weights are stored as int64 codes with one scale per output filter
    (per-channel quantization, the deployment-standard granularity);
    activations are quantized on entry with a calibration scale.
    """

    def __init__(self, weight_codes: np.ndarray, weight_scales: np.ndarray,
                 bias: np.ndarray | None, stride: int, padding: int,
                 input_scale: float, activation_bits: int = 8):
        super().__init__()
        self.weight_codes = weight_codes.astype(np.int64)
        self.weight_scales = weight_scales.astype(np.float64)
        self.bias = None if bias is None else bias.astype(np.float64)
        self.stride = stride
        self.padding = padding
        self.input_scale = float(input_scale)
        self.activation_bits = activation_bits

    @staticmethod
    def from_float(conv: Conv2d, input_scale: float,
                   weight_bits: int = 8,
                   activation_bits: int = 8) -> "QuantizedConv2d":
        """Quantize a float convolution with per-filter weight scales."""
        weights = conv.weight.data.astype(np.float64)
        out_c = weights.shape[0]
        flat = weights.reshape(out_c, -1)
        max_code = 2 ** (weight_bits - 1) - 1
        alphas = np.abs(flat).max(axis=1)
        scales = np.where(alphas > 0, alphas / max_code, 1.0)
        codes = np.clip(np.round(flat / scales[:, None]),
                        -max_code, max_code).reshape(weights.shape)
        bias = None if conv.bias is None else conv.bias.data
        return QuantizedConv2d(codes, scales, bias, conv.stride,
                               conv.padding, input_scale, activation_bits)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        n, c, h, w = data.shape
        out_c = self.weight_codes.shape[0]
        kernel = self.weight_codes.shape[-1]

        x_codes = quantize_activation(data, self.input_scale,
                                      self.activation_bits)
        cols = im2col(x_codes.astype(np.float64), kernel, self.stride,
                      self.padding).astype(np.int64)
        w_mat = self.weight_codes.reshape(out_c, -1)
        # The integer core: int64 accumulation, exactly as a deployment
        # engine's INT8 MACs with a 32/64-bit accumulator.
        acc = np.einsum("ok,nkp->nop", w_mat, cols)

        out_h = (h + 2 * self.padding - kernel) // self.stride + 1
        out_w = (w + 2 * self.padding - kernel) // self.stride + 1
        rescale = self.weight_scales[None, :, None] * self.input_scale
        out = acc.astype(np.float64) * rescale
        out = out.reshape(n, out_c, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return Tensor(out.astype(np.float32))

    def fake_quant_reference(self, x: Tensor) -> Tensor:
        """The float-side view: dequantized weights × quantized input.

        Used by tests to assert integer execution ≡ fake quantization.
        """
        weights = (self.weight_codes.reshape(len(self.weight_scales), -1)
                   * self.weight_scales[:, None]) \
            .reshape(self.weight_codes.shape)
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        x_deq = quantize_activation(data, self.input_scale,
                                    self.activation_bits) \
            * self.input_scale
        from . import functional as F
        out = F.conv2d(Tensor(x_deq.astype(np.float32)),
                       Tensor(weights.astype(np.float32)),
                       None if self.bias is None
                       else Tensor(self.bias.astype(np.float32)),
                       stride=self.stride, padding=self.padding)
        return out
