"""Save/load model weights as compressed ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_model", "load_model"]


def save_state(state: dict, path: str) -> None:
    """Write a state dict to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str) -> dict:
    """Read a state dict from ``path``."""
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_model(model: Module, path: str) -> None:
    save_state(model.state_dict(), path)


def load_model(model: Module, path: str) -> Module:
    model.load_state_dict(load_state(path))
    return model
