"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "constant"]


def _fan_in_out(shape: tuple) -> tuple[int, int]:
    if len(shape) == 2:  # (out, in) linear
        return shape[1], shape[0]
    if len(shape) == 4:  # (out, in, kh, kw) conv
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He-normal init suitable for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He-uniform init."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init for linear/tanh layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def constant(shape: tuple, value: float) -> np.ndarray:
    return np.full(shape, value, dtype=np.float32)
