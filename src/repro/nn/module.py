"""Module base class: parameter registration, traversal, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Sequential", "Parameter"]


class Parameter(Tensor):
    """A Tensor that is registered as a learnable parameter of a Module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and ``Module`` attributes in
    ``__init__``; they are auto-registered so that traversal
    (``named_parameters``, ``named_modules``), ``state_dict`` IO and
    train/eval mode switching all work without bookkeeping in subclasses.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array saved in the state dict."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    # ------------------------------------------------------------------
    # State dict IO
    # ------------------------------------------------------------------
    def state_dict(self) -> OrderedDict:
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        own_params = dict(self.named_parameters())
        buffers = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffers[key] = (module, buf_name)
        for key, value in state.items():
            if key in own_params:
                param = own_params[key]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{param.data.shape} vs {value.shape}")
                param.data = value.astype(np.float32).copy()
            elif key in buffers:
                module, buf_name = buffers[key]
                module._update_buffer(buf_name, value.copy())
            else:
                raise KeyError(f"unexpected state key: {key}")

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x
