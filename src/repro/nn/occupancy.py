"""Per-frame occupancy context: the canvas-sparsity seam.

Pillar-based detectors scatter a handful of occupied pillars onto a BEV
canvas that is mostly zeros; everything downstream of the scatter then
convolves those zeros densely.  This module carries the *observation*
side of the sparsity story: :func:`repro.nn.functional.scatter_to_grid`
reports each frame's occupied cells into the active
:class:`OccupancyContext`, and an installed context is what switches
the quantized executors (:mod:`repro.nn.quantized`) into their dynamic
sparse paths.

The context is advisory, never load-bearing for correctness: it *gates*
the dynamic machinery, but the windows and column subsets the executors
act on are derived from one-pass scans of their own actual inputs
(nonzero-support bboxes and receptive-field dilation — see
:mod:`repro.nn.quantized`), never from the context's bbox.  A 3×3 conv
grows the true support by a halo each layer, so a canvas bbox stops
bounding it a few layers in; scanning the codes makes the sparse mode
unconditionally bit-for-bit identical to dense execution — a wrong or
stale context can only cost speed, never bits.  The context still
carries the canvas-occupancy telemetry (:attr:`OccupancyContext.mask`,
:meth:`OccupancyContext.occupied_fraction`) and the frame/window bbox
for diagnostics (:meth:`OccupancyContext.window_at`).

Activation is scoped and thread-local: :func:`activate_occupancy` is a
context manager (one frame, or one micro-batched window — the bbox is
then the union of the member frames' bboxes, because every scatter in
the window observes into the same context), and
:func:`current_occupancy` is how kernels find the active context, if
any.  With no active context every kernel runs exactly as before.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = ["OccupancyContext", "activate_occupancy", "current_occupancy"]


class OccupancyContext:
    """What one frame (or window) scattered onto the BEV canvas.

    Attributes
    ----------
    grid_shape:
        ``(H, W)`` of the observed canvas; ``None`` until the first
        :meth:`observe`.
    bbox:
        ``(r0, r1, c0, c1)`` half-open bounding box of the occupied
        cells, union across every observed scatter; ``None`` while no
        pillar has been scattered (including the fully-empty frame).
    mask:
        Boolean ``(H, W)`` union of occupied cells (``None`` until the
        first observe).
    observed:
        Whether any scatter has reported — distinguishes "no scatter
        ran" (dense prediction paths) from "a scatter ran and the
        canvas is empty" (``bbox is None`` with ``observed=True``).
    frames:
        Number of scatters observed (the micro-batch size).
    """

    __slots__ = ("grid_shape", "bbox", "mask", "observed", "frames",
                 "_coherent", "_lock")

    def __init__(self):
        self.grid_shape: tuple[int, int] | None = None
        self.bbox: tuple[int, int, int, int] | None = None
        self.mask: np.ndarray | None = None
        self.observed = False
        self.frames = 0
        # False when scatters with conflicting grid shapes were
        # observed; windows are then unavailable (dense execution).
        self._coherent = True
        # observe() mutates multi-field state (mask + bbox + counters);
        # a shared window context may be observed from worker threads
        # (the serving engine's cross-stream micro-batches), so the
        # union must be atomic.  Activation stays thread-local — the
        # lock only protects the observation side.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, indices: np.ndarray,
                grid_shape: tuple[int, int]) -> None:
        """Union one scatter's occupied cells into the context.

        Thread-safe: scatters running on different worker threads may
        observe into one shared (micro-batch window) context.
        """
        shape = (int(grid_shape[0]), int(grid_shape[1]))
        indices = np.asarray(indices)
        with self._lock:
            if self.grid_shape is None:
                self.grid_shape = shape
                self.mask = np.zeros(shape, dtype=bool)
            elif self.grid_shape != shape:
                self._coherent = False
            self.observed = True
            self.frames += 1
            if not self._coherent:
                return
            if indices.size == 0:
                return
            rows = indices[:, 0].astype(np.int64)
            cols = indices[:, 1].astype(np.int64)
            self.mask[rows, cols] = True
            r0, r1 = int(rows.min()), int(rows.max()) + 1
            c0, c1 = int(cols.min()), int(cols.max()) + 1
            if self.bbox is not None:
                pr0, pr1, pc0, pc1 = self.bbox
                r0, r1 = min(r0, pr0), max(r1, pr1)
                c0, c1 = min(c0, pc0), max(c1, pc1)
            self.bbox = (r0, r1, c0, c1)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """An observed canvas with zero occupied cells."""
        return self.observed and self._coherent and self.bbox is None

    @property
    def canvas_cells(self) -> int:
        """Canvas cells observed (0 before any observation)."""
        if self.mask is None or not self._coherent:
            return 0
        return int(self.mask.size)

    @property
    def occupied_cells(self) -> int:
        """Occupied canvas cells (0 before any observation)."""
        if self.mask is None or not self._coherent:
            return 0
        return int(self.mask.sum())

    @property
    def occupied_fraction(self) -> float:
        """Occupied cells / canvas cells (NaN before any observation)."""
        if self.mask is None or not self._coherent:
            return float("nan")
        return float(self.mask.sum()) / float(self.mask.size)

    def window_at(self, h: int, w: int) -> tuple[int, int, int, int] | None:
        """The occupied bbox rescaled to an ``(h, w)`` feature map.

        Each axis must be an integer down- or up-scaling of the canvas
        axis (the pyramid shapes a strided backbone produces); any
        other shape returns ``None``.  Returned windows are
        conservative for the *canvas cells*: downscaling rounds the
        bbox outward, so every occupied canvas cell maps inside the
        window.  Note they do not account for the receptive-field halo
        a conv stack grows, which is why the executors derive their
        windows from their own inputs; this accessor serves telemetry
        and diagnostics.
        """
        if not self.observed or not self._coherent \
                or self.grid_shape is None or self.bbox is None:
            return None
        full_h, full_w = self.grid_shape
        r0, r1, c0, c1 = self.bbox
        rows = _scale_span(r0, r1, full_h, h)
        cols = _scale_span(c0, c1, full_w, w)
        if rows is None or cols is None:
            return None
        return (*rows, *cols)


def _scale_span(a0: int, a1: int, full: int, target: int):
    """Rescale a half-open span from a ``full``- to a ``target``-length
    axis; ``None`` when the axes are not integer multiples."""
    if full == target:
        return a0, a1
    if target > 0 and full % target == 0:
        factor = full // target
        return a0 // factor, min(target, -(-a1 // factor))
    if full > 0 and target % full == 0:
        factor = target // full
        return a0 * factor, min(target, a1 * factor)
    return None


# ---------------------------------------------------------------------------
# Thread-local activation
# ---------------------------------------------------------------------------
_STATE = threading.local()


def current_occupancy() -> OccupancyContext | None:
    """The active context of this thread, or ``None`` (dense mode)."""
    return getattr(_STATE, "context", None)


@contextmanager
def activate_occupancy(context: OccupancyContext | None = None):
    """Install a context for the duration of the block (re-entrant).

    The previous context (usually ``None``) is restored on exit even
    when the block raises, so one frame's occupancy can never leak into
    the next.

    Activation is strictly per thread: each thread keeps its own
    LIFO stack of contexts, so concurrent streams on worker threads —
    one sparse, one dense — can never see each other's context, and
    the sparse fallback's per-frame re-entry (a frame context nested
    inside the attachment's window context) unwinds correctly on the
    thread that opened it.  A context *object* may still be shared
    across threads (a micro-batch window observed by several workers);
    only :meth:`OccupancyContext.observe` synchronizes for that.
    """
    ctx = OccupancyContext() if context is None else context
    previous = getattr(_STATE, "context", None)
    _STATE.context = ctx
    try:
        yield ctx
    finally:
        _STATE.context = previous
