"""Computational-graph extraction for layer grouping (UPAQ Algorithm 1).

The paper computes the model's computational graph "through
backpropagation" and runs DFS over it to find *root→leaf* layer groups.
We do the same: run a traced forward pass, walk the recorded autograd
graph from the outputs back to the inputs, and lift it to a layer-level
``networkx.DiGraph`` whose nodes are the names of parameterized layers
(convolutions and linears) and whose edges follow activation flow.
"""

from __future__ import annotations

import networkx as nx

from .layers import Conv2d, ConvTranspose2d, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["compute_graph", "layer_map", "topological_layers"]

#: Module types that carry compressible kernels.
KERNEL_LAYER_TYPES = (Conv2d, ConvTranspose2d, Linear)


def layer_map(model: Module) -> dict[str, Module]:
    """Map layer name → module for every kernel-bearing layer."""
    layers = {}
    for name, module in model.named_modules():
        if isinstance(module, KERNEL_LAYER_TYPES):
            layers[name] = module
    return layers


def _collect_outputs(result) -> list[Tensor]:
    """Flatten whatever a model's forward returned into a tensor list."""
    if isinstance(result, Tensor):
        return [result]
    if isinstance(result, (list, tuple)):
        outs = []
        for item in result:
            outs.extend(_collect_outputs(item))
        return outs
    if isinstance(result, dict):
        outs = []
        for item in result.values():
            outs.extend(_collect_outputs(item))
        return outs
    return []


def compute_graph(model: Module, *example_inputs) -> nx.DiGraph:
    """Trace a forward pass and return the layer-level dependency graph.

    Nodes are the names of kernel-bearing layers; an edge ``A -> B`` means
    B consumes (possibly through parameter-free ops such as BN, ReLU,
    pooling, reshape or addition) an activation produced by A.
    """
    layers = layer_map(model)
    param_to_layer: dict[int, str] = {}
    for name, module in layers.items():
        param_to_layer[id(module.weight)] = name

    was_training = model.training
    model.eval()
    result = model(*example_inputs)
    if was_training:
        model.train()
    outputs = _collect_outputs(result)
    if not outputs:
        raise ValueError("model forward produced no tensors to trace")

    graph = nx.DiGraph()
    graph.add_nodes_from(layers)

    # producing_layer(tensor) = name of the layer whose op created this
    # tensor, if any (the op consumed that layer's weight parameter).
    # upstream(tensor) = set of nearest producing layers feeding tensor.
    upstream_cache: dict[int, frozenset] = {}

    def op_layer(node: Tensor) -> str | None:
        for parent in node._parents:
            name = param_to_layer.get(id(parent))
            if name is not None:
                return name
        return None

    def upstream(node: Tensor) -> frozenset:
        cached = upstream_cache.get(id(node))
        if cached is not None:
            return cached
        # Iterative DFS to avoid recursion limits on deep models.
        found: set[str] = set()
        stack = [node]
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            if current is not node:
                cached = upstream_cache.get(id(current))
                if cached is not None:
                    found.update(cached)
                    continue
            name = op_layer(current)
            if name is not None:
                found.add(name)
                continue
            for parent in current._parents:
                if id(parent) not in param_to_layer:
                    stack.append(parent)
        result = frozenset(found)
        upstream_cache[id(node)] = result
        return result

    # Walk every op node; for layer ops, connect upstream layers to it.
    visited: set[int] = set()
    stack = list(outputs)
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        name = op_layer(node)
        if name is not None:
            for activation in node._parents:
                if id(activation) in param_to_layer:
                    continue
                for source in upstream(activation):
                    if source != name:
                        graph.add_edge(source, name)
        for parent in node._parents:
            stack.append(parent)
    return graph


def topological_layers(graph: nx.DiGraph) -> list[str]:
    """Layer names in dataflow order (inputs first)."""
    return list(nx.topological_sort(graph))
