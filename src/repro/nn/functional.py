"""Convolution, pooling and gather/scatter primitives with autograd.

All functions here operate on :class:`repro.nn.tensor.Tensor` inputs in
NCHW layout and return tensors wired into the autograd graph.  Convolution
is implemented with im2col + matmul, which is the standard dense lowering
and keeps the arithmetic visible to the hardware cost model
(:mod:`repro.hardware.latency`).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col", "col2im", "conv2d", "conv_transpose2d", "max_pool2d",
    "avg_pool2d", "upsample_nearest2d", "scatter_to_grid", "linear",
]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input into (N, C*k*k, out_h*out_w) patch columns."""
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(strides[0], strides[1], strides[2], strides[3],
                 strides[2] * stride, strides[3] * stride),
        writeable=False,
    )
    return windows.reshape(n, c * kernel * kernel, out_h * out_w).copy()


def col2im(cols: np.ndarray, input_shape: tuple, kernel: int, stride: int,
           padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch columns back."""
    n, c, h, w = input_shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                      dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[:, :, ki:ki + stride * out_h:stride,
                   kj:kj + stride * out_w:stride] += cols[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution, NCHW input, OIHW weight."""
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {in_c}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)

    cols = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(out_c, -1)
    out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    out = out.reshape(n, out_c, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_mat = grad.reshape(n, out_c, out_h * out_w)
        grad_w = np.einsum("nop,nkp->ok", grad_mat, cols,
                           optimize=True).reshape(weight.shape)
        grad_cols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
        grad_x = col2im(grad_cols, x.shape, kernel, stride, padding)
        grads = [grad_x.astype(np.float32), grad_w.astype(np.float32)]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)).astype(np.float32))
        return tuple(grads)

    return Tensor.from_op(out.astype(np.float32), parents, backward)


def conv_transpose2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """Transposed 2D convolution (deconvolution), IOHW weight layout.

    Implemented as the gradient of conv2d with respect to its input, which
    is exactly what a deconvolution is.
    """
    n, c, h, w = x.shape
    in_c, out_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {in_c}")
    kernel = kh
    out_h = (h - 1) * stride - 2 * padding + kernel
    out_w = (w - 1) * stride - 2 * padding + kernel

    w_mat = weight.data.reshape(in_c, out_c * kernel * kernel)
    x_mat = x.data.reshape(n, in_c, h * w)
    cols = np.einsum("io,nip->nop", w_mat, x_mat, optimize=True)
    out = col2im(cols, (n, out_c, out_h, out_w), kernel, stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_cols = im2col(grad, kernel, stride, padding)
        grad_x = np.einsum("io,nop->nip", w_mat, grad_cols,
                           optimize=True).reshape(x.shape)
        grad_w = np.einsum("nip,nop->io", x_mat, grad_cols,
                           optimize=True).reshape(weight.shape)
        grads = [grad_x.astype(np.float32), grad_w.astype(np.float32)]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)).astype(np.float32))
        return tuple(grads)

    return Tensor.from_op(out.astype(np.float32), parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, stride, 0).reshape(
        n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_cols = np.zeros((n, c, kernel * kernel, out_h * out_w),
                             dtype=np.float32)
        np.put_along_axis(grad_cols, argmax[:, :, None],
                          grad.reshape(n, c, 1, out_h * out_w), axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(grad_cols, x.shape, kernel, stride, 0),)

    return Tensor.from_op(out.astype(np.float32), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, stride, 0).reshape(
        n, c, kernel * kernel, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def backward(grad):
        grad_cols = np.broadcast_to(
            grad.reshape(n, c, 1, out_h * out_w) * scale,
            (n, c, kernel * kernel, out_h * out_w),
        ).reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(grad_cols.astype(np.float32), x.shape, kernel,
                       stride, 0),)

    return Tensor.from_op(out.astype(np.float32), (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of the spatial dimensions."""
    out = x.data.repeat(scale, axis=2).repeat(scale, axis=3)

    def backward(grad):
        n, c, h, w = x.shape
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        return (g.astype(np.float32),)

    return Tensor.from_op(out, (x,), backward)


def scatter_to_grid(features: Tensor, indices: np.ndarray,
                    grid_shape: tuple[int, int]) -> Tensor:
    """Scatter per-pillar features onto a dense BEV canvas.

    Parameters
    ----------
    features:
        (P, C) per-pillar feature vectors.
    indices:
        (P, 2) integer (row, col) BEV cell of each pillar.
    grid_shape:
        (H, W) of the canvas.

    Returns a (1, C, H, W) tensor.  This is PointPillars' PillarScatter.
    """
    p, c = features.shape
    h, w = grid_shape
    flat = indices[:, 0] * w + indices[:, 1]
    canvas = np.zeros((c, h * w), dtype=np.float32)
    canvas[:, flat] = features.data.T
    out = canvas.reshape(1, c, h, w)

    def backward(grad):
        grad_flat = grad.reshape(c, h * w)
        return (grad_flat[:, flat].T.copy(),)

    return Tensor.from_op(out, (features,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map y = x @ W.T + b with (out, in) weight layout."""
    out = x @ Tensor.from_op(weight.data.T, (weight,),
                             lambda grad: (grad.T,))
    if bias is not None:
        out = out + bias
    return out
