"""Convolution, pooling and gather/scatter primitives with autograd.

All functions here operate on :class:`repro.nn.tensor.Tensor` inputs in
NCHW layout and return tensors wired into the autograd graph.  Convolution
is implemented with im2col + matmul, which is the standard dense lowering
and keeps the arithmetic visible to the hardware cost model
(:mod:`repro.hardware.latency`).

Geometry cache
--------------
Every frame of a LiDAR/camera stream has identical spatial geometry, so
the patch-extraction bookkeeping of ``im2col``/``col2im`` — which input
element lands in which column — depends only on ``(C, H, W, kernel,
stride, padding)``, never on the data.  :func:`im2col_plan` and
:func:`col2im_plan` compile that bookkeeping once into flat gather /
scatter index arrays and memoize them in a shape-keyed LRU cache shared
process-wide; :func:`im2col` and :func:`col2im_indexed` are thin
data-only gathers over the cached plans.  A gather is a pure
permutation, so the cached ``im2col`` is bit-identical to the strided
original for every dtype; :class:`Col2imPlan` sums each output cell's
contributors in a fixed deterministic order, which is exact whenever
the column data is integer-valued (the quantized executors' case).
:func:`geometry_cache_stats` / :func:`clear_geometry_cache` expose the
cache for tests and benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .occupancy import current_occupancy
from .tensor import Tensor

__all__ = [
    "im2col", "col2im", "col2im_indexed", "conv2d", "conv_transpose2d",
    "max_pool2d", "avg_pool2d", "upsample_nearest2d", "scatter_to_grid",
    "linear", "Im2colPlan", "Col2imPlan", "im2col_plan", "col2im_plan",
    "im2col_window_plan", "col2im_window_plan",
    "geometry_cache_stats", "clear_geometry_cache",
]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


@dataclass(frozen=True, eq=False)
class Im2colPlan:
    """Precompiled patch-extraction geometry for one input shape.

    ``indices[r, p]`` is the flat offset (within one zero-padded sample
    of shape ``(C, H+2p, W+2p)``) of the input element that row ``r``
    (= flattened ``(c, ki, kj)``) of output column ``p`` (= flattened
    ``(oi, oj)``) reads.  Applying the plan is a single gather.
    """

    c: int
    h: int
    w: int
    kernel: int
    stride: int
    padding: int
    out_h: int
    out_w: int
    #: (C*k*k, out_h*out_w) gather offsets into one padded sample
    indices: np.ndarray = field(repr=False)

    @property
    def rows(self) -> int:
        return self.c * self.kernel * self.kernel

    @property
    def positions(self) -> int:
        return self.out_h * self.out_w

    def pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding > 0:
            return np.pad(x, ((0, 0), (0, 0),
                              (self.padding, self.padding),
                              (self.padding, self.padding)))
        return x

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Gather (N, C, H, W) data into (N, C*k*k, P) patch columns."""
        n = x.shape[0]
        flat = self.pad(x).reshape(n, -1)
        return flat.take(self.indices.ravel(), axis=1) \
            .reshape(n, self.rows, self.positions)

    def restrict_to_window(self, bbox: tuple) -> "Im2colPlan":
        """A view of the plan over a window of *output positions*.

        ``bbox = (oi0, oi1, oj0, oj1)`` is half-open in output-position
        coordinates.  The returned plan gathers only the columns for
        those positions (``out_h``/``out_w`` become the window dims);
        ``apply`` still consumes the full padded input.  Restricting to
        a window is exact by construction — it merely drops columns the
        caller reconstructs as zeros.
        """
        oi0, oi1, oj0, oj1 = bbox
        if not (0 <= oi0 < oi1 <= self.out_h
                and 0 <= oj0 < oj1 <= self.out_w):
            raise ValueError(
                f"window {bbox} outside output grid "
                f"{self.out_h}x{self.out_w} (or empty)")
        if (oi0, oi1, oj0, oj1) == (0, self.out_h, 0, self.out_w):
            return self
        indices = np.ascontiguousarray(
            self.indices.reshape(self.rows, self.out_h, self.out_w)
            [:, oi0:oi1, oj0:oj1].reshape(self.rows, -1))
        indices.setflags(write=False)
        return Im2colPlan(c=self.c, h=self.h, w=self.w, kernel=self.kernel,
                          stride=self.stride, padding=self.padding,
                          out_h=oi1 - oi0, out_w=oj1 - oj0,
                          indices=indices)


@dataclass(frozen=True, eq=False)
class Col2imPlan:
    """Precompiled scatter-add geometry — the inverse of an im2col.

    Scatter-add is lowered to a *gather*: ``contributors[t]`` lists, for
    padded output cell ``t``, the flat ``(row, position)`` offsets of
    every column entry that scatters into it (at most ``ceil(k/s)²``),
    padded with a sentinel index that points at an appended zero column.
    Applying the plan gathers the contributors and sums them along the
    last axis in one fixed order — deterministic, and exact whenever the
    column data is integer-valued.
    """

    c: int
    h: int
    w: int
    kernel: int
    stride: int
    padding: int
    out_h: int
    out_w: int
    #: number of column rows the plan expects (C*k*k before restriction)
    rows: int
    #: (C*(H+2p)*(W+2p), m) gather offsets into flattened (rows*P)+1 cols
    contributors: np.ndarray = field(repr=False)

    @property
    def positions(self) -> int:
        return self.out_h * self.out_w

    @property
    def sentinel(self) -> int:
        return self.rows * self.positions

    def apply(self, cols: np.ndarray) -> np.ndarray:
        """Scatter-add (N, rows, P) columns back to (N, C, H, W)."""
        n = cols.shape[0]
        flat = cols.reshape(n, -1)
        flat = np.concatenate(
            [flat, np.zeros((n, 1), dtype=flat.dtype)], axis=1)
        cells = self.contributors.shape[0]
        gathered = flat.take(self.contributors.ravel(), axis=1) \
            .reshape(n, cells, self.contributors.shape[1])
        padded = gathered.sum(axis=2).reshape(
            n, self.c, self.h + 2 * self.padding, self.w + 2 * self.padding)
        if self.padding > 0:
            return padded[:, :, self.padding:-self.padding,
                          self.padding:-self.padding]
        return padded

    def restrict(self, keep: np.ndarray) -> "Col2imPlan":
        """A plan over only the kept column rows.

        ``keep`` is the boolean row mask; the returned plan consumes
        ``(N, keep.sum(), P)`` columns directly.  Dropped rows are
        remapped to the zero sentinel, which is exact when those rows
        are all-zero (pattern-pruned weight columns).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.size != self.rows:
            raise ValueError(f"keep mask covers {keep.size} rows, "
                             f"plan has {self.rows}")
        if keep.all():
            return self
        positions = self.positions
        kept_rows = np.flatnonzero(keep)
        kept = kept_rows.size
        rowmap = np.full(self.rows * positions + 1, kept * positions,
                         dtype=np.int64)
        src = (kept_rows[:, None] * positions
               + np.arange(positions)[None, :]).ravel()
        rowmap[src] = np.arange(kept * positions, dtype=np.int64)
        return Col2imPlan(c=self.c, h=self.h, w=self.w, kernel=self.kernel,
                          stride=self.stride, padding=self.padding,
                          out_h=self.out_h, out_w=self.out_w, rows=kept,
                          contributors=rowmap[self.contributors])

    def restrict_to_window(self, bbox: tuple) -> "Col2imPlan":
        """A view of the plan over a window of *image* cells.

        ``bbox = (r0, r1, c0, c1)`` is half-open in unpadded image
        coordinates; ``apply`` on the returned plan consumes the same
        full column layout but produces ``(N, C, r1-r0, c1-c0)`` — only
        the window's cells are gathered and summed.  Composes with
        :meth:`restrict` in either order (the column layout — ``rows``
        × ``positions`` — is untouched).
        """
        r0, r1, c0, c1 = bbox
        if not (0 <= r0 < r1 <= self.h and 0 <= c0 < c1 <= self.w):
            raise ValueError(f"window {bbox} outside image "
                             f"{self.h}x{self.w} (or empty)")
        if (r0, r1, c0, c1) == (0, self.h, 0, self.w):
            return self
        pad = self.padding
        wp = self.w + 2 * pad
        hp = self.h + 2 * pad
        cells = (np.arange(self.c)[:, None, None] * (hp * wp)
                 + (np.arange(r0, r1) + pad)[None, :, None] * wp
                 + (np.arange(c0, c1) + pad)[None, None, :]).ravel()
        contributors = np.ascontiguousarray(self.contributors[cells])
        contributors.setflags(write=False)
        return Col2imPlan(c=self.c, h=r1 - r0, w=c1 - c0,
                          kernel=self.kernel, stride=self.stride,
                          padding=0, out_h=self.out_h, out_w=self.out_w,
                          rows=self.rows, contributors=contributors)


# ----------------------------------------------------------------------
# Shape-keyed LRU cache of geometry plans
# ----------------------------------------------------------------------
_GEOMETRY_CACHE: OrderedDict = OrderedDict()
_GEOMETRY_LOCK = threading.Lock()
_GEOMETRY_CAPACITY = 128
_GEOMETRY_STATS = {"hits": 0, "misses": 0}


def _cached_plan(key: tuple, build):
    """Get-or-build on the shared geometry LRU, safe for concurrent
    callers: ``build`` runs outside the lock (it materializes large
    index arrays), and the insert re-checks the cache so two threads
    racing on a cold key converge on one canonical plan object —
    every caller then shares the same immutable indices."""
    with _GEOMETRY_LOCK:
        plan = _GEOMETRY_CACHE.get(key)
        if plan is not None:
            _GEOMETRY_CACHE.move_to_end(key)
            _GEOMETRY_STATS["hits"] += 1
            return plan
        _GEOMETRY_STATS["misses"] += 1
    plan = build()
    with _GEOMETRY_LOCK:
        racing = _GEOMETRY_CACHE.get(key)
        if racing is not None:
            _GEOMETRY_CACHE.move_to_end(key)
            return racing
        _GEOMETRY_CACHE[key] = plan
        _GEOMETRY_CACHE.move_to_end(key)
        while len(_GEOMETRY_CACHE) > _GEOMETRY_CAPACITY:
            _GEOMETRY_CACHE.popitem(last=False)
    return plan


def geometry_cache_stats() -> dict:
    """Hit/miss counters and occupancy of the shared geometry cache."""
    with _GEOMETRY_LOCK:
        return {"size": len(_GEOMETRY_CACHE),
                "capacity": _GEOMETRY_CAPACITY,
                "hits": _GEOMETRY_STATS["hits"],
                "misses": _GEOMETRY_STATS["misses"]}


def clear_geometry_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    with _GEOMETRY_LOCK:
        _GEOMETRY_CACHE.clear()
        _GEOMETRY_STATS["hits"] = 0
        _GEOMETRY_STATS["misses"] = 0


def _build_im2col_plan(c: int, h: int, w: int, kernel: int, stride: int,
                       padding: int) -> Im2colPlan:
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    window = (np.arange(kernel)[:, None] * wp
              + np.arange(kernel)[None, :]).ravel()          # (k*k,)
    row_off = (np.arange(c)[:, None] * (hp * wp)
               + window[None, :]).reshape(-1)                # (c*k*k,)
    col_off = (np.arange(out_h)[:, None] * (stride * wp)
               + np.arange(out_w)[None, :] * stride).ravel()  # (P,)
    indices = row_off[:, None] + col_off[None, :]
    indices.setflags(write=False)
    return Im2colPlan(c=c, h=h, w=w, kernel=kernel, stride=stride,
                      padding=padding, out_h=out_h, out_w=out_w,
                      indices=indices)


def im2col_plan(c: int, h: int, w: int, kernel: int, stride: int,
                padding: int) -> Im2colPlan:
    """The (cached) gather plan for this input geometry."""
    key = ("im2col", c, h, w, kernel, stride, padding)
    return _cached_plan(
        key, lambda: _build_im2col_plan(c, h, w, kernel, stride, padding))


def _build_col2im_plan(c: int, h: int, w: int, kernel: int, stride: int,
                       padding: int) -> Col2imPlan:
    fwd = _build_im2col_plan(c, h, w, kernel, stride, padding)
    positions = fwd.positions
    targets = fwd.indices.ravel()            # column entry -> padded cell
    cells = c * (h + 2 * padding) * (w + 2 * padding)
    counts = np.bincount(targets, minlength=cells)
    width = int(counts.max()) if counts.size else 0
    sentinel = fwd.rows * positions
    contributors = np.full((cells, max(width, 1)), sentinel, dtype=np.int64)
    order = np.argsort(targets, kind="stable")
    starts = np.concatenate(([0], np.cumsum(counts)))
    sorted_targets = targets[order]
    ranks = np.arange(targets.size) - starts[sorted_targets]
    contributors[sorted_targets, ranks] = order
    contributors.setflags(write=False)
    return Col2imPlan(c=c, h=h, w=w, kernel=kernel, stride=stride,
                      padding=padding, out_h=fwd.out_h, out_w=fwd.out_w,
                      rows=fwd.rows, contributors=contributors)


def col2im_plan(c: int, h: int, w: int, kernel: int, stride: int,
                padding: int) -> Col2imPlan:
    """The (cached) scatter plan: ``(c, h, w)`` is the *image* shape."""
    key = ("col2im", c, h, w, kernel, stride, padding)
    return _cached_plan(
        key, lambda: _build_col2im_plan(c, h, w, kernel, stride, padding))


def im2col_window_plan(c: int, h: int, w: int, kernel: int, stride: int,
                       padding: int, window: tuple) -> Im2colPlan:
    """A cached :meth:`Im2colPlan.restrict_to_window` view.

    ``window`` is the half-open output-position bbox.  Windowed views
    share the geometry LRU with the dense plans (per-frame occupancy
    bboxes recur across a stream, so the memoization pays off the same
    way shape keys do).
    """
    key = ("im2col-win", c, h, w, kernel, stride, padding, tuple(window))
    return _cached_plan(
        key, lambda: im2col_plan(c, h, w, kernel, stride, padding)
        .restrict_to_window(window))


def col2im_window_plan(c: int, h: int, w: int, kernel: int, stride: int,
                       padding: int, window: tuple) -> Col2imPlan:
    """A cached :meth:`Col2imPlan.restrict_to_window` view.

    ``window`` is the half-open image-cell bbox.  Executor-specific row
    restrictions (:meth:`Col2imPlan.restrict`) compose on top, so the
    shared cache stays executor-independent.
    """
    key = ("col2im-win", c, h, w, kernel, stride, padding, tuple(window))
    return _cached_plan(
        key, lambda: col2im_plan(c, h, w, kernel, stride, padding)
        .restrict_to_window(window))


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input into (N, C*k*k, out_h*out_w) patch columns.

    Runs through the shape-keyed geometry cache: the gather indices are
    compiled once per ``(C, H, W, kernel, stride, padding)`` and reused
    across frames and batches.  A gather is a pure permutation, so the
    result is bit-identical to the strided extraction for every dtype.
    """
    _, c, h, w = x.shape
    return im2col_plan(c, h, w, kernel, stride, padding).apply(x)


def col2im(cols: np.ndarray, input_shape: tuple, kernel: int, stride: int,
           padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch columns back."""
    n, c, h, w = input_shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                      dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[:, :, ki:ki + stride * out_h:stride,
                   kj:kj + stride * out_w:stride] += cols[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def col2im_indexed(cols: np.ndarray, input_shape: tuple, kernel: int,
                   stride: int, padding: int) -> np.ndarray:
    """:func:`col2im` via the cached gather plan.

    Sums each output cell's contributors in one fixed deterministic
    order, so it is exact (and equal to :func:`col2im`) whenever the
    column data is integer-valued — the quantized executors' case.  The
    float ``col2im`` keeps its kernel-loop accumulation order so float32
    training numerics are untouched.
    """
    _, c, h, w = input_shape
    return col2im_plan(c, h, w, kernel, stride, padding).apply(cols)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution, NCHW input, OIHW weight."""
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {in_c}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)

    cols = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(out_c, -1)
    out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    out = out.reshape(n, out_c, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_mat = grad.reshape(n, out_c, out_h * out_w)
        grad_w = np.einsum("nop,nkp->ok", grad_mat, cols,
                           optimize=True).reshape(weight.shape)
        grad_cols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
        grad_x = col2im(grad_cols, x.shape, kernel, stride, padding)
        grads = [grad_x.astype(np.float32), grad_w.astype(np.float32)]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)).astype(np.float32))
        return tuple(grads)

    return Tensor.from_op(out.astype(np.float32), parents, backward)


def conv_transpose2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """Transposed 2D convolution (deconvolution), IOHW weight layout.

    Implemented as the gradient of conv2d with respect to its input, which
    is exactly what a deconvolution is.
    """
    n, c, h, w = x.shape
    in_c, out_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {in_c}")
    kernel = kh
    out_h = (h - 1) * stride - 2 * padding + kernel
    out_w = (w - 1) * stride - 2 * padding + kernel

    w_mat = weight.data.reshape(in_c, out_c * kernel * kernel)
    x_mat = x.data.reshape(n, in_c, h * w)
    cols = np.einsum("io,nip->nop", w_mat, x_mat, optimize=True)
    out = col2im(cols, (n, out_c, out_h, out_w), kernel, stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_cols = im2col(grad, kernel, stride, padding)
        grad_x = np.einsum("io,nop->nip", w_mat, grad_cols,
                           optimize=True).reshape(x.shape)
        grad_w = np.einsum("nip,nop->io", x_mat, grad_cols,
                           optimize=True).reshape(weight.shape)
        grads = [grad_x.astype(np.float32), grad_w.astype(np.float32)]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)).astype(np.float32))
        return tuple(grads)

    return Tensor.from_op(out.astype(np.float32), parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, stride, 0).reshape(
        n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_cols = np.zeros((n, c, kernel * kernel, out_h * out_w),
                             dtype=np.float32)
        np.put_along_axis(grad_cols, argmax[:, :, None],
                          grad.reshape(n, c, 1, out_h * out_w), axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(grad_cols, x.shape, kernel, stride, 0),)

    return Tensor.from_op(out.astype(np.float32), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, stride, 0).reshape(
        n, c, kernel * kernel, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    scale = 1.0 / (kernel * kernel)

    def backward(grad):
        grad_cols = np.broadcast_to(
            grad.reshape(n, c, 1, out_h * out_w) * scale,
            (n, c, kernel * kernel, out_h * out_w),
        ).reshape(n, c * kernel * kernel, out_h * out_w)
        return (col2im(grad_cols.astype(np.float32), x.shape, kernel,
                       stride, 0),)

    return Tensor.from_op(out.astype(np.float32), (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of the spatial dimensions."""
    out = x.data.repeat(scale, axis=2).repeat(scale, axis=3)

    def backward(grad):
        n, c, h, w = x.shape
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        return (g.astype(np.float32),)

    return Tensor.from_op(out, (x,), backward)


def scatter_to_grid(features: Tensor, indices: np.ndarray,
                    grid_shape: tuple[int, int]) -> Tensor:
    """Scatter per-pillar features onto a dense BEV canvas.

    Parameters
    ----------
    features:
        (P, C) per-pillar feature vectors.
    indices:
        (P, 2) integer (row, col) BEV cell of each pillar.
    grid_shape:
        (H, W) of the canvas.

    Returns a (1, C, H, W) tensor.  This is PointPillars' PillarScatter.

    When an :class:`~repro.nn.occupancy.OccupancyContext` is active
    (sparse lowered execution), the scatter reports its occupied cells
    into it — the observation end of the per-frame occupancy seam.
    """
    p, c = features.shape
    h, w = grid_shape
    flat = indices[:, 0] * w + indices[:, 1]
    canvas = np.zeros((c, h * w), dtype=np.float32)
    canvas[:, flat] = features.data.T
    out = canvas.reshape(1, c, h, w)
    context = current_occupancy()
    if context is not None:
        context.observe(indices, grid_shape)

    def backward(grad):
        grad_flat = grad.reshape(c, h * w)
        return (grad_flat[:, flat].T.copy(),)

    return Tensor.from_op(out, (features,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map y = x @ W.T + b with (out, in) weight layout."""
    out = x @ Tensor.from_op(weight.data.T, (weight,),
                             lambda grad: (grad.T,))
    if bias is not None:
        out = out + bias
    return out
