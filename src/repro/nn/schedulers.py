"""Learning-rate schedulers for the training loops."""

from __future__ import annotations

import numpy as np

__all__ = ["StepDecay", "CosineAnnealing", "WarmupWrapper"]


class _Scheduler:
    """Adjusts an optimizer's ``lr`` attribute per step."""

    def __init__(self, optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr if base_lr is None else base_lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr


class StepDecay(_Scheduler):
    """Multiply the lr by ``gamma`` at each milestone step."""

    def __init__(self, optimizer, milestones: list[int],
                 gamma: float = 0.4, base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealing(_Scheduler):
    """Cosine decay from base_lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer, total_steps: int, min_lr: float = 1e-5,
                 base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        self.total_steps = max(total_steps, 1)
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) \
            * (1.0 + np.cos(np.pi * progress))


class WarmupWrapper(_Scheduler):
    """Linear warmup for ``warmup_steps``, then delegate to ``inner``."""

    def __init__(self, inner: _Scheduler, warmup_steps: int):
        super().__init__(inner.optimizer, inner.base_lr)
        self.inner = inner
        self.warmup_steps = max(warmup_steps, 1)

    def lr_at(self, step: int) -> float:
        if step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        return self.inner.lr_at(step - self.warmup_steps)
