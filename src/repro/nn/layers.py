"""Standard layers built on the autograd primitives.

All convolutional layers expose ``.weight`` (and optional ``.bias``) as
:class:`repro.nn.module.Parameter`; UPAQ and the baselines compress models
purely by rewriting these arrays in place, so layers make no copies of
their weights during forward.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Conv2d", "ConvTranspose2d", "Linear", "BatchNorm2d", "BatchNorm1d",
    "ReLU", "LeakyReLU", "Sigmoid", "MaxPool2d", "AvgPool2d",
    "UpsampleNearest2d", "Identity", "Add", "ConvBNReLU",
]

_DEFAULT_RNG = np.random.default_rng(0)


class Conv2d(Module):
    """2D convolution layer (square kernels, uniform stride/padding)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class ConvTranspose2d(Module):
    """Transposed convolution (upsampling deconvolution)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias,
                                  stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"ConvTranspose2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride})")


class Linear(Module):
    """Affine layer with (out_features, in_features) weight."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class _BatchNorm(Module):
    """Shared batch-norm machinery; subclasses pick the reduced axes."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean",
                             np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var",
                             np.ones(num_features, dtype=np.float32))

    def _normalize(self, x: Tensor, axes: tuple, param_shape: tuple) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self._update_buffer(
                "running_mean",
                ((1 - m) * self.running_mean
                 + m * mean.data.reshape(-1)).astype(np.float32))
            self._update_buffer(
                "running_var",
                ((1 - m) * self.running_var
                 + m * var.data.reshape(-1)).astype(np.float32))
        else:
            mean = Tensor(self.running_mean.reshape(param_shape))
            var = Tensor(self.running_var.reshape(param_shape))
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        gamma = self.weight.reshape(param_shape)
        beta = self.bias.reshape(param_shape)
        return x_hat * gamma + beta

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm2d(_BatchNorm):
    """Batch norm over (N, H, W) per channel for NCHW tensors."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, (0, 2, 3), (1, self.num_features, 1, 1))


class BatchNorm1d(_BatchNorm):
    """Batch norm over the leading axis for (N, C) tensors."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, (0,), (1, self.num_features))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.1):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)

    def __repr__(self) -> str:
        return f"LeakyReLU({self.slope})"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class UpsampleNearest2d(Module):
    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)

    def __repr__(self) -> str:
        return f"UpsampleNearest2d(x{self.scale})"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Add(Module):
    """Elementwise residual addition as a traceable module."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return a + b

    def __repr__(self) -> str:
        return "Add()"


class ConvBNReLU(Module):
    """The ubiquitous conv → batch-norm → ReLU block."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if padding is None:
            padding = kernel_size // 2
        self.conv = Conv2d(in_channels, out_channels, kernel_size,
                           stride=stride, padding=padding, bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))
