"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` framework: a ``Tensor``
wraps a numpy array and records the operations applied to it so gradients
can be computed with :meth:`Tensor.backward`.  It deliberately supports
only what the UPAQ reproduction needs (dense float tensors, static shapes)
but supports it completely: broadcasting, views, reductions, and the
convolution/pooling primitives live in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager that disables graph recording (inference mode)."""

    def __enter__(self):
        _GRAD_ENABLED.append(False)
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_ENABLED.pop()
        return False


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    arr = np.asarray(value)
    if arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload.  float64 input is converted to float32, the
        framework's working precision.
    requires_grad:
        When True the tensor accumulates a ``.grad`` array during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple = ()
        self._backward = None
        self._name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(np.float32),
                      requires_grad)

    @staticmethod
    def from_op(data: np.ndarray, parents, backward) -> "Tensor":
        """Create a tensor resulting from an op, wiring the graph edge."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
                continue
            parent_grads = node._backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> list:
        """Reverse topological order of the graph rooted at self."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=np.float32))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

        return Tensor.from_op(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self
        return Tensor.from_op(-a.data, (a,), lambda grad: (-grad,))

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad * b.data, a.shape),
                    _unbroadcast(grad * a.data, b.shape))

        return Tensor.from_op(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            return (_unbroadcast(grad / b.data, a.shape),
                    _unbroadcast(-grad * a.data / (b.data * b.data), b.shape))

        return Tensor.from_op(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        a = self
        exponent = float(exponent)

        def backward(grad):
            return (grad * exponent * np.power(a.data, exponent - 1.0),)

        return Tensor.from_op(np.power(a.data, exponent), (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(grad):
            if a.data.ndim == 2 and b.data.ndim == 2:
                return (grad @ b.data.T, a.data.T @ grad)
            # Batched matmul: contract over batch dims with broadcasting.
            ga = grad @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor.from_op(a.data @ b.data, (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)
        return Tensor.from_op(out_data, (a,), lambda grad: (grad * out_data,))

    def log(self) -> "Tensor":
        a = self
        return Tensor.from_op(np.log(a.data), (a,),
                              lambda grad: (grad / a.data,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        a = self
        return Tensor.from_op(np.abs(a.data), (a,),
                              lambda grad: (grad * np.sign(a.data),))

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        return Tensor.from_op(a.data * mask, (a,), lambda grad: (grad * mask,))

    def leaky_relu(self, slope: float = 0.1) -> "Tensor":
        a = self
        scale = np.where(a.data > 0, 1.0, slope).astype(np.float32)
        return Tensor.from_op(a.data * scale, (a,),
                              lambda grad: (grad * scale,))

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-a.data))
        return Tensor.from_op(
            out_data, (a,), lambda grad: (grad * out_data * (1.0 - out_data),))

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)
        return Tensor.from_op(
            out_data, (a,), lambda grad: (grad * (1.0 - out_data * out_data),))

    def sin(self) -> "Tensor":
        a = self
        return Tensor.from_op(np.sin(a.data), (a,),
                              lambda grad: (grad * np.cos(a.data),))

    def cos(self) -> "Tensor":
        a = self
        return Tensor.from_op(np.cos(a.data), (a,),
                              lambda grad: (-grad * np.sin(a.data),))

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        mask = ((a.data >= low) & (a.data <= high)).astype(np.float32)
        return Tensor.from_op(np.clip(a.data, low, high), (a,),
                              lambda grad: (grad * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, a.shape).astype(np.float32),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, a.shape).astype(np.float32),)

        return Tensor.from_op(a.data.sum(axis=axis, keepdims=keepdims),
                              (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[i] for i in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == out_data).astype(np.float32)
        mask /= mask.sum(axis=axis, keepdims=True)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (mask * g,)

        result = out_data if keepdims or axis is None else np.squeeze(out_data, axis)
        if axis is None:
            result = np.asarray(a.data.max())
        return Tensor.from_op(result, (a,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.shape
        return Tensor.from_op(a.data.reshape(shape), (a,),
                              lambda grad: (grad.reshape(original),))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        a = self
        inverse = tuple(np.argsort(axes))
        return Tensor.from_op(a.data.transpose(axes), (a,),
                              lambda grad: (grad.transpose(inverse),))

    def __getitem__(self, index) -> "Tensor":
        a = self

        def backward(grad):
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor.from_op(a.data[index], (a,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two dimensions symmetrically."""
        if padding == 0:
            return self
        a = self
        pad_width = [(0, 0)] * (a.ndim - 2) + [(padding, padding)] * 2
        sl = tuple([slice(None)] * (a.ndim - 2)
                   + [slice(padding, -padding)] * 2)
        return Tensor.from_op(np.pad(a.data, pad_width), (a,),
                              lambda grad: (grad[sl],))

    @staticmethod
    def concatenate(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t.data for t in tensors]
        sizes = [arr.shape[axis] for arr in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            pieces = []
            for i in range(len(arrays)):
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(offsets[i], offsets[i + 1])
                pieces.append(grad[tuple(sl)])
            return tuple(pieces)

        return Tensor.from_op(np.concatenate(arrays, axis=axis),
                              tuple(tensors), backward)

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        def backward(grad):
            return tuple(np.take(grad, i, axis=axis)
                         for i in range(len(tensors)))

        return Tensor.from_op(np.stack([t.data for t in tensors], axis=axis),
                              tuple(tensors), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
