"""Loss functions used by the detector training loops."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "smooth_l1_loss", "binary_cross_entropy_with_logits", "focal_loss",
    "cross_entropy", "mse_loss", "l1_loss",
]


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target: Tensor) -> Tensor:
    return (pred - target).abs().mean()


def smooth_l1_loss(pred: Tensor, target: Tensor, beta: float = 1.0,
                   weights: Tensor | None = None) -> Tensor:
    """Huber loss, the standard box-regression loss in SSD-style heads."""
    diff = (pred - target).abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear = diff - 0.5 * beta
    mask = (diff.data < beta).astype(np.float32)
    loss = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    if weights is not None:
        loss = loss * weights
        denom = max(float(weights.data.sum()), 1.0)
        return loss.sum() / denom
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, target: Tensor,
                                     weights: Tensor | None = None) -> Tensor:
    """Numerically stable BCE on raw logits."""
    # max(x, 0) - x*t + log(1 + exp(-|x|))
    relu_logits = logits.relu()
    abs_logits = logits.abs()
    loss = relu_logits - logits * target + ((-abs_logits).exp() + 1.0).log()
    if weights is not None:
        loss = loss * weights
        denom = max(float(weights.data.sum()), 1.0)
        return loss.sum() / denom
    return loss.mean()


def focal_loss(logits: Tensor, target: Tensor, alpha: float = 0.25,
               gamma: float = 2.0, normalizer: float = 1.0,
               weights: Tensor | None = None) -> Tensor:
    """Sigmoid focal loss (RetinaNet) for dense classification heads.

    ``weights`` multiplies the per-element loss (use 0 to ignore anchors).
    """
    prob = logits.sigmoid()
    p_t = prob * target + (1.0 - prob) * (1.0 - target)
    alpha_t = alpha * target + (1.0 - alpha) * (1.0 - target)
    modulator = (1.0 - p_t) ** gamma
    relu_logits = logits.relu()
    abs_logits = logits.abs()
    ce = relu_logits - logits * target + ((-abs_logits).exp() + 1.0).log()
    loss = alpha_t * modulator * ce
    if weights is not None:
        loss = loss * weights
    return loss.sum() / max(normalizer, 1.0)


def cross_entropy(logits: Tensor, target_index: np.ndarray) -> Tensor:
    """Multi-class cross entropy; targets are integer class indices."""
    log_probs = logits.log_softmax(axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), target_index]
    return -picked.mean()
