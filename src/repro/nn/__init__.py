"""``repro.nn`` — a numpy neural-network framework with autograd.

This subpackage stands in for PyTorch in the UPAQ reproduction: it
provides tensors with reverse-mode autodiff, the standard layer zoo
needed by the 3D detectors (convolutions, batch norm, pooling,
upsampling), optimizers with prune-mask support, detection losses, model
serialization, and computational-graph extraction used by UPAQ's
preprocessing stage.
"""

from . import functional, init, losses, optim
from .graph import compute_graph, layer_map, topological_layers
from .occupancy import (OccupancyContext, activate_occupancy,
                        current_occupancy)
from .layers import (Add, AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d,
                     ConvBNReLU, ConvTranspose2d, Identity, LeakyReLU,
                     Linear, MaxPool2d, ReLU, Sigmoid, UpsampleNearest2d)
from .module import Module, Parameter, Sequential
from .serialization import load_model, load_state, save_model, save_state
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor", "no_grad", "Module", "Parameter", "Sequential",
    "Conv2d", "ConvTranspose2d", "Linear", "BatchNorm1d", "BatchNorm2d",
    "ReLU", "LeakyReLU", "Sigmoid", "MaxPool2d", "AvgPool2d",
    "UpsampleNearest2d", "Identity", "Add", "ConvBNReLU",
    "functional", "init", "losses", "optim",
    "OccupancyContext", "activate_occupancy", "current_occupancy",
    "compute_graph", "layer_map", "topological_layers",
    "save_model", "load_model", "save_state", "load_state",
]
