"""Optimizers for fine-tuning models (SGD with momentum, Adam).

Both optimizers support an optional per-parameter *mask*: when a mask is
registered for a parameter, the update is multiplied by it so that pruned
(zeroed) weights stay pruned during fine-tuning.  This is how every
compression framework in this repo fine-tunes without regrowing weights.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, parameters):
        self.parameters: list[Parameter] = list(parameters)
        self._masks: dict[int, np.ndarray] = {}

    def set_mask(self, parameter: Parameter, mask: np.ndarray) -> None:
        """Freeze the zero-pattern of ``parameter`` to ``mask`` (1=keep)."""
        if mask.shape != parameter.data.shape:
            raise ValueError("mask shape must match parameter shape")
        self._masks[id(parameter)] = mask.astype(np.float32)

    def _mask_for(self, parameter: Parameter) -> np.ndarray | None:
        return self._masks.get(id(parameter))

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            update = self.lr * grad
            mask = self._mask_for(param)
            if mask is not None:
                update = update * mask
            param.data -= update


class Adam(_Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            mask = self._mask_for(param)
            if mask is not None:
                update = update * mask
            param.data -= update
