"""``repro.detection`` — shared detection machinery.

Anchor grids and box residual coding, anchor→GT target assignment,
rotated/2D non-maximum suppression, and KITTI-style R40 AP evaluation.
"""

from .anchors import AnchorConfig, AnchorGrid, decode_boxes, encode_boxes
from .evaluation import (DetectionResult, EvalConfig, average_precision,
                         evaluate_by_difficulty, evaluate_map,
                         match_detections, precision_recall_curve)
from .nms import nms_2d, nms_bev
from .targets import AssignedTargets, assign_targets

__all__ = [
    "AnchorConfig", "AnchorGrid", "encode_boxes", "decode_boxes",
    "AssignedTargets", "assign_targets", "nms_bev", "nms_2d",
    "DetectionResult", "EvalConfig", "average_precision", "evaluate_map",
    "match_detections", "evaluate_by_difficulty", "precision_recall_curve",
]
