"""KITTI-style average-precision evaluation for 3D detections.

Implements the R40 interpolated AP used by the modern KITTI benchmark:
detections are matched to ground truth greedily by descending score under
a class-specific BEV IoU threshold; precision is sampled at 40 equally
spaced recall positions.  ``evaluate_map`` averages over classes, which
is the single mAP number the paper reports in Table 2.

Empty-input conventions mirror the streaming runtime's NaN-on-empty
rule (:class:`repro.runtime.StreamReport`): a metric that is
*undefined* is NaN, a metric that is *genuinely zero* is 0.0.
Concretely: a class absent from the ground truth has NaN AP (there was
nothing to find — 0.0 would read as a catastrophic miss) and is
excluded from the mAP mean; ``mAP`` itself is NaN only when no
evaluated class has any ground truth.  A class with ground truth but
zero matching predictions — e.g. the all-dropped stream, whose
predictions are all empty — scores a legitimate 0.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.pointcloud.boxes import (Box3D, boxes_to_array, iou_matrix_bev,
                                    CLASS_NAMES)

__all__ = ["DetectionResult", "EvalConfig", "average_precision",
           "evaluate_map", "match_detections", "evaluate_by_difficulty",
           "precision_recall_curve"]

_DEFAULT_IOU = {"Car": 0.5, "Pedestrian": 0.25, "Cyclist": 0.25}


@dataclass
class DetectionResult:
    """Predictions for one frame."""

    boxes: list[Box3D]
    frame_id: int = 0


@dataclass
class EvalConfig:
    class_names: tuple = CLASS_NAMES
    iou_thresholds: dict = field(default_factory=lambda: dict(_DEFAULT_IOU))
    recall_positions: int = 40
    max_difficulty: int = 2   # include easy..hard


def match_detections(pred: list[Box3D], gt: list[Box3D],
                     iou_threshold: float) -> tuple[np.ndarray, int]:
    """Greedy score-ordered matching within one frame and one class.

    Returns (tp flags aligned with score-sorted predictions, num gt).
    """
    order = np.argsort([-b.score for b in pred])
    pred_sorted = [pred[i] for i in order]
    tp = np.zeros(len(pred_sorted), dtype=bool)
    if not gt:
        return tp, 0
    gt_used = np.zeros(len(gt), dtype=bool)
    if pred_sorted:
        iou = iou_matrix_bev(boxes_to_array(pred_sorted), boxes_to_array(gt))
        for i in range(len(pred_sorted)):
            candidates = np.where(~gt_used & (iou[i] >= iou_threshold))[0]
            if len(candidates) > 0:
                best = candidates[np.argmax(iou[i][candidates])]
                gt_used[best] = True
                tp[i] = True
    return tp, len(gt)


def average_precision(predictions: list[DetectionResult],
                      ground_truth: list[list[Box3D]],
                      class_name: str,
                      config: EvalConfig | None = None) -> float:
    """R40 interpolated AP (0-100 scale) for one class.

    NaN when the class has no ground truth in any frame (the metric is
    undefined); 0.0 when ground truth exists but nothing matched.
    """
    config = config or EvalConfig()
    threshold = config.iou_thresholds[class_name]
    _check_aligned(predictions, ground_truth)

    scores: list[float] = []
    tps: list[bool] = []
    total_gt = 0
    for frame_pred, frame_gt in zip(predictions, ground_truth):
        pred = [b for b in frame_pred.boxes if b.label == class_name]
        gt = [b for b in frame_gt if b.label == class_name
              and b.difficulty <= config.max_difficulty]
        tp, n_gt = match_detections(pred, gt, threshold)
        order = np.argsort([-b.score for b in pred])
        scores.extend(pred[i].score for i in order)
        tps.extend(tp.tolist())
        total_gt += n_gt

    if total_gt == 0:
        return math.nan
    if not scores:
        return 0.0

    order = np.argsort(-np.array(scores))
    tp_sorted = np.array(tps)[order]
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / total_gt
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)

    # R40 interpolation: precision envelope sampled at 40 recall points.
    ap = 0.0
    samples = np.linspace(1.0 / config.recall_positions, 1.0,
                          config.recall_positions)
    for r in samples:
        mask = recall >= r - 1e-9
        ap += precision[mask].max() if mask.any() else 0.0
    return 100.0 * ap / config.recall_positions


def _check_aligned(predictions, ground_truth) -> None:
    if len(predictions) != len(ground_truth):
        raise ValueError(
            f"predictions and ground truth are misaligned: "
            f"{len(predictions)} predicted frames vs "
            f"{len(ground_truth)} ground-truth frames")


def evaluate_map(predictions: list[DetectionResult],
                 ground_truth: list[list[Box3D]],
                 config: EvalConfig | None = None) -> dict:
    """Per-class AP plus their mean (the paper's mAP).

    Classes absent from the ground truth carry NaN AP and are excluded
    from the mean; ``mAP`` is NaN only when *no* class has ground truth
    (empty frame list, or frames with no annotations at the evaluated
    difficulty).
    """
    config = config or EvalConfig()
    _check_aligned(predictions, ground_truth)
    result = {}
    present = []
    for cls in config.class_names:
        ap = average_precision(predictions, ground_truth, cls, config)
        result[cls] = ap
        if not math.isnan(ap):
            present.append(ap)
    result["mAP"] = float(np.mean(present)) if present else math.nan
    return result


def evaluate_by_difficulty(predictions: list[DetectionResult],
                           ground_truth: list[list[Box3D]],
                           config: EvalConfig | None = None) -> dict:
    """KITTI-style stratified evaluation: easy / moderate / hard mAP.

    Each bucket evaluates against ground truth *up to* that difficulty
    (easy ⊆ moderate ⊆ hard), mirroring KITTI's cumulative protocol.
    """
    config = config or EvalConfig()
    buckets = {"easy": 0, "moderate": 1, "hard": 2}
    result = {}
    for name, max_difficulty in buckets.items():
        stratified = EvalConfig(class_names=config.class_names,
                                iou_thresholds=dict(config.iou_thresholds),
                                recall_positions=config.recall_positions,
                                max_difficulty=max_difficulty)
        result[name] = evaluate_map(predictions, ground_truth, stratified)
    return result


def precision_recall_curve(predictions: list[DetectionResult],
                           ground_truth: list[list[Box3D]],
                           class_name: str,
                           config: EvalConfig | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Raw (recall, precision) points for one class, score-ordered."""
    config = config or EvalConfig()
    threshold = config.iou_thresholds[class_name]
    _check_aligned(predictions, ground_truth)
    scores: list[float] = []
    tps: list[bool] = []
    total_gt = 0
    for frame_pred, frame_gt in zip(predictions, ground_truth):
        pred = [b for b in frame_pred.boxes if b.label == class_name]
        gt = [b for b in frame_gt if b.label == class_name
              and b.difficulty <= config.max_difficulty]
        tp, n_gt = match_detections(pred, gt, threshold)
        order = np.argsort([-b.score for b in pred])
        scores.extend(pred[i].score for i in order)
        tps.extend(tp.tolist())
        total_gt += n_gt
    if total_gt == 0 or not scores:
        return np.zeros(0), np.zeros(0)
    order = np.argsort(-np.array(scores))
    tp_sorted = np.array(tps)[order]
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / total_gt
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
    return recall, precision
