"""KITTI-style average-precision evaluation for 3D detections.

Implements the R40 interpolated AP used by the modern KITTI benchmark:
detections are matched to ground truth greedily by descending score under
a class-specific BEV IoU threshold; precision is sampled at 40 equally
spaced recall positions.  ``evaluate_map`` averages over classes, which
is the single mAP number the paper reports in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pointcloud.boxes import (Box3D, boxes_to_array, iou_matrix_bev,
                                    CLASS_NAMES)

__all__ = ["DetectionResult", "EvalConfig", "average_precision",
           "evaluate_map", "match_detections", "evaluate_by_difficulty",
           "precision_recall_curve"]

_DEFAULT_IOU = {"Car": 0.5, "Pedestrian": 0.25, "Cyclist": 0.25}


@dataclass
class DetectionResult:
    """Predictions for one frame."""

    boxes: list[Box3D]
    frame_id: int = 0


@dataclass
class EvalConfig:
    class_names: tuple = CLASS_NAMES
    iou_thresholds: dict = field(default_factory=lambda: dict(_DEFAULT_IOU))
    recall_positions: int = 40
    max_difficulty: int = 2   # include easy..hard


def match_detections(pred: list[Box3D], gt: list[Box3D],
                     iou_threshold: float) -> tuple[np.ndarray, int]:
    """Greedy score-ordered matching within one frame and one class.

    Returns (tp flags aligned with score-sorted predictions, num gt).
    """
    order = np.argsort([-b.score for b in pred])
    pred_sorted = [pred[i] for i in order]
    tp = np.zeros(len(pred_sorted), dtype=bool)
    if not gt:
        return tp, 0
    gt_used = np.zeros(len(gt), dtype=bool)
    if pred_sorted:
        iou = iou_matrix_bev(boxes_to_array(pred_sorted), boxes_to_array(gt))
        for i in range(len(pred_sorted)):
            candidates = np.where(~gt_used & (iou[i] >= iou_threshold))[0]
            if len(candidates) > 0:
                best = candidates[np.argmax(iou[i][candidates])]
                gt_used[best] = True
                tp[i] = True
    return tp, len(gt)


def average_precision(predictions: list[DetectionResult],
                      ground_truth: list[list[Box3D]],
                      class_name: str,
                      config: EvalConfig | None = None) -> float:
    """R40 interpolated AP (0-100 scale) for one class."""
    config = config or EvalConfig()
    threshold = config.iou_thresholds[class_name]

    scores: list[float] = []
    tps: list[bool] = []
    total_gt = 0
    for frame_pred, frame_gt in zip(predictions, ground_truth):
        pred = [b for b in frame_pred.boxes if b.label == class_name]
        gt = [b for b in frame_gt if b.label == class_name
              and b.difficulty <= config.max_difficulty]
        tp, n_gt = match_detections(pred, gt, threshold)
        order = np.argsort([-b.score for b in pred])
        scores.extend(pred[i].score for i in order)
        tps.extend(tp.tolist())
        total_gt += n_gt

    if total_gt == 0:
        return 0.0
    if not scores:
        return 0.0

    order = np.argsort(-np.array(scores))
    tp_sorted = np.array(tps)[order]
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / total_gt
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)

    # R40 interpolation: precision envelope sampled at 40 recall points.
    ap = 0.0
    samples = np.linspace(1.0 / config.recall_positions, 1.0,
                          config.recall_positions)
    for r in samples:
        mask = recall >= r - 1e-9
        ap += precision[mask].max() if mask.any() else 0.0
    return 100.0 * ap / config.recall_positions


def evaluate_map(predictions: list[DetectionResult],
                 ground_truth: list[list[Box3D]],
                 config: EvalConfig | None = None) -> dict:
    """Per-class AP plus their mean (the paper's mAP)."""
    config = config or EvalConfig()
    result = {}
    present = []
    for cls in config.class_names:
        has_gt = any(b.label == cls for frame in ground_truth for b in frame)
        ap = average_precision(predictions, ground_truth, cls, config)
        result[cls] = ap
        if has_gt:
            present.append(ap)
    result["mAP"] = float(np.mean(present)) if present else 0.0
    return result


def evaluate_by_difficulty(predictions: list[DetectionResult],
                           ground_truth: list[list[Box3D]],
                           config: EvalConfig | None = None) -> dict:
    """KITTI-style stratified evaluation: easy / moderate / hard mAP.

    Each bucket evaluates against ground truth *up to* that difficulty
    (easy ⊆ moderate ⊆ hard), mirroring KITTI's cumulative protocol.
    """
    config = config or EvalConfig()
    buckets = {"easy": 0, "moderate": 1, "hard": 2}
    result = {}
    for name, max_difficulty in buckets.items():
        stratified = EvalConfig(class_names=config.class_names,
                                iou_thresholds=dict(config.iou_thresholds),
                                recall_positions=config.recall_positions,
                                max_difficulty=max_difficulty)
        result[name] = evaluate_map(predictions, ground_truth, stratified)
    return result


def precision_recall_curve(predictions: list[DetectionResult],
                           ground_truth: list[list[Box3D]],
                           class_name: str,
                           config: EvalConfig | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Raw (recall, precision) points for one class, score-ordered."""
    config = config or EvalConfig()
    threshold = config.iou_thresholds[class_name]
    scores: list[float] = []
    tps: list[bool] = []
    total_gt = 0
    for frame_pred, frame_gt in zip(predictions, ground_truth):
        pred = [b for b in frame_pred.boxes if b.label == class_name]
        gt = [b for b in frame_gt if b.label == class_name
              and b.difficulty <= config.max_difficulty]
        tp, n_gt = match_detections(pred, gt, threshold)
        order = np.argsort([-b.score for b in pred])
        scores.extend(pred[i].score for i in order)
        tps.extend(tp.tolist())
        total_gt += n_gt
    if total_gt == 0 or not scores:
        return np.zeros(0), np.zeros(0)
    order = np.argsort(-np.array(scores))
    tp_sorted = np.array(tps)[order]
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / total_gt
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
    return recall, precision
