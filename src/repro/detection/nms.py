"""Non-maximum suppression for rotated BEV boxes and 2D boxes."""

from __future__ import annotations

import numpy as np

from repro.pointcloud.boxes import iou_bev

__all__ = ["nms_bev", "nms_2d"]


def nms_bev(boxes: np.ndarray, scores: np.ndarray,
            iou_threshold: float = 0.3,
            max_keep: int = 100) -> np.ndarray:
    """Greedy rotated-BEV NMS; returns indices of kept boxes."""
    order = np.argsort(-np.asarray(scores))
    keep: list[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        if len(keep) >= max_keep:
            break
        for other in order:
            if suppressed[other] or other == idx:
                continue
            if iou_bev(boxes[idx], boxes[other]) > iou_threshold:
                suppressed[other] = True
    return np.array(keep, dtype=np.int64)


def nms_2d(boxes: np.ndarray, scores: np.ndarray,
           iou_threshold: float = 0.5,
           max_keep: int = 100) -> np.ndarray:
    """Axis-aligned 2D NMS on [x0 y0 x1 y1] boxes (vectorized)."""
    boxes = np.asarray(boxes, dtype=np.float64)
    order = np.argsort(-np.asarray(scores))
    areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    keep: list[int] = []
    while order.size > 0 and len(keep) < max_keep:
        idx = order[0]
        keep.append(int(idx))
        rest = order[1:]
        xx0 = np.maximum(boxes[idx, 0], boxes[rest, 0])
        yy0 = np.maximum(boxes[idx, 1], boxes[rest, 1])
        xx1 = np.minimum(boxes[idx, 2], boxes[rest, 2])
        yy1 = np.minimum(boxes[idx, 3], boxes[rest, 3])
        inter = np.clip(xx1 - xx0, 0, None) * np.clip(yy1 - yy0, 0, None)
        union = areas[idx] + areas[rest] - inter
        iou = np.where(union > 0, inter / union, 0.0)
        order = rest[iou <= iou_threshold]
    return np.array(keep, dtype=np.int64)
