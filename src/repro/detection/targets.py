"""Anchor→ground-truth assignment for training SSD-style 3D heads."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.boxes import Box3D, boxes_to_array, iou_matrix_bev

from .anchors import AnchorGrid, encode_boxes

__all__ = ["AssignedTargets", "assign_targets"]


@dataclass
class AssignedTargets:
    """Per-anchor training targets."""

    cls_target: np.ndarray      # (A,) 1 positive, 0 negative, -1 ignore
    reg_target: np.ndarray      # (A, 7) encoded residuals (zeros if negative)
    matched_gt: np.ndarray      # (A,) index of the matched gt, -1 if none

    @property
    def num_positive(self) -> int:
        return int((self.cls_target == 1).sum())


def assign_targets(grid: AnchorGrid, gt_boxes: list[Box3D],
                   pos_iou: float = 0.45, neg_iou: float = 0.3) -> AssignedTargets:
    """Match anchors to ground truth by rotated BEV IoU.

    An anchor is positive if its class matches and IoU ≥ ``pos_iou``, or
    if it is the best anchor for a ground-truth box (guaranteeing every
    object has at least one positive).  IoU in (neg, pos) is ignored.
    """
    num_anchors = len(grid)
    cls_target = np.zeros(num_anchors, dtype=np.int64)
    reg_target = np.zeros((num_anchors, 7), dtype=np.float32)
    matched = np.full(num_anchors, -1, dtype=np.int64)
    if not gt_boxes:
        return AssignedTargets(cls_target, reg_target, matched)

    gt_array = boxes_to_array(gt_boxes)
    gt_labels = np.array([b.label for b in gt_boxes])
    iou = iou_matrix_bev(grid.boxes, gt_array)           # (A, G)

    # Mask out class mismatches so a Car anchor never matches a Pedestrian.
    class_ok = grid.labels[:, None] == gt_labels[None, :]
    iou = np.where(class_ok, iou, 0.0)

    best_gt = iou.argmax(axis=1)
    best_iou = iou.max(axis=1)

    positive = best_iou >= pos_iou
    ignore = (best_iou > neg_iou) & ~positive

    # Force-match: the best anchor per gt becomes positive.  When a small
    # object overlaps no anchor at all (coarse grids), fall back to the
    # nearest same-class anchor center so every object stays trainable.
    for g in range(len(gt_boxes)):
        column = iou[:, g]
        if column.max() > 0:
            anchor_idx = int(column.argmax())
        else:
            same_class = np.where(class_ok[:, g])[0]
            if len(same_class) == 0:
                continue
            centers = grid.boxes[same_class, :2]
            target_center = gt_array[g, :2]
            distances = np.linalg.norm(centers - target_center, axis=1)
            anchor_idx = int(same_class[distances.argmin()])
        positive[anchor_idx] = True
        ignore[anchor_idx] = False
        best_gt[anchor_idx] = g

    cls_target[positive] = 1
    cls_target[ignore] = -1
    matched[positive] = best_gt[positive]
    if positive.any():
        reg_target[positive] = encode_boxes(
            gt_array[best_gt[positive]], grid.boxes[positive])
    return AssignedTargets(cls_target, reg_target, matched)
