"""BEV anchor grids and box encoding for SSD-style 3D heads.

PointPillars places, at every BEV cell, one anchor per class per
orientation (0° and 90°), sized to the class's mean dimensions.  Boxes
are regressed as the standard 7-dim residual used by SECOND and
PointPillars (offsets normalized by anchor diagonal, log-size ratios,
yaw difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AnchorConfig", "AnchorGrid", "encode_boxes", "decode_boxes"]

_DEFAULT_SIZES = {
    "Car": (3.9, 1.6, 1.56),
    "Pedestrian": (0.8, 0.6, 1.73),
    "Cyclist": (1.76, 0.6, 1.73),
}
_DEFAULT_CENTER_Z = {"Car": 0.78, "Pedestrian": 0.87, "Cyclist": 0.87}


@dataclass
class AnchorConfig:
    """Anchor layout over the BEV feature map."""

    class_names: tuple = ("Car", "Pedestrian", "Cyclist")
    rotations: tuple = (0.0, np.pi / 2)
    sizes: dict = field(default_factory=lambda: dict(_DEFAULT_SIZES))
    center_z: dict = field(default_factory=lambda: dict(_DEFAULT_CENTER_Z))

    @property
    def anchors_per_cell(self) -> int:
        return len(self.class_names) * len(self.rotations)


class AnchorGrid:
    """All anchors over a BEV extent, flattened in head-output order.

    Ordering matches the reshape of a head output of shape
    ``(A*C, H, W)``: cell-major (row, col), then class, then rotation.
    """

    def __init__(self, config: AnchorConfig, x_range: tuple, y_range: tuple,
                 feature_shape: tuple[int, int]):
        self.config = config
        self.feature_shape = feature_shape
        ny, nx = feature_shape
        step_x = (x_range[1] - x_range[0]) / nx
        step_y = (y_range[1] - y_range[0]) / ny
        xs = x_range[0] + (np.arange(nx) + 0.5) * step_x
        ys = y_range[0] + (np.arange(ny) + 0.5) * step_y

        anchors = []
        labels = []
        for row in range(ny):
            for col in range(nx):
                for cls in config.class_names:
                    dx, dy, dz = config.sizes[cls]
                    z = config.center_z[cls]
                    for yaw in config.rotations:
                        anchors.append([xs[col], ys[row], z,
                                        dx, dy, dz, yaw])
                        labels.append(cls)
        self.boxes = np.array(anchors, dtype=np.float32)
        self.labels = np.array(labels)

    def __len__(self) -> int:
        return len(self.boxes)

    @property
    def diagonals(self) -> np.ndarray:
        """BEV diagonal of each anchor, the residual normalizer."""
        return np.sqrt(self.boxes[:, 3] ** 2 + self.boxes[:, 4] ** 2)


def encode_boxes(gt: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Encode ground-truth boxes (N,7) against anchors (N,7) → (N,7)."""
    diag = np.sqrt(anchors[:, 3] ** 2 + anchors[:, 4] ** 2)
    encoded = np.empty_like(gt)
    encoded[:, 0] = (gt[:, 0] - anchors[:, 0]) / diag
    encoded[:, 1] = (gt[:, 1] - anchors[:, 1]) / diag
    encoded[:, 2] = (gt[:, 2] - anchors[:, 2]) / anchors[:, 5]
    encoded[:, 3] = np.log(gt[:, 3] / anchors[:, 3])
    encoded[:, 4] = np.log(gt[:, 4] / anchors[:, 4])
    encoded[:, 5] = np.log(gt[:, 5] / anchors[:, 5])
    # sin-encoded yaw residual (SECOND/PointPillars): a π flip of a box
    # leaves its BEV footprint identical, so sin(Δyaw) removes the
    # discontinuity at ±π that otherwise destabilizes car regression.
    encoded[:, 6] = np.sin(gt[:, 6] - anchors[:, 6])
    return encoded.astype(np.float32)


def decode_boxes(deltas: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Invert :func:`encode_boxes`."""
    diag = np.sqrt(anchors[:, 3] ** 2 + anchors[:, 4] ** 2)
    decoded = np.empty_like(deltas)
    decoded[:, 0] = deltas[:, 0] * diag + anchors[:, 0]
    decoded[:, 1] = deltas[:, 1] * diag + anchors[:, 1]
    decoded[:, 2] = deltas[:, 2] * anchors[:, 5] + anchors[:, 2]
    decoded[:, 3] = np.exp(np.clip(deltas[:, 3], -4, 4)) * anchors[:, 3]
    decoded[:, 4] = np.exp(np.clip(deltas[:, 4], -4, 4)) * anchors[:, 4]
    decoded[:, 5] = np.exp(np.clip(deltas[:, 5], -4, 4)) * anchors[:, 5]
    decoded[:, 6] = np.arcsin(np.clip(deltas[:, 6], -1.0, 1.0)) \
        + anchors[:, 6]
    return decoded.astype(np.float32)
