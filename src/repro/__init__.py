"""repro — reproduction of *UPAQ: A Framework for Real-Time and
Energy-Efficient 3D Object Detection in Autonomous Vehicles* (DATE 2025).

Subpackages
-----------
``repro.core``
    The UPAQ framework: pattern pruning, mixed-precision quantization,
    root/leaf grouping, efficiency-score search, HCK/LCK presets.
``repro.nn``
    Numpy neural-network framework with autograd (PyTorch substitute).
``repro.pointcloud`` / ``repro.camera``
    Synthetic KITTI-like data substrate: LiDAR simulator, scene
    generator, box geometry, camera projection/rendering, KITTI IO.
``repro.detection``
    Anchors, NMS, target assignment, KITTI-style mAP evaluation.
``repro.models``
    PointPillars, SMOKE, SECOND, Focals Conv, VSC detectors.
``repro.baselines``
    Ps&Qs, CLIP-Q, R-TOSS, LiDAR-PTQ compression baselines.
``repro.hardware``
    Jetson Orin Nano / RTX 4080 analytic latency+energy device models.
``repro.harness``
    Regenerates every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = [
    "baselines", "camera", "cli", "core", "detection", "hardware",
    "harness", "models", "nn", "pointcloud", "runtime", "viz",
]
