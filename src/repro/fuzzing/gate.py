"""Regression gating: compare a fuzz sweep against a committed baseline.

The baseline (``artifacts/fuzz_baseline.json``) stores per-cell metrics
from a blessed full-matrix sweep.  :func:`check_gate` compares every
cell the *current* sweep ran against the baseline cell of the same key
and fails when

* mAP dropped by more than ``map_drop`` points (absolute, on the 0-100
  KITTI scale),
* p99 device latency rose by more than ``p99_rise_frac`` (relative),
* the deadline hit rate dropped by more than ``hit_rate_drop``
  (absolute, on the 0-1 scale).

Because cell randomness is seeded from ``cell_seed(sweep_seed, key)``
(independent of sweep composition), a *subset* sweep with the same
seed/frames reproduces exactly the cells of the full baseline matrix —
CI can gate a reduced smoke sweep against the full committed baseline.

NaN rules (mirroring the metric layer's NaN-on-undefined convention):

* baseline NaN → the check is skipped (nothing to regress from);
* current NaN where the baseline is finite → hard failure (a metric
  that used to exist vanished);
* cells in the current sweep but absent from the baseline are reported
  as ``new`` (a warning, not a failure — refresh the baseline to bless
  them).

A baseline is only comparable when seed, frames_per_cell, model and
execution backend match; :func:`check_gate` raises :class:`ValueError`
otherwise so a stale baseline can never silently pass.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .harness import REPORT_VERSION, FuzzReport, _json_safe, _nan_safe

__all__ = ["GateThresholds", "GateReport", "check_gate", "make_baseline",
           "write_baseline", "load_baseline"]

#: metrics where *larger is better* / *smaller is better* checks apply
_MAP_METRICS = ("mAP", "mAP_easy", "mAP_moderate", "mAP_hard")


@dataclass(frozen=True)
class GateThresholds:
    """How much regression the gate tolerates before failing."""

    #: absolute mAP drop allowed, in KITTI points (0-100 scale)
    map_drop: float = 3.0
    #: relative p99 latency rise allowed (0.25 = +25 %)
    p99_rise_frac: float = 0.25
    #: absolute deadline-hit-rate drop allowed (0-1 scale)
    hit_rate_drop: float = 0.15


@dataclass
class GateReport:
    """The verdict: per-cell failures, warnings, and summary counts."""

    passed: bool
    thresholds: GateThresholds
    #: cells that breached a threshold: list of violation dicts
    failures: list = field(default_factory=list)
    #: cells present now but not in the baseline
    new_cells: list = field(default_factory=list)
    #: baseline cells the current sweep did not run (informational)
    unchecked_cells: list = field(default_factory=list)
    checked_cells: int = 0

    def to_json(self) -> dict:
        return {
            "passed": self.passed,
            "thresholds": {
                "map_drop": self.thresholds.map_drop,
                "p99_rise_frac": self.thresholds.p99_rise_frac,
                "hit_rate_drop": self.thresholds.hit_rate_drop,
            },
            "checked_cells": self.checked_cells,
            "failures": [_json_safe(f) for f in self.failures],
            "new_cells": sorted(self.new_cells),
            "unchecked_cells": sorted(self.unchecked_cells),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        parts = [f"gate {verdict}: {self.checked_cells} cells checked, "
                 f"{len(self.failures)} violations"]
        if self.new_cells:
            parts.append(f"{len(self.new_cells)} new cells not in baseline")
        if self.unchecked_cells:
            parts.append(f"{len(self.unchecked_cells)} baseline cells "
                         "not exercised")
        return "; ".join(parts)


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and not math.isnan(value)


def _compare_cell(key: str, base: dict, cur: dict,
                  thresholds: GateThresholds) -> list:
    """All threshold violations for one cell."""
    violations = []

    def violation(metric, kind, allowed, baseline_value, current_value):
        violations.append({
            "cell": key, "metric": metric, "kind": kind,
            "allowed": allowed,
            "baseline": baseline_value, "current": current_value,
        })

    def check(metric, kind, allowed, breached):
        baseline_value = base.get(metric, math.nan)
        current_value = cur.get(metric, math.nan)
        if not _finite(baseline_value):
            return  # nothing to regress from
        if not _finite(current_value):
            violation(metric, "vanished", allowed, baseline_value,
                      current_value)
            return
        if breached(baseline_value, current_value):
            violation(metric, kind, allowed, baseline_value, current_value)

    for metric in _MAP_METRICS:
        check(metric, "map_drop", thresholds.map_drop,
              lambda b, c: b - c > thresholds.map_drop)
    check("p99_ms", "p99_rise", thresholds.p99_rise_frac,
          lambda b, c: b > 0 and (c - b) / b > thresholds.p99_rise_frac)
    check("deadline_hit_rate", "hit_rate_drop", thresholds.hit_rate_drop,
          lambda b, c: b - c > thresholds.hit_rate_drop)
    return violations


def check_gate(current: FuzzReport, baseline: dict,
               thresholds: GateThresholds | None = None) -> GateReport:
    """Gate ``current`` against a baseline payload (see make_baseline).

    Raises :class:`ValueError` if the baseline was produced under a
    different seed, frames_per_cell, model or execution backend — those
    runs are not comparable and must never silently pass.
    """
    thresholds = thresholds or GateThresholds()
    mismatches = []
    for key_name in ("seed", "frames_per_cell", "model", "execution"):
        base_value = baseline.get(key_name)
        cur_value = getattr(current.config, key_name)
        if base_value != cur_value:
            mismatches.append(f"{key_name}: baseline={base_value!r} "
                              f"current={cur_value!r}")
    if mismatches:
        raise ValueError(
            "baseline is not comparable to this sweep ("
            + "; ".join(mismatches)
            + "); regenerate it with --write-baseline")

    base_cells = {key: _nan_safe(metrics)
                  for key, metrics in baseline.get("cells", {}).items()}
    report = GateReport(passed=True, thresholds=thresholds)
    for key, metrics in sorted(current.cells.items()):
        if key not in base_cells:
            report.new_cells.append(key)
            continue
        report.checked_cells += 1
        report.failures.extend(
            _compare_cell(key, base_cells[key], metrics, thresholds))
    report.unchecked_cells = sorted(set(base_cells) - set(current.cells))
    report.passed = not report.failures
    return report


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------

def make_baseline(report: FuzzReport) -> dict:
    """The committable baseline payload for a sweep (cells only, no rows)."""
    return {
        "version": REPORT_VERSION,
        "seed": report.config.seed,
        "frames_per_cell": report.config.frames_per_cell,
        "model": report.config.model,
        "execution": report.config.execution,
        "device": report.config.device,
        "cells": {key: _json_safe(metrics)
                  for key, metrics in sorted(report.cells.items())},
    }


def write_baseline(report: FuzzReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(make_baseline(report), handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")


def load_baseline(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)
