"""Declarative queries over fuzz-harness frame rows.

EVA (PAPERS.md) popularized asking SQL-ish questions of a video
detector's output stream ("frames where a pedestrian was detected...").
This module is that idiom over the per-frame rows the fuzzing harness
records: each row is a flat dict (scenario, preset, condition,
frame_id, status, deadline_met, latency_ms, labels, ...) and a query is
a composable predicate over one row.

Two equivalent front-ends:

* **Combinators** — ``F.<field>`` builds a field reference whose
  comparison operators return predicates, composable with ``&``, ``|``
  and ``~``::

      q = (F.label == "Pedestrian") & (F.status == "degraded") \
          & ~F.deadline_met
      held = q.filter(report.rows)

* **Text** — :func:`parse_query` accepts the same logic in a tiny
  expression language used by the ``repro query`` CLI::

      label = Pedestrian and status = degraded and deadline_met = false

Comparison semantics: when the row value is a list/tuple/set (e.g.
``labels``), ``=`` means membership and ``!=`` its negation — matching
EVA's array-contains idiom.  A field missing from a row never matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["F", "Field", "Predicate", "QueryError", "parse_query",
           "ROW_FIELDS"]

#: The row schema the harness emits (documented here so queries and
#: readers of saved reports have one reference).
ROW_FIELDS = (
    "scenario", "preset", "condition", "cell", "frame_id", "status",
    "deadline_met", "fallback", "rung", "latency_ms", "energy_mj",
    "num_detections", "labels", "max_score", "gt_labels", "gt_count",
)


class QueryError(ValueError):
    """Malformed query text or an unusable predicate."""


class Predicate:
    """A boolean test over one frame row; composable with ``& | ~``."""

    def matches(self, row: dict) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def filter(self, rows) -> list:
        """The rows satisfying this predicate, in input order."""
        return [row for row in rows if self.matches(row)]

    def count(self, rows) -> int:
        return sum(1 for row in rows if self.matches(row))

    def __and__(self, other: "Predicate") -> "Predicate":
        return _And(self, _coerce(other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return _Or(self, _coerce(other))

    def __invert__(self) -> "Predicate":
        return _Not(self)


def _coerce(value) -> Predicate:
    if isinstance(value, Field):
        return value._truthy()
    if not isinstance(value, Predicate):
        raise QueryError(f"cannot combine a query with {value!r}")
    return value


@dataclass(frozen=True)
class _And(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row):
        return self.left.matches(row) and self.right.matches(row)

    def __repr__(self):
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True)
class _Or(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row):
        return self.left.matches(row) or self.right.matches(row)

    def __repr__(self):
        return f"({self.left!r} or {self.right!r})"


@dataclass(frozen=True)
class _Not(Predicate):
    inner: Predicate

    def matches(self, row):
        return not self.inner.matches(row)

    def __repr__(self):
        return f"(not {self.inner!r})"


_MISSING = object()


@dataclass(frozen=True)
class _Cmp(Predicate):
    field: str
    op: str
    value: object

    def matches(self, row):
        actual = row.get(self.field, _MISSING)
        if actual is _MISSING:
            return False
        if isinstance(actual, (list, tuple, set, frozenset)):
            # Containment semantics for collection-valued fields.
            if self.op == "=":
                return self.value in actual
            if self.op == "!=":
                return self.value not in actual
            raise QueryError(
                f"field {self.field!r} holds a collection; only = and != "
                f"apply, not {self.op!r}")
        try:
            if self.op == "=":
                return actual == self.value
            if self.op == "!=":
                return actual != self.value
            if self.op == "<":
                return actual < self.value
            if self.op == "<=":
                return actual <= self.value
            if self.op == ">":
                return actual > self.value
            if self.op == ">=":
                return actual >= self.value
        except TypeError:
            return False
        raise QueryError(f"unknown operator {self.op!r}")

    def __repr__(self):
        return f"{self.field} {self.op} {self.value!r}"


@dataclass(frozen=True)
class _Truthy(Predicate):
    field: str

    def matches(self, row):
        return bool(row.get(self.field, False))

    def __repr__(self):
        return self.field


class Field:
    """A named row field; comparisons yield :class:`Predicate`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, value):          # type: ignore[override]
        return _Cmp(self.name, "=", value)

    def __ne__(self, value):          # type: ignore[override]
        return _Cmp(self.name, "!=", value)

    def __lt__(self, value):
        return _Cmp(self.name, "<", value)

    def __le__(self, value):
        return _Cmp(self.name, "<=", value)

    def __gt__(self, value):
        return _Cmp(self.name, ">", value)

    def __ge__(self, value):
        return _Cmp(self.name, ">=", value)

    def contains(self, value):
        """Explicit membership test for collection fields."""
        return _Cmp(self.name, "=", value)

    def _truthy(self) -> Predicate:
        return _Truthy(self.name)

    def __invert__(self) -> Predicate:
        return _Not(self._truthy())

    def __and__(self, other):
        return self._truthy() & _coerce(other)

    def __rand__(self, other):
        return _coerce(other) & self._truthy()

    def __or__(self, other):
        return self._truthy() | _coerce(other)

    def __ror__(self, other):
        return _coerce(other) | self._truthy()

    def __hash__(self):
        return hash(("Field", self.name))

    def __repr__(self):
        return f"F.{self.name}"


class _FieldFactory:
    """``F.status``, ``F.latency_ms``, ... — attribute access mints fields."""

    def __getattr__(self, name: str) -> Field:
        if name.startswith("_"):
            raise AttributeError(name)
        return Field(name)

    def __call__(self, name: str) -> Field:
        return Field(name)


F = _FieldFactory()


# ---------------------------------------------------------------------------
# Text front-end
# ---------------------------------------------------------------------------

_TOKEN = re.compile(r"""
    \s*(?:
      (?P<lparen>\() | (?P<rparen>\)) |
      (?P<op><=|>=|!=|==|=|<|>) |
      (?P<string>'[^']*'|"[^"]*") |
      (?P<word>[A-Za-z_][A-Za-z0-9_.\-]*) |
      (?P<number>-?\d+(?:\.\d+)?)
    )""", re.VERBOSE)

_KEYWORDS = {"and", "or", "not"}
_BOOLEANS = {"true": True, "false": False}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == match.start():
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot parse query near {remainder[:20]!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append((value.lower(), value))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    """Recursive descent over: or → and → not/paren/comparison."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else (None, None)

    def take(self):
        token = self.peek()
        self.pos += 1
        return token

    def parse(self) -> Predicate:
        result = self.or_expr()
        if self.peek()[0] is not None:
            raise QueryError(
                f"unexpected trailing input at {self.peek()[1]!r}")
        return result

    def or_expr(self) -> Predicate:
        left = self.and_expr()
        while self.peek()[0] == "or":
            self.take()
            left = left | self.and_expr()
        return left

    def and_expr(self) -> Predicate:
        left = self.unary()
        while self.peek()[0] == "and":
            self.take()
            left = left & self.unary()
        return left

    def unary(self) -> Predicate:
        kind, value = self.peek()
        if kind == "not":
            self.take()
            return ~self.unary()
        if kind == "lparen":
            self.take()
            inner = self.or_expr()
            if self.take()[0] != "rparen":
                raise QueryError("unbalanced parenthesis")
            return inner
        return self.comparison()

    def comparison(self) -> Predicate:
        kind, name = self.take()
        if kind != "word":
            raise QueryError(f"expected a field name, got {name!r}")
        if self.peek()[0] != "op":
            # Bare field → truthiness ("fallback", "deadline_met").
            return _Truthy(name)
        op = self.take()[1]
        if op == "==":
            op = "="
        return _Cmp(name, op, self.literal())

    def literal(self):
        kind, value = self.take()
        if kind == "string":
            return value[1:-1]
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "word":
            lowered = value.lower()
            if lowered in _BOOLEANS:
                return _BOOLEANS[lowered]
            return value
        raise QueryError(f"expected a literal value, got {value!r}")


def parse_query(text: str) -> Predicate:
    """Parse query text into a :class:`Predicate`.

    Grammar (loosest to tightest): ``or`` < ``and`` < ``not`` /
    parentheses < ``field op literal``.  Operators: ``= == != < <= >
    >=``; bare identifiers are truthiness tests; literals are numbers,
    ``true``/``false``, quoted strings, or bare words.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()
