"""The chaos sweep: run every matrix cell through the streaming engine.

For each ``scenario × preset × condition`` cell the harness

1. generates the scenario's seed-deterministic scenes (shared across
   presets/conditions — scene content depends only on the scenario and
   sweep seed),
2. compresses the model under test with the cell's preset (memoized per
   sweep; compression is itself deterministic),
3. streams the scenes through an :class:`~repro.runtime.InferenceEngine`
   configured by the condition (faults, deadline, batching, watchdog
   fallback), and
4. distills the :class:`~repro.runtime.StreamReport` into per-cell
   metrics — mAP via :func:`repro.detection.evaluate_map`, stratified
   difficulty mAPs, p50/p99 device latency, deadline hit rate, frame
   status counters — plus one query-ready row per frame.

Everything downstream of the sweep seed is deterministic, so the same
:class:`~repro.fuzzing.matrix.FuzzConfig` always yields a byte-identical
report JSON; the regression gate (:mod:`repro.fuzzing.gate`) leans on
that.  Cell aggregation runs through the declarative query layer
(:mod:`repro.fuzzing.query`) — the same predicates a user types at the
``repro query`` CLI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.pointcloud import make_scenario_scenes

from .matrix import (CONDITIONS, FuzzConfig, build_fuzz_model,
                     build_preset_config, cell_key, cell_seed)
from .query import F

__all__ = ["FuzzReport", "run_fuzz", "write_report", "load_report",
           "REPORT_VERSION"]

REPORT_VERSION = 1


@dataclass
class FuzzReport:
    """Machine-readable result of one sweep."""

    config: FuzzConfig
    #: cell key → metrics dict (JSON-safe: NaN encoded as None on disk)
    cells: dict = field(default_factory=dict)
    #: one flat dict per streamed frame, for the query layer
    rows: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "seed": self.config.seed,
            "frames_per_cell": self.config.frames_per_cell,
            "model": self.config.model,
            "execution": self.config.execution,
            "device": self.config.device,
            "scenarios": list(self.config.scenarios),
            "presets": list(self.config.presets),
            "conditions": list(self.config.conditions),
            "cells": {key: _json_safe(metrics)
                      for key, metrics in sorted(self.cells.items())},
            "rows": [_json_safe(row) for row in self.rows],
        }

    @staticmethod
    def from_json(payload: dict) -> "FuzzReport":
        config = FuzzConfig(
            scenarios=tuple(payload["scenarios"]),
            presets=tuple(payload["presets"]),
            conditions=tuple(payload["conditions"]),
            frames_per_cell=payload["frames_per_cell"],
            seed=payload["seed"],
            model=payload.get("model", "tiny"),
            execution=payload.get("execution", "reference"),
            device=payload.get("device", "jetson"))
        return FuzzReport(
            config=config,
            cells={key: _nan_safe(metrics)
                   for key, metrics in payload["cells"].items()},
            rows=[_nan_safe(row) for row in payload.get("rows", [])])


def _json_safe(mapping: dict) -> dict:
    """NaN → None so the payload is strict JSON."""
    out = {}
    for key, value in mapping.items():
        if isinstance(value, float) and math.isnan(value):
            out[key] = None
        else:
            out[key] = value
    return out


def _nan_safe(mapping: dict) -> dict:
    """Inverse of :func:`_json_safe` for the float-valued metric keys."""
    return {key: (math.nan if value is None else value)
            for key, value in mapping.items()}


# ---------------------------------------------------------------------------

def _build_engine(model, ir, condition, device, execution, seed_value,
                  fallback, ladder=None):
    from repro.hardware import default_devices
    from repro.runtime import (DegradationPolicy, FaultInjector, FaultSpec,
                               InferenceEngine)
    injector = None
    if condition.injects_faults:
        injector = FaultInjector(FaultSpec(
            drop_rate=condition.drop_rate,
            corrupt_rate=condition.corrupt_rate,
            nan_fraction=condition.nan_fraction,
            jitter=condition.jitter,
            jitter_scale_s=condition.jitter_ms / 1e3,
            seed=seed_value))
    cost_hook = None
    if condition.pressure_factor and condition.pressure_frames:
        def cost_hook(frame_id, latency, energy):
            if frame_id < condition.pressure_frames:
                return latency * condition.pressure_factor, energy
            return latency, energy
    policy = DegradationPolicy(on_corrupt=condition.on_corrupt,
                               max_consecutive_misses=condition.miss_limit)
    return InferenceEngine(model, default_devices()[device],
                           deadline_s=condition.deadline_ms / 1e3,
                           policy=policy, fault_injector=injector,
                           fallback_model=fallback, ladder=ladder,
                           cost_hook=cost_hook,
                           execution=condition.execution or execution,
                           batch_size=condition.batch_size, ir=ir)


def _frame_rows(key, scenario, preset, condition_name, report, scenes):
    gt_by_frame = {scene.frame_id: scene.boxes for scene in scenes}
    rows = []
    for record, result in zip(report.frames, report.predictions):
        gt = gt_by_frame.get(record.frame_id, [])
        scores = [b.score for b in result.boxes]
        rows.append({
            "scenario": scenario,
            "preset": preset,
            "condition": condition_name,
            "cell": key,
            "frame_id": record.frame_id,
            "status": record.status,
            "deadline_met": bool(record.deadline_met),
            "fallback": bool(record.fallback),
            "rung": record.rung if record.rung is not None else "primary",
            "latency_ms": record.device_latency_s * 1e3,
            "energy_mj": record.device_energy_j * 1e3,
            "num_detections": record.num_detections,
            "labels": sorted({b.label for b in result.boxes}),
            "max_score": float(max(scores)) if scores else math.nan,
            "gt_labels": sorted({b.label for b in gt}),
            "gt_count": len(gt),
        })
    return rows


def _cell_metrics(report, rows, scenes):
    """Distill one cell's stream into gate-comparable numbers.

    The row-level aggregates run through the query layer — the gate
    trusts exactly the predicates a user could type at ``repro query``.
    """
    from repro.detection import evaluate_by_difficulty
    evaluation = report.evaluate([scene.boxes for scene in scenes])
    by_difficulty = evaluate_by_difficulty(
        report.predictions, [scene.boxes for scene in scenes])

    ok = (F.status == "ok").filter(rows)
    latencies = [row["latency_ms"] for row in ok]
    missed = ((F.status == "ok") & (F.deadline_met == False)).count(rows)  # noqa: E712
    held = ((F.status == "degraded") & (F.num_detections > 0)).count(rows)
    silent = ((F.status == "ok") & (F.num_detections == 0)
              & (F.gt_count > 0)).count(rows)

    def percentile(q):
        if not latencies:
            return math.nan
        return float(np.percentile(latencies, q))

    return {
        "mAP": float(evaluation["mAP"]),
        "ap_car": float(evaluation.get("Car", math.nan)),
        "ap_pedestrian": float(evaluation.get("Pedestrian", math.nan)),
        "ap_cyclist": float(evaluation.get("Cyclist", math.nan)),
        "mAP_easy": float(by_difficulty["easy"]["mAP"]),
        "mAP_moderate": float(by_difficulty["moderate"]["mAP"]),
        "mAP_hard": float(by_difficulty["hard"]["mAP"]),
        "p50_ms": percentile(50.0),
        "p99_ms": percentile(99.0),
        "deadline_hit_rate": float(report.deadline_hit_rate),
        "ok_frames": report.ok_frames,
        "degraded_frames": report.degraded_frames,
        "dropped_frames": report.dropped_frames,
        "missed_deadline_frames": missed,
        "held_detection_frames": held,
        "silent_miss_frames": silent,
        "fallback_activations": report.fallback_activations,
        "ladder_demotions": report.demotions,
        "ladder_promotions": report.promotions,
        "total_energy_mj": float(report.total_energy_j * 1e3),
        "num_detections": int(sum(row["num_detections"] for row in rows)),
    }


def run_fuzz(config: FuzzConfig | None = None, progress=None) -> FuzzReport:
    """Sweep the configured matrix; returns the full report.

    ``progress`` is an optional ``(cell_key, metrics) -> None`` callback
    invoked as each cell finishes (the CLI uses it for live output).
    """
    config = config or FuzzConfig()
    base_model = build_fuzz_model(config.model)

    compressed: dict[str, tuple] = {}

    def model_for(preset_name: str):
        """(model, ir) for a preset — compressed once per sweep."""
        if preset_name not in compressed:
            preset = build_preset_config(preset_name)
            if preset is None:
                from repro.ir import extract_ir
                model = base_model
                ir = extract_ir(model, *model.example_inputs())
            else:
                from repro.core import UPAQCompressor
                outcome = UPAQCompressor(preset).compress(
                    base_model, *base_model.example_inputs())
                model, ir = outcome.model, outcome.ir
            model.eval()
            compressed[preset_name] = (model, ir)
        return compressed[preset_name]

    scene_cache: dict[str, list] = {}

    def scenes_for(scenario: str):
        if scenario not in scene_cache:
            scene_cache[scenario] = make_scenario_scenes(
                scenario, config.frames_per_cell, seed=config.seed)
        return scene_cache[scenario]

    report = FuzzReport(config=config)
    for scenario, preset, condition_name in config.cells():
        condition = CONDITIONS[condition_name]
        key = cell_key(scenario, preset, condition_name)
        model, ir = model_for(preset)
        fallback = None
        if condition.fallback_preset \
                and condition.fallback_preset != preset:
            fallback = model_for(condition.fallback_preset)[0]
        ladder = None
        if condition.ladder_presets:
            from repro.runtime import DegradationLadder, LadderRung
            rungs = [LadderRung(name=preset, model=model, ir=ir)]
            for rung_preset in condition.ladder_presets:
                if rung_preset == preset:
                    continue    # the cell's preset is already rung 0
                rung_model, rung_ir = model_for(rung_preset)
                rungs.append(LadderRung(name=rung_preset,
                                        model=rung_model, ir=rung_ir))
            ladder = DegradationLadder(
                rungs, promote_after=condition.promote_after,
                probation=condition.probation)
        engine = _build_engine(model, ir, condition, config.device,
                               config.execution,
                               cell_seed(config.seed, key), fallback,
                               ladder=ladder)
        scenes = scenes_for(scenario)
        stream = engine.run(scenes)
        rows = _frame_rows(key, scenario, preset, condition_name,
                           stream, scenes)
        metrics = _cell_metrics(stream, rows, scenes)
        report.cells[key] = metrics
        report.rows.extend(rows)
        if progress is not None:
            progress(key, metrics)
    return report


def write_report(report: FuzzReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")


def load_report(path: str) -> FuzzReport:
    with open(path) as handle:
        return FuzzReport.from_json(json.load(handle))
