"""The three axes of the fuzz sweep: scenarios × presets × conditions.

Every axis is a named registry so CLI flags, the committed baseline and
tests all speak the same vocabulary:

* **Scenarios** come from :data:`repro.pointcloud.SCENARIOS` — the
  adverse scene families.
* **Presets** are compression configurations: the paper's HCK/LCK mixed
  searches plus fixed-bitwidth ladders (4/8/16 bit) and an
  uncompressed ``float`` control.
* **Conditions** are runtime environments for the
  :class:`~repro.runtime.InferenceEngine`: clean streaming, seeded
  fault injection, deadline pressure with a watchdog fallback,
  micro-batching, and a multi-rung degradation ladder under transient
  pressure.

Cell identity is ``scenario|preset|condition``; every stochastic knob
inside a cell (fault schedules) is seeded from a digest of the sweep
seed and the cell key, so cells are independent of sweep order and
composition — running a subset of the matrix reproduces exactly the
cells a full sweep would have produced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.pointcloud import scenario_names

__all__ = ["RuntimeCondition", "FuzzConfig", "PRESETS", "CONDITIONS",
           "DEFAULT_SCENARIOS", "DEFAULT_PRESETS", "DEFAULT_CONDITIONS",
           "preset_names", "condition_names", "cell_key", "cell_seed",
           "build_fuzz_model", "build_preset_config"]


# ---------------------------------------------------------------------------
# Compression presets
# ---------------------------------------------------------------------------

#: preset name → UPAQConfig factory kwargs; ``None`` marks the
#: uncompressed float control.
_PRESET_RECIPES: dict[str, tuple[str, dict] | None] = {
    "float": None,
    "hck": ("hck", {}),
    "lck": ("lck", {}),
    "hck-4bit": ("hck", {"quant_bits": (4,)}),
    "hck-8bit": ("hck", {"quant_bits": (8,)}),
    "lck-8bit": ("lck", {"quant_bits": (8,)}),
    "lck-16bit": ("lck", {"quant_bits": (16,)}),
}

PRESETS = tuple(_PRESET_RECIPES)


def preset_names() -> tuple:
    return PRESETS


def build_preset_config(name: str):
    """The UPAQConfig for a preset name; ``None`` for ``float``."""
    try:
        recipe = _PRESET_RECIPES[name]
    except KeyError:
        known = ", ".join(_PRESET_RECIPES)
        raise KeyError(f"unknown preset {name!r}; known: {known}") from None
    if recipe is None:
        return None
    from repro.core import hck_config, lck_config
    family, overrides = recipe
    factory = {"hck": hck_config, "lck": lck_config}[family]
    return factory(**overrides)


# ---------------------------------------------------------------------------
# Runtime conditions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RuntimeCondition:
    """One runtime environment a cell's stream is run under."""

    name: str
    description: str
    deadline_ms: float = 50.0
    batch_size: int = 1
    #: fault injection knobs (zero rates disable the injector entirely)
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    nan_fraction: float = 0.05
    jitter: str = "none"
    jitter_ms: float = 0.0
    on_corrupt: str = "last_good"
    miss_limit: int = 3
    #: preset compressed as the deadline watchdog's fallback model
    fallback_preset: str | None = None
    #: lower rungs of a degradation ladder (the cell's preset is the
    #: primary rung; it is skipped here if repeated)
    ladder_presets: tuple | None = None
    #: ladder promotion knobs (see DegradationLadder)
    promote_after: int = 0
    probation: int = 0
    #: transient deadline pressure: frames with ``frame_id <
    #: pressure_frames`` have their device latency multiplied by
    #: ``pressure_factor`` through the engine's cost hook
    pressure_factor: float = 0.0
    pressure_frames: int = 0
    #: engine execution mode override; ``None`` inherits the sweep's
    #: ``FuzzConfig.execution``
    execution: str | None = None

    @property
    def injects_faults(self) -> bool:
        return (self.drop_rate > 0 or self.corrupt_rate > 0
                or self.jitter != "none")


CONDITIONS: dict[str, RuntimeCondition] = {
    "clean": RuntimeCondition(
        name="clean",
        description="fault-free stream under a comfortable 50 ms deadline"),
    "faulty": RuntimeCondition(
        name="faulty",
        description="seeded chaos: frame drops, NaN-poisoned clouds and "
                    "heavy-tailed latency jitter",
        drop_rate=0.15, corrupt_rate=0.15, nan_fraction=0.3,
        jitter="lognormal", jitter_ms=4.0),
    "pressure": RuntimeCondition(
        name="pressure",
        description="impossible deadline: every frame misses, arming the "
                    "watchdog swap to a 4-bit fallback after 2 misses",
        deadline_ms=1e-3, miss_limit=2, fallback_preset="hck-4bit"),
    "batched": RuntimeCondition(
        name="batched",
        description="clean stream through a batch-3 micro-batching window",
        batch_size=3),
    "ladder": RuntimeCondition(
        name="ladder",
        description="transient deadline pressure on the first frame "
                    "demotes through a preset degradation ladder, then "
                    "on-deadline frames promote back to the primary",
        miss_limit=1,
        ladder_presets=("lck-8bit", "hck-8bit", "hck-4bit"),
        promote_after=1,
        pressure_factor=1e6, pressure_frames=1),
    "sparse": RuntimeCondition(
        name="sparse",
        description="clean stream through occupancy-gated sparse lowered "
                    "execution (bit-identical to lowered by construction)",
        execution="lowered-sparse"),
}


def condition_names() -> tuple:
    return tuple(CONDITIONS)


# ---------------------------------------------------------------------------
# Sweep configuration
# ---------------------------------------------------------------------------

DEFAULT_SCENARIOS = scenario_names()
DEFAULT_PRESETS = ("hck", "lck", "hck-4bit", "lck-16bit")
DEFAULT_CONDITIONS = ("clean", "faulty", "pressure")


@dataclass(frozen=True)
class FuzzConfig:
    """One sweep: which cells to run and how to run each stream."""

    scenarios: tuple = DEFAULT_SCENARIOS
    presets: tuple = DEFAULT_PRESETS
    conditions: tuple = DEFAULT_CONDITIONS
    frames_per_cell: int = 3
    seed: int = 0
    #: ``tiny`` is the fast reduced PointPillars the runtime test-suite
    #: uses; ``pointpillars`` sweeps the full reduced-scale model.
    model: str = "tiny"
    execution: str = "reference"
    device: str = "jetson"

    def __post_init__(self):
        if self.frames_per_cell < 1:
            raise ValueError("frames_per_cell must be >= 1")
        unknown = [s for s in self.scenarios if s not in scenario_names()]
        if unknown:
            raise ValueError(
                f"unknown scenarios {unknown}; known: "
                f"{', '.join(scenario_names())}")
        unknown = [p for p in self.presets if p not in PRESETS]
        if unknown:
            raise ValueError(
                f"unknown presets {unknown}; known: {', '.join(PRESETS)}")
        unknown = [c for c in self.conditions if c not in CONDITIONS]
        if unknown:
            raise ValueError(
                f"unknown conditions {unknown}; known: "
                f"{', '.join(CONDITIONS)}")

    @property
    def num_cells(self) -> int:
        return (len(self.scenarios) * len(self.presets)
                * len(self.conditions))

    def cells(self):
        """All (scenario, preset, condition) triples, in axis order."""
        for scenario in self.scenarios:
            for preset in self.presets:
                for condition in self.conditions:
                    yield scenario, preset, condition


def cell_key(scenario: str, preset: str, condition: str) -> str:
    """The canonical ``scenario|preset|condition`` cell identifier."""
    return f"{scenario}|{preset}|{condition}"


def cell_seed(sweep_seed: int, key: str) -> int:
    """A stable per-cell seed independent of sweep order/composition."""
    digest = hashlib.blake2b(f"{sweep_seed}:{key}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


# ---------------------------------------------------------------------------
# Models under test
# ---------------------------------------------------------------------------

_FUZZ_MODELS = ("tiny", "pointpillars")


def build_fuzz_model(name: str = "tiny", seed: int = 1):
    """Construct the detector a sweep compresses and streams.

    ``tiny`` mirrors the reduced PointPillars the runtime tests pin
    their byte-exactness suites on — small enough that a full default
    matrix sweeps in about a minute; ``pointpillars`` is the registry's
    reduced-scale model.
    """
    if name == "tiny":
        from repro.models import PointPillars
        from repro.pointcloud import PillarConfig
        return PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8, seed=seed)
    if name == "pointpillars":
        from repro.models import build_model
        return build_model("pointpillars")
    raise KeyError(f"unknown fuzz model {name!r}; known: "
                   f"{', '.join(_FUZZ_MODELS)}")
