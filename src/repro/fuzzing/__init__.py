"""``repro.fuzzing`` — scenario-matrix fuzzing with regression gating.

The evaluation substrate for the streaming runtime: a chaos-style
harness (:mod:`repro.fuzzing.harness`) sweeps the adverse scenario
families of :data:`repro.pointcloud.SCENARIOS` against compression
presets (HCK/LCK and fixed 4/8/16-bit ladders) and runtime conditions
(fault injection, deadline pressure, micro-batching), collects per-cell
mAP and latency percentiles from the
:class:`~repro.runtime.InferenceEngine`, and gates the result against a
committed baseline (:mod:`repro.fuzzing.gate`,
``artifacts/fuzz_baseline.json``) with explicit regression thresholds.

On top sits a small EVA-style declarative query layer
(:mod:`repro.fuzzing.query`) over the per-frame rows the sweep records:

>>> from repro.fuzzing import F, parse_query
>>> q = (F.label == "Pedestrian") & (F.status == "degraded") \\
...     & (F.condition == "pressure")
>>> same = parse_query(
...     "label = Pedestrian and status = degraded and "
...     "condition = pressure")

Both the gate's per-cell aggregation and the ``repro fuzz`` /
``repro query`` CLI commands run through this layer.  See
``docs/TESTING.md`` ("Scenario matrix & fuzz gating").
"""

from .gate import (GateReport, GateThresholds, check_gate, load_baseline,
                   make_baseline, write_baseline)
from .harness import FuzzReport, load_report, run_fuzz, write_report
from .matrix import (CONDITIONS, DEFAULT_CONDITIONS, DEFAULT_PRESETS,
                     DEFAULT_SCENARIOS, PRESETS, FuzzConfig,
                     RuntimeCondition, build_fuzz_model,
                     build_preset_config, cell_key, cell_seed,
                     condition_names, preset_names)
from .query import F, Predicate, QueryError, parse_query

__all__ = [
    "FuzzConfig", "RuntimeCondition", "PRESETS", "CONDITIONS",
    "DEFAULT_SCENARIOS", "DEFAULT_PRESETS", "DEFAULT_CONDITIONS",
    "preset_names", "condition_names", "cell_key", "cell_seed",
    "build_fuzz_model", "build_preset_config",
    "FuzzReport", "run_fuzz", "write_report", "load_report",
    "GateThresholds", "GateReport", "check_gate", "make_baseline",
    "write_baseline", "load_baseline",
    "F", "Predicate", "QueryError", "parse_query",
]
