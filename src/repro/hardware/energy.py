"""NVpower-style energy metering over the simulated devices.

The paper measures board power with the NVpower tool while the model
runs.  :class:`EnergyMeter` reproduces the measurement procedure on top
of the analytic device model: it "samples" instantaneous power at a
fixed rate across the plan's layer timeline and integrates, which
converges to the device model's closed-form energy and exposes the same
sampling artifacts a real power monitor has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .deploy import CompiledPlan
from .device import DeviceModel

__all__ = ["PowerSample", "EnergyMeter"]


@dataclass
class PowerSample:
    time_s: float
    power_w: float


class EnergyMeter:
    """Sampled power measurement of one inference."""

    def __init__(self, device: DeviceModel, sample_rate_hz: float = 100e3):
        self.device = device
        self.sample_rate_hz = sample_rate_hz

    def measure(self, plan: CompiledPlan) -> tuple[float, list[PowerSample]]:
        """Return (energy J, power trace) for one inference of ``plan``.

        The trace is a piecewise-constant power profile: during each
        layer the board draws ``idle + layer_dynamic/layer_time`` watts.
        """
        samples: list[PowerSample] = []
        clock = 0.0
        total_energy = 0.0
        dt = 1.0 / self.sample_rate_hz
        for layer in plan.layers:
            duration = self.device.layer_latency(layer)
            energy = self.device.layer_energy(layer)
            power = energy / duration if duration > 0 else 0.0
            total_energy += energy
            t = clock
            while t < clock + duration:
                samples.append(PowerSample(time_s=t, power_w=power))
                t += dt
            clock += duration
        return total_energy, samples

    def average_power(self, plan: CompiledPlan) -> float:
        """Mean board power over the inference (W)."""
        energy = self.device.energy(plan)
        latency = self.device.latency(plan)
        return energy / latency if latency > 0 else 0.0

    @staticmethod
    def integrate_trace(samples: list[PowerSample],
                        end_time_s: float) -> float:
        """Left-Riemann integration of a power trace (what NVpower does)."""
        if not samples:
            return 0.0
        times = np.array([s.time_s for s in samples] + [end_time_s])
        powers = np.array([s.power_w for s in samples])
        return float(np.sum(np.diff(times) * powers))
