"""Deployment plans: what a TensorRT-style compiler sees.

Compression frameworks annotate each layer with a
:class:`CompressionMeta` (bits, pruning scheme).  :func:`lower_to_plan`
is the *cost lowering*: it reads an annotated
:class:`~repro.ir.ModelIR` — per-layer profile stats plus the measured
compression outcome — into a :class:`CompiledPlan`, the static
description the device models price.  It also computes the storage
footprint, which is what the paper's "compression ratio" column
measures.  :func:`compile_model` is the thin one-call wrapper that
extracts (or adapts) the IR and lowers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.module import Module

from .profile import LayerProfile, ModelProfile

__all__ = ["CompressionMeta", "PlanLayer", "CompiledPlan", "compile_model",
           "lower_to_plan", "annotate_layer", "get_annotation", "SCHEMES"]

#: Pruning schemes the device models understand.  ``skip_efficiency`` is
#: the fraction of pruned MACs the hardware actually avoids: structured
#: pruning removes whole filters (fully realizable), semi-structured
#: patterns map well onto vector lanes, unstructured sparsity is hard to
#: exploit (load imbalance, irregular access — see paper §III.A).
SCHEMES = {
    "dense": 0.0,
    "unstructured": 0.40,
    "structured": 1.00,
    "semi-structured": 0.85,
}

#: Per-value index overhead (bits) the sparse storage format pays.
_INDEX_BITS = {
    "dense": 0.0,
    "unstructured": 16.0,      # coordinate per surviving weight
    "structured": 0.0,         # shape metadata only
    "semi-structured": 0.0,    # pattern id amortized per kernel (below)
}
_PATTERN_ID_BITS = 8.0         # one pattern byte per kernel
_KERNEL_SCALE_BITS = 32.0      # fp32 quantization scale per kernel
_TENSOR_SCALE_BITS = 32.0      # per-tensor scale for non-kernel schemes


@dataclass
class CompressionMeta:
    """How one layer was compressed."""

    bits: int = 32
    scheme: str = "dense"

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; "
                             f"expected one of {sorted(SCHEMES)}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")


_ANNOTATION_ATTR = "_compression_meta"


def annotate_layer(module: Module, meta: CompressionMeta) -> None:
    """Attach compression metadata to a layer (frameworks call this)."""
    object.__setattr__(module, _ANNOTATION_ATTR, meta)


def get_annotation(module: Module) -> CompressionMeta:
    return getattr(module, _ANNOTATION_ATTR, CompressionMeta())


@dataclass
class PlanLayer:
    """One layer of a compiled inference plan."""

    profile: LayerProfile
    bits: int
    scheme: str
    sparsity: float              # fraction of weights that are exactly 0
    kernel_count: int            # number of k×k kernels (for pattern ids)

    @property
    def name(self) -> str:
        """The IR node / layer name this plan layer was lowered from."""
        return self.profile.name

    @property
    def effective_macs(self) -> float:
        """MACs after the hardware skips what the scheme lets it skip.

        Sparse-tensor execution units (Ampere/Orin sparse tensor cores,
        DLA) only skip zeros on the *integer* paths; fp32 semi-structured
        weights run through the dense pipeline, so pruning without
        quantization buys storage but no MACs (this is why R-TOSS shows
        ~1× speedup in the paper's Table 2 despite 4× compression).
        """
        if self.bits > 16:
            return float(self.profile.macs)
        skip = SCHEMES[self.scheme] * self.sparsity
        return self.profile.macs * (1.0 - skip)

    @property
    def weight_storage_bytes(self) -> float:
        """Bytes to store this layer's weights in its sparse format.

        Quantized kernels pay real metadata: semi-structured layers store
        one pattern id and one fp32 quantization scale per kernel; other
        quantized schemes store a per-tensor scale.  This metadata is why
        measured compression ratios sit well below the naive
        ``32/bits × 1/(1-sparsity)`` bound.
        """
        nnz = self.profile.weight_count * (1.0 - self.sparsity)
        value_bits = nnz * self.bits
        index_bits = nnz * _INDEX_BITS[self.scheme]
        meta_bits = 0.0
        if self.scheme == "semi-structured":
            meta_bits += _PATTERN_ID_BITS * self.kernel_count
        if self.bits < 32:
            if self.scheme == "semi-structured":
                meta_bits += _KERNEL_SCALE_BITS * self.kernel_count
            else:
                meta_bits += _TENSOR_SCALE_BITS
        return (value_bits + index_bits + meta_bits) / 8.0

    @property
    def activation_bytes(self) -> float:
        # Activations run at the layer's precision (min fp16 granularity).
        scale = max(self.bits, 8) / 32.0
        return (self.profile.input_bytes_fp32
                + self.profile.output_bytes_fp32) * scale


@dataclass
class CompiledPlan:
    """A full model lowered to costed layers.

    ``elementwise_bytes`` is the fp32 read+write traffic of the
    parameter-free ops between kernels (batch norm, activations,
    upsampling) — time compression never recovers, which bounds the
    achievable end-to-end speedup.
    """

    model_name: str
    layers: list[PlanLayer] = field(default_factory=list)
    dense_weight_bytes: float = 0.0
    elementwise_bytes: float = 0.0

    @property
    def compressed_weight_bytes(self) -> float:
        return sum(layer.weight_storage_bytes for layer in self.layers)

    @property
    def compression_ratio(self) -> float:
        """The paper's headline storage compression ratio."""
        compressed = self.compressed_weight_bytes
        return self.dense_weight_bytes / compressed if compressed > 0 \
            else float("inf")

    @property
    def total_effective_macs(self) -> float:
        return sum(layer.effective_macs for layer in self.layers)

    @property
    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def cost_breakdown(self, device) -> list[tuple[str, float, float]]:
        """Per-layer ``(name, latency_s, energy_j)`` priced by ``device``.

        The attribution substrate for the runtime's deadline-miss
        tracing: the same per-layer costs
        :meth:`~repro.hardware.device.DeviceModel.latency` /
        :meth:`~repro.hardware.device.DeviceModel.energy` sum over,
        exposed layer by layer (non-kernel overhead excluded — it
        belongs to no single layer).
        """
        return [(layer.name, device.layer_latency(layer),
                 device.layer_energy(layer)) for layer in self.layers]


def lower_to_plan(ir) -> CompiledPlan:
    """Cost lowering: annotated :class:`~repro.ir.ModelIR` → costed plan.

    Each IR node carries its profile (MACs, byte traffic) and its
    measured compression outcome (bits, scheme, actual sparsity, kernel
    count); lowering is a pure read of those annotations — no model
    walk, no re-trace.  Nodes the profiling pass never saw (layers that
    did not execute) are skipped, as they contribute no runtime cost.
    """
    plan = CompiledPlan(model_name=ir.model_name)
    for node in ir:
        if node.profile is None:
            continue
        meta = node.compression
        bits = meta.bits if meta is not None else 32
        scheme = meta.scheme if meta is not None else "dense"
        sparsity = meta.sparsity if meta is not None else 0.0
        kernel_count = meta.kernel_count if meta is not None else 0
        plan.layers.append(PlanLayer(
            profile=node.profile, bits=bits, scheme=scheme,
            sparsity=sparsity, kernel_count=kernel_count))
        plan.dense_weight_bytes += node.profile.weight_count * 4.0
        # Activation nonlinearity after each kernel layer: one read and
        # one write of the layer's output.
        plan.elementwise_bytes += 2.0 * node.profile.output_bytes_fp32
    # Normalization layers: read + write of each BN output.  This is the
    # traffic conv+BN folding (repro.hardware.fuse) removes.
    plan.elementwise_bytes += 2.0 * ir.norm_output_bytes
    return plan


def compile_model(model: Module, *example_inputs,
                  profile: ModelProfile | None = None) -> CompiledPlan:
    """Lower a (possibly compressed) model into a costed plan.

    Convenience wrapper: extracts the model's IR (one traced forward
    pass) — or, when a measured ``profile`` is supplied, adapts it into
    a trace-free IR — and runs :func:`lower_to_plan` on it.  Pipelines
    that already hold a :class:`~repro.ir.ModelIR` should annotate and
    lower it directly instead of paying another extraction.
    """
    # Imported lazily: repro.ir consumes this module's annotations.
    from repro.ir import extract_ir, ir_from_profile
    if profile is None:
        ir = extract_ir(model, *example_inputs)
    else:
        ir = ir_from_profile(profile, model)
    return lower_to_plan(ir)
