"""``repro.hardware`` — simulated deployment targets.

Substitute for the paper's Jetson Orin Nano + RTX 4080 + TensorRT +
NVpower stack: per-layer compute/memory profiling, compression-aware
compilation into a costed plan, roofline latency and energy device
models for both boards, and a sampling energy meter.
"""

from .deploy import (CompiledPlan, CompressionMeta, PlanLayer, SCHEMES,
                     annotate_layer, compile_model, get_annotation,
                     lower_to_plan)
from .device import (DeviceModel, DeviceSpec, JETSON_ORIN_NANO, RTX_4080,
                     default_devices)
from .energy import EnergyMeter, PowerSample
from .fuse import count_foldable, fold_batchnorm, fold_conv_bn
from .profile import LayerProfile, ModelProfile, profile_model, profiling

__all__ = [
    "LayerProfile", "ModelProfile", "profile_model", "profiling",
    "CompressionMeta", "PlanLayer", "CompiledPlan", "compile_model",
    "lower_to_plan", "annotate_layer", "get_annotation", "SCHEMES",
    "DeviceSpec", "DeviceModel", "JETSON_ORIN_NANO", "RTX_4080",
    "default_devices", "EnergyMeter", "PowerSample",
    "fold_batchnorm", "fold_conv_bn", "count_foldable",
]
