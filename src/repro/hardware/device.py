"""Analytic device models: latency and energy of a compiled plan.

A roofline-style model: each layer takes
``max(compute_time, memory_time)`` where compute throughput scales with
the layer's integer bitwidth (narrow datapaths process more values per
cycle, as Tensor Cores / DLA do) and memory time covers the compressed
weights plus activations.  Energy integrates a fixed idle power over the
run plus per-MAC and per-byte dynamic energies, with per-MAC energy
shrinking quadratically-ish with operand width.

The constants below are set so the *relative* behaviour — how sparsity,
bitwidth, and model size trade into milliseconds and joules — mirrors
the Jetson Orin Nano and RTX 4080 the paper measures.  Absolute numbers
are calibrated per model against the paper's base-model measurements
(see :meth:`DeviceModel.calibrate`), which is the documented substitution
for real-hardware runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .deploy import CompiledPlan, PlanLayer

__all__ = ["DeviceSpec", "DeviceModel", "JETSON_ORIN_NANO", "RTX_4080",
           "default_devices"]

#: Fraction of peak throughput realized per pruning scheme: unstructured
#: sparsity leaves warps load-imbalanced and access patterns irregular
#: even on the dense path (paper §III.A), semi-structured patterns keep
#: vector lanes nearly full, structured pruning is plain dense compute.
SCHEME_COMPUTE_EFFICIENCY = {
    "dense": 1.0,
    "unstructured": 0.55,
    "semi-structured": 0.95,
    "structured": 1.0,
}


@dataclass
class DeviceSpec:
    """Static characteristics of an inference device."""

    name: str
    peak_macs_per_s: float          # fp32 dense MAC throughput
    memory_bandwidth: float         # bytes / s
    layer_overhead_s: float         # scheduling cost per layer
    idle_power_w: float             # board power at rest
    mac_energy_j: float             # energy per fp32 MAC
    byte_energy_j: float            # energy per byte of DRAM traffic
    #: throughput multiplier per operand bitwidth (integer paths)
    bitwidth_speedup: dict = field(default_factory=lambda: {
        32: 1.0, 16: 2.0, 8: 4.0, 6: 5.0, 4: 8.0, 2: 12.0,
    })

    def speedup_for_bits(self, bits: int) -> float:
        """Interpolate the datapath speedup for an arbitrary bitwidth."""
        known = sorted(self.bitwidth_speedup)
        if bits >= known[-1]:
            return self.bitwidth_speedup[known[-1]]
        if bits <= known[0]:
            return self.bitwidth_speedup[known[0]]
        for lo, hi in zip(known, known[1:]):
            if lo <= bits <= hi:
                frac = (bits - lo) / (hi - lo)
                s_lo = self.bitwidth_speedup[lo]
                s_hi = self.bitwidth_speedup[hi]
                return s_lo + frac * (s_hi - s_lo)
        return 1.0


#: Jetson Orin Nano: small embedded GPU, tight memory bandwidth, low power.
JETSON_ORIN_NANO = DeviceSpec(
    name="Jetson Orin Nano",
    peak_macs_per_s=0.64e12,
    memory_bandwidth=68e9,
    layer_overhead_s=2e-6,
    idle_power_w=7.0,
    mac_energy_j=4.0e-12,
    byte_energy_j=9.0e-11,
)

#: RTX 4080 workstation: ~40× the compute, ~10× the bandwidth, hungrier.
RTX_4080 = DeviceSpec(
    name="RTX 4080",
    peak_macs_per_s=24.5e12,
    memory_bandwidth=717e9,
    layer_overhead_s=1e-6,
    idle_power_w=45.0,
    mac_energy_j=1.4e-12,
    byte_energy_j=3.0e-11,
)


class DeviceModel:
    """Prices compiled plans on one device, optionally calibrated."""

    def __init__(self, spec: DeviceSpec, calibration: float = 1.0):
        self.spec = spec
        self.calibration = calibration

    # ------------------------------------------------------------------
    # Per-layer costs
    # ------------------------------------------------------------------
    def layer_latency(self, layer: PlanLayer) -> float:
        spec = self.spec
        throughput = spec.peak_macs_per_s * spec.speedup_for_bits(layer.bits) \
            * SCHEME_COMPUTE_EFFICIENCY[layer.scheme]
        compute_time = layer.effective_macs / throughput
        traffic = layer.weight_storage_bytes + layer.activation_bytes
        memory_time = traffic / spec.memory_bandwidth
        return (max(compute_time, memory_time)
                + spec.layer_overhead_s) * self.calibration

    def layer_energy(self, layer: PlanLayer) -> float:
        spec = self.spec
        # Dynamic energy per MAC falls with operand width (≈ linear in
        # bits relative to fp32).
        width_scale = max(layer.bits, 4) / 32.0
        mac_energy = layer.effective_macs * spec.mac_energy_j * width_scale
        traffic = layer.weight_storage_bytes + layer.activation_bytes
        byte_energy = traffic * spec.byte_energy_j
        idle = spec.idle_power_w * self.layer_latency(layer)
        return mac_energy + byte_energy + idle

    # ------------------------------------------------------------------
    # Whole-plan costs
    # ------------------------------------------------------------------
    def nonkernel_time(self, plan: CompiledPlan) -> float:
        """Time in BN/activation traffic + host-side pre/post-processing.

        This floor is untouched by weight compression and is what keeps
        end-to-end speedups well below the per-layer compute gains.
        """
        elementwise = plan.elementwise_bytes / self.spec.memory_bandwidth
        postprocess = self.spec.layer_overhead_s * 10.0   # NMS/decode/copy
        return (elementwise + postprocess) * self.calibration

    def latency(self, plan: CompiledPlan) -> float:
        """End-to-end inference latency in seconds."""
        kernels = sum(self.layer_latency(layer) for layer in plan.layers)
        return kernels + self.nonkernel_time(plan)

    def energy(self, plan: CompiledPlan) -> float:
        """Energy per inference in joules."""
        kernels = sum(self.layer_energy(layer) for layer in plan.layers)
        nonkernel = self.nonkernel_time(plan)
        return (kernels + nonkernel * self.spec.idle_power_w
                + plan.elementwise_bytes * self.spec.byte_energy_j)

    def calibrate(self, plan: CompiledPlan,
                  reference_latency_s: float) -> "DeviceModel":
        """Return a copy scaled so ``plan`` costs ``reference_latency_s``.

        Used to anchor the reduced-scale models to the paper's measured
        base-model latencies, so reported milliseconds are directly
        comparable with Table 2.
        """
        raw = DeviceModel(self.spec, 1.0).latency(plan)
        return DeviceModel(self.spec, reference_latency_s / raw)


def default_devices() -> dict[str, DeviceModel]:
    """The two devices the paper evaluates on."""
    return {"jetson": DeviceModel(JETSON_ORIN_NANO),
            "rtx4080": DeviceModel(RTX_4080)}
