"""Conv + BatchNorm folding — the first pass of any deployment compiler.

TensorRT (and every serious inference engine) folds batch-norm layers
into the preceding convolution before quantizing:

``y = γ·(conv(x) − μ)/σ + β  ≡  conv'(x)`` with
``W' = W·γ/σ`` (per output channel) and ``b' = β + (b − μ)·γ/σ``.

Folding matters to UPAQ twice over: the folded weights are what actually
get quantized on-device, and the folded model drops the BN elementwise
traffic the cost model charges (``CompiledPlan.elementwise_bytes``).
``fold_batchnorm`` rewrites :class:`repro.nn.ConvBNReLU` blocks in place
on a deep copy and returns it.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, ConvBNReLU, Identity
from repro.nn.module import Module, Parameter

__all__ = ["fold_conv_bn", "fold_batchnorm", "count_foldable"]


def fold_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> None:
    """Fold ``bn``'s affine transform into ``conv`` in place.

    Uses the BN running statistics (the values inference would apply);
    after folding, the BN must be bypassed by the caller.
    """
    gamma = bn.weight.data.astype(np.float64)
    beta = bn.bias.data.astype(np.float64)
    mean = np.asarray(bn.running_mean, dtype=np.float64)
    var = np.asarray(bn.running_var, dtype=np.float64)
    scale = gamma / np.sqrt(var + bn.eps)

    conv.weight.data = (conv.weight.data
                        * scale[:, None, None, None]).astype(np.float32)
    old_bias = conv.bias.data.astype(np.float64) if conv.bias is not None \
        else np.zeros_like(mean)
    new_bias = (beta + (old_bias - mean) * scale).astype(np.float32)
    if conv.bias is None:
        conv.bias = Parameter(new_bias)
    else:
        conv.bias.data = new_bias


def count_foldable(model: Module) -> int:
    """Number of ConvBNReLU blocks whose BN can fold away."""
    return sum(1 for _, module in model.named_modules()
               if isinstance(module, ConvBNReLU)
               and isinstance(module.bn, BatchNorm2d))


def fold_batchnorm(model: Module) -> Module:
    """Return a deep copy of ``model`` with every ConvBNReLU folded.

    The folded copy computes identical outputs in eval mode but carries
    no batch-norm work: each block's BN is replaced by an Identity and
    its statistics live inside the convolution weights.
    """
    folded = copy.deepcopy(model)
    for _, module in folded.named_modules():
        if isinstance(module, ConvBNReLU) \
                and isinstance(module.bn, BatchNorm2d):
            fold_conv_bn(module.conv, module.bn)
            module.bn = Identity()
    folded.eval()
    return folded
