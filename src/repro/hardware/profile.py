"""Per-layer compute/memory profiling of a model forward pass.

Runs the model once on example inputs while hooking every kernel-bearing
layer, recording input/output shapes, multiply-accumulate counts,
weight/activation byte traffic, and the input activation range — the
quantities the analytic device models turn into latency and energy and
the executor lowering turns into activation quantization scales.

:func:`profiling` exposes the hook machinery as a context manager so the
IR extractor (:func:`repro.ir.extract_ir`) can collect a profile during
the *same* traced forward pass that builds the layer graph; stats land
in the :class:`~repro.ir.ModelIR` node annotations.  :func:`profile_model`
remains the standalone one-call form.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph import KERNEL_LAYER_TYPES
from repro.nn.layers import Conv2d, ConvTranspose2d, _BatchNorm
from repro.nn.module import Module

__all__ = ["LayerProfile", "ModelProfile", "profile_model", "profiling"]


@dataclass
class LayerProfile:
    """Cost-relevant facts about one layer's execution."""

    name: str
    kind: str                     # "conv", "deconv", "linear"
    kernel_size: int
    in_channels: int
    out_channels: int
    output_elements: int          # spatial positions × batch
    macs: int                     # dense multiply-accumulates
    weight_count: int
    input_bytes_fp32: int
    output_bytes_fp32: int
    #: max |x| over the layer's input activation — the max-calibration
    #: statistic the executor lowering turns into an activation scale
    input_absmax: float = 0.0

    @property
    def weight_bytes_fp32(self) -> int:
        return self.weight_count * 4

    @property
    def cache_key(self) -> tuple:
        """Cost signature: two layers with equal keys price identically.

        Everything the analytic device models read off a profile —
        used to memoize per-candidate latency/energy lookups across the
        many same-shaped layers of a backbone.
        """
        return (self.kind, self.kernel_size, self.macs, self.weight_count,
                self.output_elements, self.input_bytes_fp32,
                self.output_bytes_fp32)


@dataclass
class ModelProfile:
    """All profiled layers of one model, in execution order."""

    model_name: str
    layers: list[LayerProfile] = field(default_factory=list)
    #: fp32 bytes output by normalization layers (BatchNorm1d/2d) — the
    #: elementwise traffic that conv+BN folding eliminates
    norm_output_bytes: int = 0

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.layers)

    def by_name(self) -> dict[str, LayerProfile]:
        return {layer.name: layer for layer in self.layers}


def _layer_kind(module: Module) -> str:
    if isinstance(module, Conv2d):
        return "conv"
    if isinstance(module, ConvTranspose2d):
        return "deconv"
    return "linear"


@contextmanager
def profiling(model: Module, name: str | None = None):
    """Hook every kernel layer of ``model``; yields the filling profile.

    Any forward passes run inside the ``with`` block append their
    per-layer stats — this is how IR extraction profiles the *same*
    forward it traces.  Hooks are removed on exit even on error.
    """
    profile = ModelProfile(model_name=name or getattr(model, "name",
                                                      type(model).__name__))
    hooked: list[tuple[Module, object]] = []

    def make_hook(layer_name: str, module: Module):
        original_forward = module.forward

        def hooked_forward(*args, **kwargs):
            out = original_forward(*args, **kwargs)
            x = args[0]
            x_data = getattr(x, "data", x)
            in_elems = int(np.prod(x.shape))
            out_elems = int(np.prod(out.shape))
            if isinstance(module, (Conv2d, ConvTranspose2d)):
                k = module.kernel_size
                if isinstance(module, Conv2d):
                    spatial = out_elems // module.out_channels
                    macs = spatial * module.out_channels \
                        * module.in_channels * k * k
                else:
                    spatial = in_elems // module.in_channels
                    macs = spatial * module.in_channels \
                        * module.out_channels * k * k
                kernel = k
            else:
                macs = (in_elems // module.in_features) \
                    * module.in_features * module.out_features
                kernel = 1
            weight_count = module.weight.size
            if getattr(module, "bias", None) is not None:
                weight_count += module.bias.size
            profile.layers.append(LayerProfile(
                name=layer_name, kind=_layer_kind(module),
                kernel_size=kernel,
                in_channels=getattr(module, "in_channels",
                                    getattr(module, "in_features", 0)),
                out_channels=getattr(module, "out_channels",
                                     getattr(module, "out_features", 0)),
                output_elements=out_elems, macs=int(macs),
                weight_count=int(weight_count),
                input_bytes_fp32=in_elems * 4,
                output_bytes_fp32=out_elems * 4,
                input_absmax=float(np.abs(x_data).max())
                if x_data.size else 0.0))
            return out

        return original_forward, hooked_forward

    def make_norm_hook(module: Module):
        original_forward = module.forward

        def hooked_forward(*args, **kwargs):
            out = original_forward(*args, **kwargs)
            profile.norm_output_bytes += int(np.prod(out.shape)) * 4
            return out

        return original_forward, hooked_forward

    for layer_name, module in model.named_modules():
        if isinstance(module, KERNEL_LAYER_TYPES):
            original, wrapper = make_hook(layer_name, module)
            object.__setattr__(module, "forward", wrapper)
            hooked.append((module, original))
        elif isinstance(module, _BatchNorm):
            original, wrapper = make_norm_hook(module)
            object.__setattr__(module, "forward", wrapper)
            hooked.append((module, original))
    try:
        yield profile
    finally:
        for module, original in hooked:
            object.__setattr__(module, "forward", original)


def profile_model(model: Module, *example_inputs,
                  name: str | None = None) -> ModelProfile:
    """Trace one forward pass and collect a :class:`ModelProfile`."""
    with profiling(model, name=name) as profile:
        was_training = model.training
        model.eval()
        model(*example_inputs)
        if was_training:
            model.train()
    return profile
