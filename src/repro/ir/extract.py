"""IR extraction — the single place the model graph is ever traced.

``extract_ir`` runs **one** forward pass with profiling hooks installed
while :func:`repro.nn.graph.compute_graph` records the autograd
structure, then lifts both into a :class:`~repro.ir.ModelIR`: nodes in
dataflow order, predecessor edges, per-layer cost stats, and the current
compression annotations.  Every other stage (grouping, plan lowering,
packing, the runtime) consumes the resulting IR; none of them re-trace.

``ir_from_profile`` builds a trace-free IR from an already-measured
:class:`~repro.hardware.profile.ModelProfile` — no forward pass, no
edges — for callers that only need per-layer costs (the legacy
``compile_model(..., profile=...)`` path).
"""

from __future__ import annotations

from repro.hardware.profile import ModelProfile, profiling
from repro.nn.graph import compute_graph, layer_map, topological_layers
from repro.nn.layers import Conv2d, ConvTranspose2d
from repro.nn.module import Module

from .model_ir import IRNode, ModelIR

__all__ = ["extract_ir", "ir_from_profile"]


def _node_from_module(name: str, module: Module) -> IRNode:
    """Static (shape-level) facts of one kernel layer."""
    if isinstance(module, Conv2d):
        kind = "conv"
    elif isinstance(module, ConvTranspose2d):
        kind = "deconv"
    else:
        kind = "linear"
    weight = module.weight.data
    weight_count = int(weight.size)
    if getattr(module, "bias", None) is not None:
        weight_count += int(module.bias.size)
    return IRNode(
        name=name, kind=kind,
        kernel_size=getattr(module, "kernel_size", 1),
        stride=getattr(module, "stride", 1),
        padding=getattr(module, "padding", 0),
        in_channels=getattr(module, "in_channels",
                            getattr(module, "in_features", 0)),
        out_channels=getattr(module, "out_channels",
                             getattr(module, "out_features", 0)),
        weight_shape=tuple(weight.shape),
        macs=0, weight_count=weight_count)


def extract_ir(model: Module, *example_inputs,
               name: str | None = None) -> ModelIR:
    """Trace one forward pass and lift it into a :class:`ModelIR`.

    The same pass feeds both the autograd graph walk (edges, topological
    order) and the profiling hooks (MACs, byte traffic, activation
    ranges), so extraction costs exactly one model evaluation.  Current
    compression annotations are captured as well; re-run
    :meth:`ModelIR.annotate_from` after compressing to refresh them.
    """
    with profiling(model, name=name) as profile:
        graph = compute_graph(model, *example_inputs)

    layers = layer_map(model)
    stats = profile.by_name()
    ir = ModelIR(model_name=profile.model_name,
                 norm_output_bytes=profile.norm_output_bytes)
    for layer_name in topological_layers(graph):
        node = _node_from_module(layer_name, layers[layer_name])
        node.predecessors = tuple(graph.predecessors(layer_name))
        measured = stats.get(layer_name)
        if measured is not None:
            node.macs = measured.macs
            node.profile = measured
        ir.nodes.append(node)
    return ir.annotate_from(model)


def ir_from_profile(profile: ModelProfile, model: Module) -> ModelIR:
    """Lift an existing profile into an edge-less IR without tracing.

    Nodes appear in the profile's execution order; layers the profile
    never saw (and profile entries with no matching module) are dropped,
    matching how plan compilation has always treated them.
    """
    layers = layer_map(model)
    ir = ModelIR(model_name=profile.model_name,
                 norm_output_bytes=profile.norm_output_bytes)
    seen = set()
    for measured in profile.layers:
        module = layers.get(measured.name)
        if module is None or measured.name in seen:
            continue
        seen.add(measured.name)
        node = _node_from_module(measured.name, module)
        node.macs = measured.macs
        node.profile = measured
        ir.nodes.append(node)
    return ir.annotate_from(model)
