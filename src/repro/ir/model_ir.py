"""The layer-level intermediate representation every stage consumes.

UPAQ's algorithms all operate on one view of the model: the
topologically ordered list of kernel-bearing layers plus the activation
edges between them.  :class:`ModelIR` is that view, extracted **once**
per model (see :func:`repro.ir.extract_ir`) and then annotated in place:

* grouping (Algorithm 1) walks :attr:`IRNode.predecessors`;
* profiling writes each layer's :class:`~repro.hardware.profile.LayerProfile`
  into the :attr:`IRNode.profile` slot;
* compression writes bits/scheme/measured-sparsity into the
  :attr:`IRNode.compression` slot (:meth:`ModelIR.annotate_from`);
* the two lowerings — :func:`repro.hardware.deploy.lower_to_plan` (cost)
  and :func:`repro.ir.lowering.lower_executors` (executable) — read the
  annotated IR and never re-trace the model.

The IR serializes to plain JSON (:meth:`ModelIR.to_json`), which is what
``repro ir dump`` prints and what packed blobs (format v4) embed so a
restored checkpoint can be re-lowered without the original float model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.hardware.profile import LayerProfile

__all__ = ["IRNode", "CompressionInfo", "ModelIR"]

#: Layer kinds the IR understands (mirrors ``nn.graph.KERNEL_LAYER_TYPES``).
NODE_KINDS = ("conv", "deconv", "linear")

#: Pruning schemes a node's compression annotation may carry.
SCHEME_NAMES = ("dense", "unstructured", "structured", "semi-structured")


@dataclass
class CompressionInfo:
    """How one IR node was compressed — the mutable compression slot.

    Unlike the module-level :class:`~repro.hardware.deploy.CompressionMeta`
    a framework attaches while searching, this records the *measured*
    outcome: the actual weight sparsity and kernel count the plan
    lowering prices.
    """

    bits: int = 32
    scheme: str = "dense"
    sparsity: float = 0.0        # fraction of weights exactly zero
    kernel_count: int = 0        # number of k×k kernels (pattern ids)

    def __post_init__(self):
        if self.scheme not in SCHEME_NAMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; "
                             f"expected one of {sorted(SCHEME_NAMES)}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")


@dataclass
class IRNode:
    """One kernel-bearing layer of the model graph.

    The static fields describe what the layer *is*; the two annotation
    slots (``profile``, ``compression``) describe what profiling
    measured and what compression decided, and are filled in by the
    respective stages.
    """

    name: str
    kind: str                    # "conv" | "deconv" | "linear"
    kernel_size: int
    stride: int
    padding: int
    in_channels: int
    out_channels: int
    weight_shape: tuple
    macs: int
    weight_count: int
    #: upstream kernel layers feeding this node, in trace order
    predecessors: tuple = ()
    #: annotation slot — per-layer cost stats from the profiling pass
    profile: LayerProfile | None = None
    #: annotation slot — the compression outcome the lowerings price
    compression: CompressionInfo | None = None

    @property
    def signature(self) -> tuple:
        """Kernel properties that must match for a mask to transfer."""
        return (self.kind, self.kernel_size)

    def to_json(self) -> dict:
        record = {
            "name": self.name, "kind": self.kind,
            "kernel_size": self.kernel_size, "stride": self.stride,
            "padding": self.padding, "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "weight_shape": list(self.weight_shape), "macs": self.macs,
            "weight_count": self.weight_count,
            "predecessors": list(self.predecessors),
        }
        if self.profile is not None:
            record["profile"] = {
                "output_elements": self.profile.output_elements,
                "input_bytes_fp32": self.profile.input_bytes_fp32,
                "output_bytes_fp32": self.profile.output_bytes_fp32,
                "input_absmax": self.profile.input_absmax,
            }
        if self.compression is not None:
            record["compression"] = {
                "bits": self.compression.bits,
                "scheme": self.compression.scheme,
                "sparsity": self.compression.sparsity,
                "kernel_count": self.compression.kernel_count,
            }
        return record

    @staticmethod
    def from_json(record: dict) -> "IRNode":
        node = IRNode(
            name=record["name"], kind=record["kind"],
            kernel_size=int(record["kernel_size"]),
            stride=int(record["stride"]), padding=int(record["padding"]),
            in_channels=int(record["in_channels"]),
            out_channels=int(record["out_channels"]),
            weight_shape=tuple(record["weight_shape"]),
            macs=int(record["macs"]),
            weight_count=int(record["weight_count"]),
            predecessors=tuple(record["predecessors"]))
        stats = record.get("profile")
        if stats is not None:
            node.profile = LayerProfile(
                name=node.name, kind=node.kind,
                kernel_size=node.kernel_size,
                in_channels=node.in_channels,
                out_channels=node.out_channels,
                output_elements=int(stats["output_elements"]),
                macs=node.macs, weight_count=node.weight_count,
                input_bytes_fp32=int(stats["input_bytes_fp32"]),
                output_bytes_fp32=int(stats["output_bytes_fp32"]),
                input_absmax=float(stats["input_absmax"]))
        meta = record.get("compression")
        if meta is not None:
            node.compression = CompressionInfo(
                bits=int(meta["bits"]), scheme=meta["scheme"],
                sparsity=float(meta["sparsity"]),
                kernel_count=int(meta["kernel_count"]))
        return node


@dataclass
class ModelIR:
    """Topologically ordered layer-level IR of one model."""

    model_name: str
    nodes: list = field(default_factory=list)     # IRNode, dataflow order
    #: fp32 bytes output by normalization layers (see ModelProfile)
    norm_output_bytes: int = 0

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> IRNode:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def by_name(self) -> dict:
        return {node.name: node for node in self.nodes}

    @property
    def layer_names(self) -> list:
        return [node.name for node in self.nodes]

    @property
    def edges(self) -> list:
        """(upstream, downstream) activation edges, per-node trace order."""
        return [(pred, node.name) for node in self.nodes
                for pred in node.predecessors]

    def graph(self) -> nx.DiGraph:
        """The IR as a networkx DiGraph (for visualization/analysis)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.layer_names)
        graph.add_edges_from(self.edges)
        return graph

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------
    def annotate_from(self, model) -> "ModelIR":
        """Refresh every node's compression slot from ``model``'s layers.

        Reads the framework-attached
        :class:`~repro.hardware.deploy.CompressionMeta` plus the layer's
        *actual* weight sparsity.  Called after a compression pass so
        lowering prices what was really applied — shapes and MACs are
        untouched, so no re-trace or re-profile is needed.
        """
        from repro.hardware.deploy import get_annotation
        from repro.nn.graph import layer_map

        layers = layer_map(model)
        for node in self.nodes:
            module = layers.get(node.name)
            if module is None:
                continue
            meta = get_annotation(module)
            weights = module.weight.data
            if weights.ndim == 4:
                kernel_count = weights.shape[0] * weights.shape[1]
            else:
                kernel_count = weights.shape[0]
            node.compression = CompressionInfo(
                bits=meta.bits, scheme=meta.scheme,
                sparsity=float((weights == 0).mean()),
                kernel_count=int(kernel_count))
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "model_name": self.model_name,
            "norm_output_bytes": self.norm_output_bytes,
            "nodes": [node.to_json() for node in self.nodes],
        }

    @staticmethod
    def from_json(record: dict) -> "ModelIR":
        return ModelIR(
            model_name=record["model_name"],
            norm_output_bytes=int(record["norm_output_bytes"]),
            nodes=[IRNode.from_json(entry) for entry in record["nodes"]])
