"""``repro.ir`` — the single layer-level IR every stage consumes.

One traced forward pass (:func:`extract_ir`) produces a
:class:`ModelIR`: topologically ordered :class:`IRNode`s with
predecessor edges and mutable ``profile``/``compression`` annotation
slots.  Grouping (Algorithm 1), plan compilation, packing, and the
runtime all read this IR instead of re-walking the model, and two
lowerings consume it: the cost lowering
(:func:`repro.hardware.deploy.lower_to_plan`) and the executable
integer lowering (:func:`repro.ir.lowering.lower_executors`).
"""

from .extract import extract_ir, ir_from_profile
from .lowering import executor_for, lower_executors, lowerable_nodes
from .model_ir import CompressionInfo, IRNode, ModelIR

__all__ = [
    "IRNode", "CompressionInfo", "ModelIR",
    "extract_ir", "ir_from_profile",
    "lower_executors", "lowerable_nodes", "executor_for",
]
