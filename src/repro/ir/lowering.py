"""Executable lowering: compressed IR nodes → integer kernel executors.

The cost lowering (:func:`repro.hardware.deploy.lower_to_plan`) prices
an annotated IR; this module is the lowering that *runs* it.  Every IR
node quantized to ≤ 16 bits is compiled into the matching integer
executor from :mod:`repro.nn.quantized` — per-channel weight codes,
max-calibrated activation scale from the node's profiled
``input_absmax``, and pattern-aware column skipping for the pruned
positions.  Nodes left at full precision (bits > 16, or never profiled)
stay on the normal float path.

Executors come in two execution modes with a bit-for-bit parity
guarantee (see :mod:`repro.nn.quantized`):

* ``"lowered"`` — int64 multiply-accumulate, the deployment semantics;
* ``"reference"`` — float64 accumulate-then-dequantize, the fake-quant
  reference semantics.

:class:`repro.runtime.executors.LoweredProgram` binds the executors to
a live model for the :class:`~repro.runtime.engine.InferenceEngine`.
"""

from __future__ import annotations

from repro.nn.graph import layer_map
from repro.nn.layers import Conv2d, ConvTranspose2d, Linear
from repro.nn.module import Module
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear)

from .model_ir import IRNode, ModelIR

__all__ = ["lower_executors", "lowerable_nodes", "executor_for"]

#: Bitwidths the integer executors accept (int64 accumulators stay
#: exact well past 16-bit codes; 32-bit means "not quantized" here).
MIN_EXECUTOR_BITS = 4
MAX_EXECUTOR_BITS = 16

_EXECUTOR_TYPES = {
    "conv": (Conv2d, QuantizedConv2d),
    "deconv": (ConvTranspose2d, QuantizedConvTranspose2d),
    "linear": (Linear, QuantizedLinear),
}


def _activation_bits(weight_bits: int) -> int:
    """Activations never drop below INT8 even for 4-bit weights."""
    return max(8, weight_bits)


def _input_scale(node: IRNode, bits: int) -> float:
    """Max-calibrated activation scale from the profiled input range."""
    alpha = node.profile.input_absmax if node.profile is not None else 0.0
    max_code = 2 ** (bits - 1) - 1
    return alpha / max_code if alpha > 0 else 1.0


def lowerable_nodes(ir: ModelIR) -> list[IRNode]:
    """IR nodes that compile to integer executors: quantized + profiled."""
    return [node for node in ir
            if node.profile is not None
            and node.compression is not None
            and MIN_EXECUTOR_BITS <= node.compression.bits
            <= MAX_EXECUTOR_BITS]


def executor_for(node: IRNode, module: Module) -> Module:
    """Compile one compressed IR node into its integer executor.

    The executor is tagged with the IR node's name (``layer_name``) so
    telemetry attached outside a
    :class:`~repro.runtime.executors.LoweredProgram` can still be
    attributed to the right layer.
    """
    expected, executor_type = _EXECUTOR_TYPES[node.kind]
    if not isinstance(module, expected):
        raise TypeError(
            f"IR node {node.name!r} is a {node.kind} but the model "
            f"provides {type(module).__name__}")
    bits = node.compression.bits
    act_bits = _activation_bits(bits)
    executor = executor_type.from_float(
        module, _input_scale(node, act_bits),
        weight_bits=bits, activation_bits=act_bits)
    object.__setattr__(executor, "layer_name", node.name)
    return executor


def lower_executors(ir: ModelIR, model: Module) -> dict[str, Module]:
    """Compile every quantized node of ``ir`` against ``model``'s layers.

    Returns ``layer name → executor``; layers absent from the mapping
    keep their float forward.  The model is not modified — attaching the
    executors to a live forward pass is the runtime's job
    (:class:`repro.runtime.executors.LoweredProgram`).
    """
    layers = layer_map(model)
    executors: dict[str, Module] = {}
    for node in lowerable_nodes(ir):
        module = layers.get(node.name)
        if module is None:
            continue
        executors[node.name] = executor_for(node, module)
    return executors
