"""Unit tests for the table harness functions (no training involved)."""

import pytest

from repro.harness import (Table2Row, format_table1, format_table2,
                           run_table1)
from repro.harness.table2 import default_frameworks


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        # Restrict to the two fast models to keep the unit test light.
        return run_table1(model_keys=("pointpillars", "second"))

    def test_rows_have_paper_references(self, rows):
        for row in rows:
            assert row.paper_params_m > 0
            assert row.paper_exec_ms > 0

    def test_latency_positive(self, rows):
        assert all(row.exec_ms > 0 for row in rows)

    def test_formatting_includes_ratios(self, rows):
        text = format_table1(rows)
        assert "1.00x" in text
        assert "PointPillars" in text
        assert "Size vs PP" in text


class TestTable2Formatting:
    def test_format_includes_all_columns(self):
        rows = [Table2Row("Base Model", 1.0, 50.0, 5.72, 35.98, 0.875,
                          0.863),
                Table2Row("UPAQ (HCK)", 5.6, 48.0, 1.70, 18.23, 0.327,
                          0.417)]
        text = format_table2("PointPillars", rows)
        assert "(5.62x)" in text       # paper reference rendered
        assert "18.23" in text
        assert "Jetson ms" in text

    def test_default_frameworks_order_and_types(self):
        frameworks = default_frameworks()
        assert list(frameworks) == ["Ps&Qs", "CLIP-Q", "R-TOSS",
                                    "LiDAR-PTQ", "UPAQ (LCK)",
                                    "UPAQ (HCK)"]
        for framework in frameworks.values():
            assert hasattr(framework, "compress")
            assert hasattr(framework, "finetune")
