"""Tests for the one-shot experiment runner (tiny budgets)."""

import os

import pytest

from repro.harness.runner import RunnerConfig, run_all


@pytest.mark.slow
def test_run_all_writes_report(tmp_path, monkeypatch):
    # Redirect the pretrained-model cache so the tiny run doesn't clash
    # with full-scale artifacts.
    import importlib
    pretrain_module = importlib.import_module("repro.harness.pretrain")
    monkeypatch.setattr(pretrain_module, "_ARTIFACT_DIR",
                        str(tmp_path / "artifacts"))
    config = RunnerConfig(
        output_dir=str(tmp_path / "results"),
        pointpillars=dict(pretrain_steps=4, finetune_scenes=1,
                          finetune_epochs=1, eval_frames=1),
        include_smoke=False)
    results = run_all(config)
    assert os.path.exists(results["report_path"])
    assert os.path.exists(tmp_path / "results" / "table1.csv")
    assert os.path.exists(tmp_path / "results" / "table2_pointpillars.csv")
    report = open(results["report_path"]).read()
    assert "Table 1" in report
    assert "UPAQ (HCK)" in report
    rows = results["table2_pointpillars"]
    assert len(rows) == 7
    assert {r.framework for r in rows} >= {"Base Model", "UPAQ (HCK)"}
