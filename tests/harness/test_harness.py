"""Tests for the experiment harness: reporting, figures, pretraining."""

import numpy as np
import pytest

from repro.harness import (FRAMEWORK_ORDER, TABLE1, TABLE2, Table2Row,
                           energy_reductions, format_bar_chart, format_fig1,
                           format_fig4, format_table, render_bev, speedups,
                           write_csv)
from repro.harness.figures import alignment_report
from repro.pointcloud import Box3D


def _rows():
    return [
        Table2Row("Base Model", 1.0, 50.0, 5.72, 35.98, 0.875, 0.863),
        Table2Row("UPAQ (HCK)", 5.6, 48.0, 1.70, 18.23, 0.327, 0.417),
    ]


class TestPaperReference:
    def test_table2_covers_all_frameworks(self):
        for model in ("PointPillars", "SMOKE"):
            assert set(TABLE2[model]) == set(FRAMEWORK_ORDER)

    def test_table2_tuples_complete(self):
        for model, rows in TABLE2.items():
            for name, values in rows.items():
                assert len(values) == 6, f"{model}/{name}"

    def test_table1_has_five_models(self):
        assert len(TABLE1) == 5

    def test_paper_hck_highest_compression(self):
        for model in ("PointPillars", "SMOKE"):
            ratios = {k: v[0] for k, v in TABLE2[model].items()}
            assert max(ratios, key=ratios.get) == "UPAQ (HCK)"


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "long_header"], [["x", 1.0], ["yy", 2.5]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1

    def test_format_table_with_title(self):
        text = format_table(["h"], [["v"]], title="My Table")
        assert text.startswith("My Table")

    def test_bar_chart_scales_to_peak(self):
        chart = format_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10       # peak fills the width
        assert 4 <= lines[0].count("#") <= 6   # half-peak ≈ half bar

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["a", "b"], [[1.0, "x"]])
        content = open(path).read()
        assert content.splitlines()[0] == "a,b"
        assert "1.00,x" in content


class TestFigureDerivations:
    def test_speedups_relative_to_base(self):
        factors = speedups(_rows())
        assert factors["Base Model"] == pytest.approx(1.0)
        assert factors["UPAQ (HCK)"] == pytest.approx(35.98 / 18.23,
                                                      rel=1e-6)

    def test_energy_reductions(self):
        factors = energy_reductions(_rows())
        assert factors["UPAQ (HCK)"] == pytest.approx(0.863 / 0.417,
                                                      rel=1e-6)

    def test_rtx_device_option(self):
        factors = speedups(_rows(), device="rtx4080")
        assert factors["UPAQ (HCK)"] == pytest.approx(5.72 / 1.70, rel=1e-6)

    def test_format_fig4_contains_paper_values(self):
        text = format_fig4("PointPillars", _rows())
        assert "paper 1.97x" in text


class TestBEVRendering:
    def test_marks_gt_and_pred(self):
        gt = [Box3D(25, 0, 1, 4, 2, 2, 0)]
        pred = [Box3D(40, 10, 1, 4, 2, 2, 0)]
        art = render_bev(gt, pred)
        assert "o" in art
        assert "x" in art

    def test_overlap_marked_star(self):
        box = [Box3D(25, 0, 1, 4, 2, 2, 0)]
        art = render_bev(box, box)
        assert "*" in art

    def test_out_of_canvas_ignored(self):
        art = render_bev([Box3D(500, 0, 1, 4, 2, 2, 0)], [])
        assert "o" not in art


class TestAlignmentReport:
    def test_perfect_match(self):
        gt = [Box3D(10, 0, 1, 4, 2, 2, 0)]
        stats = alignment_report("x", gt, list(gt))
        assert stats.detected == 1
        assert stats.mean_center_error == pytest.approx(0.0)
        assert stats.mean_iou == pytest.approx(1.0)
        assert stats.extraneous == 0

    def test_extraneous_counted(self):
        gt = [Box3D(10, 0, 1, 4, 2, 2, 0)]
        pred = [Box3D(10, 0, 1, 4, 2, 2, 0),
                Box3D(40, 10, 1, 4, 2, 2, 0)]
        stats = alignment_report("x", gt, pred)
        assert stats.detected == 1
        assert stats.extraneous == 1

    def test_empty_predictions(self):
        gt = [Box3D(10, 0, 1, 4, 2, 2, 0)]
        stats = alignment_report("x", gt, [])
        assert stats.detected == 0
        assert np.isnan(stats.mean_center_error)

    def test_fig1_formatting(self):
        text = format_fig1({"total_gt": 10, "lidar_found": 8,
                            "camera_found": 5})
        assert "80%" in text
        assert "50%" in text


class TestPretrainPlumbing:
    def test_tiny_pretrain_runs_and_tracks_best(self):
        from repro.harness import TrainConfig, pretrain
        from repro.models import PointPillars
        from repro.pointcloud import LidarConfig, SceneConfig
        from repro.pointcloud.voxelize import PillarConfig

        model = PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8)
        config = TrainConfig(
            steps=4, eval_every=2, eval_frames=1,
            scene_config=SceneConfig(
                x_range=(5, 24), y_range=(-10, 10),
                lidar=LidarConfig(channels=8, azimuth_steps=60)))
        result = pretrain(model, config)
        assert len(result.history) >= 2
        assert result.best_map >= 0.0

    def test_get_pretrained_caches(self, tmp_path, monkeypatch):
        import importlib
        pt = importlib.import_module("repro.harness.pretrain")
        from repro.harness import TrainConfig, get_pretrained
        from repro.pointcloud import LidarConfig, SceneConfig

        monkeypatch.setattr(pt, "_ARTIFACT_DIR", str(tmp_path))
        config = TrainConfig(
            steps=2, eval_every=1, eval_frames=1,
            scene_config=SceneConfig(
                x_range=(5, 24), y_range=(-10, 10),
                lidar=LidarConfig(channels=8, azimuth_steps=60)))
        kwargs = dict(
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8)
        _, first = get_pretrained("pointpillars", config, **kwargs)
        assert first is not None          # trained fresh
        model, second = get_pretrained("pointpillars", config, **kwargs)
        assert second is None             # cache hit
        assert not model.training         # loaded in eval mode
