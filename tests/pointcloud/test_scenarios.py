"""Determinism and shape regression tests for the scenario matrix."""

import numpy as np
import pytest

from repro.pointcloud import (SCENARIOS, SceneGenerator, get_scenario,
                              make_dataset, make_scenario_scenes,
                              scenario_digest, scenario_names, scene_digest)

from .golden import GOLDEN_FRAMES, GOLDEN_SEED, compute_digests, load_golden


class TestRegistry:
    def test_at_least_five_families(self):
        # The fuzz matrix promises >= 5 adverse families.
        assert len(scenario_names()) >= 5

    def test_get_scenario_roundtrip(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="dense_traffic"):
            get_scenario("nope")

    def test_descriptions_present(self):
        for spec in SCENARIOS.values():
            assert spec.description


class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_same_seed_same_scene(self, name):
        first = make_scenario_scenes(name, 2, seed=7)
        second = make_scenario_scenes(name, 2, seed=7)
        for a, b in zip(first, second):
            assert scene_digest(a) == scene_digest(b)
            np.testing.assert_array_equal(a.points, b.points)

    @pytest.mark.parametrize("name", scenario_names())
    def test_different_seed_different_scene(self, name):
        assert (scenario_digest(name, num_frames=2, seed=0)
                != scenario_digest(name, num_frames=2, seed=1))

    def test_frames_are_independent_of_count(self):
        # Frame k is a pure function of (scenario, seed, k): generating
        # more frames never perturbs earlier ones.
        short = make_scenario_scenes("dense_traffic", 2, seed=3)
        long = make_scenario_scenes("dense_traffic", 4, seed=3)
        for a, b in zip(short, long):
            assert scene_digest(a) == scene_digest(b)

    def test_base_generator_deterministic(self):
        a = SceneGenerator(seed=5).generate(1)
        b = SceneGenerator(seed=5).generate(1)
        assert scene_digest(a) == scene_digest(b)

    def test_make_dataset_deterministic(self):
        a = make_dataset(4, seed=2)
        b = make_dataset(4, seed=2)
        for split in ("train", "val", "test"):
            for x, y in zip(a[split], b[split]):
                assert scene_digest(x) == scene_digest(y)


class TestGoldenDigests:
    def test_digests_match_golden(self):
        """Scene synthesis is pinned bit-for-bit.

        A failure here means the generators changed output — if the
        change is intentional, re-bless via
        ``python -m tests.pointcloud.golden.regen`` and commit the new
        ``scenario_digests.json`` alongside the generator change.
        """
        assert compute_digests() == load_golden()

    def test_golden_covers_every_family(self):
        golden = load_golden()
        assert set(golden) == set(scenario_names()) | {"base"}

    def test_golden_parameters_documented(self):
        # The regen script and this test must agree on the budget.
        assert GOLDEN_FRAMES == 2
        assert GOLDEN_SEED == 0


def _scenes(name, frames=4, seed=0):
    return make_scenario_scenes(name, frames, seed=seed)


class TestFamilyShapes:
    def test_dense_traffic_is_dense(self):
        counts = [len(s.boxes) for s in _scenes("dense_traffic")]
        # Placement tops up to >= 8 objects; some are culled for having
        # too few points, but the surviving crowd stays well above the
        # base generator's 2-6 range on average.
        assert sum(counts) / len(counts) >= 5.0

    def test_occlusion_chain_has_aligned_cars(self):
        for scene in _scenes("occlusion_chain"):
            cars = [b for b in scene.boxes if b.label == "Car"]
            if len(cars) < 2:
                continue  # near boxes can cull the chain down
            spread = max(c.y for c in cars) - min(c.y for c in cars)
            assert spread < 1.0  # chain shares one lane (small jitter)

    def test_night_rain_attenuates_intensity(self):
        clean = _scenes("dense_traffic", frames=2)
        rain = _scenes("night_rain", frames=2)
        clean_mean = np.mean([s.points[:, 3].mean() for s in clean])
        rain_mean = np.mean([s.points[:, 3].mean() for s in rain])
        assert rain_mean < clean_mean

    def test_sensor_dropout_removes_azimuth_sectors(self):
        for scene in _scenes("sensor_dropout"):
            azimuth = np.degrees(np.arctan2(scene.points[:, 1],
                                            scene.points[:, 0]))
            hist, _ = np.histogram(azimuth, bins=36, range=(-90, 90))
            occupied = hist > 0
            # At least one empty sector flanked by occupied ones: a
            # burst hole, not just the field-of-view edge.
            interior = occupied[1:-1]
            assert (~interior).any()

    def test_near_duplicate_marks_clones(self):
        flagged = [b
                   for scene in _scenes("near_duplicate", frames=6)
                   for b in scene.boxes
                   if b.meta.get("near_duplicate")]
        assert flagged  # the family actually produces duplicates

    def test_far_sparse_objects_are_far(self):
        for scene in _scenes("far_sparse"):
            for box in scene.boxes:
                assert box.x >= 25.0

    @pytest.mark.parametrize("name", scenario_names())
    def test_points_shape_and_finite(self, name):
        for scene in _scenes(name, frames=2):
            assert scene.points.ndim == 2 and scene.points.shape[1] == 4
            assert np.isfinite(scene.points).all()
            for box in scene.boxes:
                assert box.difficulty in (0, 1, 2)
