"""Geometry tests: corners, polygon clipping, rotated IoU."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (Box3D, bev_corners, bev_intersection_area,
                              boxes_to_array, array_to_boxes, clip_polygon,
                              iou_3d, iou_bev, iou_matrix_bev,
                              points_in_box, polygon_area)


def box(x=0, y=0, z=1, dx=4, dy=2, dz=2, yaw=0.0):
    return np.array([x, y, z, dx, dy, dz, yaw], dtype=np.float64)


class TestCorners:
    def test_axis_aligned_corners(self):
        b = Box3D(0, 0, 1, 4, 2, 2, 0)
        corners = b.corners()
        assert corners.shape == (8, 3)
        np.testing.assert_allclose(corners[:, 0].max(), 2.0, atol=1e-6)
        np.testing.assert_allclose(corners[:, 1].min(), -1.0, atol=1e-6)
        np.testing.assert_allclose(corners[:, 2].min(), 0.0, atol=1e-6)
        np.testing.assert_allclose(corners[:, 2].max(), 2.0, atol=1e-6)

    def test_rotation_90_swaps_extents(self):
        b = Box3D(0, 0, 1, 4, 2, 2, np.pi / 2)
        corners = b.corners()
        np.testing.assert_allclose(corners[:, 0].max(), 1.0, atol=1e-5)
        np.testing.assert_allclose(corners[:, 1].max(), 2.0, atol=1e-5)

    def test_bev_corners_match_3d(self):
        b = Box3D(3, -2, 1, 4, 2, 2, 0.7)
        bev = bev_corners(b.as_vector())
        full = b.corners()[:4, :2]
        # Same footprint (corner order may differ): match each BEV corner
        # to its nearest 3D footprint corner.
        for corner in bev:
            distances = np.linalg.norm(full - corner, axis=1)
            assert distances.min() < 1e-4

    def test_roundtrip_array(self):
        boxes = [Box3D(1, 2, 3, 4, 5, 6, 0.5, label="Cyclist", score=0.7)]
        arr = boxes_to_array(boxes)
        back = array_to_boxes(arr, labels=["Cyclist"], scores=[0.7])
        assert back[0].label == "Cyclist"
        np.testing.assert_allclose(back[0].as_vector(), boxes[0].as_vector())

    def test_empty_boxes_to_array(self):
        assert boxes_to_array([]).shape == (0, 7)


class TestPolygon:
    def test_area_unit_square(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(square) == pytest.approx(1.0)

    def test_area_sign_flips_with_winding(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(square[::-1]) == pytest.approx(-1.0)

    def test_clip_identical(self):
        square = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        inter = clip_polygon(square, square)
        assert abs(polygon_area(inter)) == pytest.approx(4.0)

    def test_clip_offset_squares(self):
        a = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        b = a + np.array([1.0, 1.0])
        inter = clip_polygon(a, b)
        assert abs(polygon_area(inter)) == pytest.approx(1.0)

    def test_clip_disjoint(self):
        a = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        b = a + np.array([5.0, 0.0])
        inter = clip_polygon(a, b)
        assert len(inter) == 0 or abs(polygon_area(inter)) < 1e-9


class TestIoU:
    def test_identical_boxes(self):
        assert iou_bev(box(), box()) == pytest.approx(1.0)
        assert iou_3d(box(), box()) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou_bev(box(), box(x=100)) == 0.0
        assert iou_3d(box(), box(x=100)) == 0.0

    def test_half_overlap_axis_aligned(self):
        # 4x2 boxes shifted by 2 along x: intersection 2x2=4, union 12.
        value = iou_bev(box(), box(x=2))
        assert value == pytest.approx(4 / 12, abs=1e-6)

    def test_rotation_invariance(self):
        # IoU of a pair is preserved under a global rotation.
        a, b = box(), box(x=1.5, y=0.5, yaw=0.3)
        base = iou_bev(a, b)
        for theta in (0.4, 1.1, 2.5):
            c, s = np.cos(theta), np.sin(theta)

            def rotated(bx):
                out = bx.copy()
                out[0] = c * bx[0] - s * bx[1]
                out[1] = s * bx[0] + c * bx[1]
                out[6] = bx[6] + theta
                return out

            assert iou_bev(rotated(a), rotated(b)) == pytest.approx(
                base, abs=1e-6)

    def test_90_degree_cross(self):
        # 4x2 box crossed with itself rotated 90°: intersection 2x2.
        value = iou_bev(box(), box(yaw=np.pi / 2))
        assert value == pytest.approx(4 / 12, abs=1e-5)

    def test_3d_separated_in_z_only(self):
        assert iou_3d(box(z=1), box(z=10)) == 0.0

    def test_3d_half_height_overlap(self):
        value = iou_3d(box(z=1.0), box(z=2.0))  # dz=2, overlap 1
        assert value == pytest.approx(8 / 24, abs=1e-6)

    def test_iou_matrix_shape_and_symmetry(self):
        boxes_a = np.stack([box(), box(x=2), box(x=50)])
        matrix = iou_matrix_bev(boxes_a, boxes_a)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-6)
        np.testing.assert_allclose(np.diag(matrix), np.ones(3), atol=1e-6)

    @given(st.floats(-3, 3), st.floats(-3, 3), st.floats(-np.pi, np.pi))
    @settings(max_examples=50, deadline=None)
    def test_iou_bounded(self, dx, dy, yaw):
        value = iou_bev(box(), box(x=dx, y=dy, yaw=yaw))
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(st.floats(0.5, 6), st.floats(0.5, 6), st.floats(-np.pi, np.pi))
    @settings(max_examples=50, deadline=None)
    def test_self_iou_is_one(self, dx, dy, yaw):
        b = box(dx=dx, dy=dy, yaw=yaw)
        assert iou_bev(b, b) == pytest.approx(1.0, abs=1e-6)

    @given(st.floats(-2, 2), st.floats(-np.pi, np.pi))
    @settings(max_examples=40, deadline=None)
    def test_intersection_bounded_by_smaller_area(self, shift, yaw):
        a = box(dx=4, dy=2)
        b = box(x=shift, dx=2, dy=1, yaw=yaw)
        inter = bev_intersection_area(a, b)
        assert inter <= 2 * 1 + 1e-6


class TestPointsInBox:
    def test_contains_center(self):
        b = Box3D(5, 0, 1, 2, 2, 2, 0.3)
        pts = np.array([[5, 0, 1, 0.5]])
        assert points_in_box(pts, b).all()

    def test_rotated_membership(self):
        b = Box3D(0, 0, 1, 4, 1, 2, np.pi / 2)  # long axis now along y
        pts = np.array([[0.0, 1.8, 1.0, 0.0], [1.8, 0.0, 1.0, 0.0]])
        mask = points_in_box(pts, b)
        assert mask[0] and not mask[1]

    def test_margin(self):
        b = Box3D(0, 0, 1, 2, 2, 2, 0)
        pts = np.array([[1.1, 0, 1, 0]])
        assert not points_in_box(pts, b).any()
        assert points_in_box(pts, b, margin=0.2).all()
