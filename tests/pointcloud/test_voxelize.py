"""Tests for pillar and voxel encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (PillarConfig, PillarEncoder, VoxelConfig,
                              VoxelEncoder)


def cloud(points):
    return np.asarray(points, dtype=np.float32)


@pytest.fixture
def pillar_encoder():
    return PillarEncoder(PillarConfig(
        x_range=(0, 8), y_range=(-4, 4), z_range=(-1, 3),
        pillar_size=1.0, max_points_per_pillar=4, max_pillars=16))


class TestPillarEncoder:
    def test_single_point_single_pillar(self, pillar_encoder):
        pillars = pillar_encoder.encode(cloud([[0.5, -3.5, 0.0, 0.7]]))
        assert pillars.num_pillars == 1
        np.testing.assert_array_equal(pillars.indices[0], [0, 0])
        assert pillars.mask[0, 0] == 1.0
        assert pillars.mask[0, 1:].sum() == 0

    def test_points_in_same_cell_share_pillar(self, pillar_encoder):
        pillars = pillar_encoder.encode(cloud([
            [2.1, 0.1, 0.5, 0.3], [2.9, 0.8, 1.0, 0.4]]))
        assert pillars.num_pillars == 1
        assert pillars.mask[0].sum() == 2

    def test_out_of_range_points_dropped(self, pillar_encoder):
        pillars = pillar_encoder.encode(cloud([
            [100.0, 0.0, 0.0, 0.1], [2.0, 0.0, 0.5, 0.1]]))
        assert pillars.num_pillars == 1

    def test_max_points_per_pillar_truncates(self, pillar_encoder):
        points = [[2.5, 0.5, 0.5, 0.1]] * 10
        pillars = pillar_encoder.encode(cloud(points))
        assert pillars.mask.sum() == 4

    def test_max_pillars_keeps_most_populated(self):
        encoder = PillarEncoder(PillarConfig(
            x_range=(0, 8), y_range=(-4, 4), pillar_size=1.0,
            max_points_per_pillar=8, max_pillars=1))
        points = ([[0.5, 0.5, 0.5, 0.1]] * 5    # popular cell
                  + [[5.5, 2.5, 0.5, 0.1]])     # lonely cell
        pillars = encoder.encode(cloud(points))
        assert pillars.num_pillars == 1
        assert pillars.mask.sum() == 5

    def test_centroid_offsets_zero_mean(self, pillar_encoder):
        points = [[2.1, 0.3, 0.5, 0.1], [2.9, 0.7, 1.5, 0.1]]
        pillars = pillar_encoder.encode(cloud(points))
        offsets = pillars.features[0, :2, 4:7]
        np.testing.assert_allclose(offsets.sum(axis=0), np.zeros(3),
                                   atol=1e-5)

    def test_center_offsets_bounded_by_cell(self, pillar_encoder):
        points = [[2.1, 0.3, 0.5, 0.1], [2.9, -0.7, 1.5, 0.1]]
        pillars = pillar_encoder.encode(cloud(points))
        center_offsets = pillars.features[:, :, 7:9]
        assert np.abs(center_offsets).max() <= 0.5 + 1e-6  # half a cell

    def test_feature_dim_is_nine(self, pillar_encoder):
        pillars = pillar_encoder.encode(cloud([[1, 0, 0, 0.5]]))
        assert pillars.features.shape[-1] == 9

    @given(st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_mask_matches_feature_support(self, n_points):
        rng = np.random.default_rng(n_points)
        points = np.column_stack([
            rng.uniform(0, 8, n_points), rng.uniform(-4, 4, n_points),
            rng.uniform(-1, 3, n_points), rng.uniform(0, 1, n_points),
        ]).astype(np.float32)
        encoder = PillarEncoder(PillarConfig(
            x_range=(0, 8), y_range=(-4, 4), pillar_size=1.0,
            max_points_per_pillar=4, max_pillars=64))
        pillars = encoder.encode(points)
        # Wherever the mask is 0, all features must be 0.
        empty = pillars.mask == 0
        assert np.abs(pillars.features[empty]).sum() == 0


class TestVoxelEncoder:
    def test_mean_feature(self):
        encoder = VoxelEncoder(VoxelConfig(
            x_range=(0, 4), y_range=(-2, 2), z_range=(0, 2),
            voxel_size=(1.0, 1.0, 1.0)))
        voxels = encoder.encode(cloud([
            [0.2, -1.5, 0.5, 0.2], [0.8, -1.9, 0.9, 0.6]]))
        assert voxels.num_voxels == 1
        np.testing.assert_allclose(voxels.features[0],
                                   [0.5, -1.7, 0.7, 0.4], atol=1e-5)

    def test_coords_layout_zyx(self):
        encoder = VoxelEncoder(VoxelConfig(
            x_range=(0, 4), y_range=(-2, 2), z_range=(0, 2),
            voxel_size=(1.0, 1.0, 1.0)))
        voxels = encoder.encode(cloud([[3.5, 1.5, 1.5, 0.1]]))
        np.testing.assert_array_equal(voxels.coords[0], [1, 3, 3])

    def test_to_dense_roundtrip(self):
        encoder = VoxelEncoder(VoxelConfig(
            x_range=(0, 4), y_range=(-2, 2), z_range=(0, 2),
            voxel_size=(1.0, 1.0, 1.0)))
        voxels = encoder.encode(cloud([[0.5, -1.5, 0.5, 0.3]]))
        dense = voxels.to_dense()
        assert dense.shape == (4, 2, 4, 4)
        z, y, x = voxels.coords[0]
        np.testing.assert_allclose(dense[:, z, y, x], voxels.features[0])
        assert dense.sum() == pytest.approx(voxels.features.sum(), rel=1e-5)

    def test_grid_shape(self):
        config = VoxelConfig(x_range=(0, 51.2), y_range=(-25.6, 25.6),
                             z_range=(-1, 3), voxel_size=(0.8, 0.8, 0.5))
        assert config.grid_shape == (8, 64, 64)
