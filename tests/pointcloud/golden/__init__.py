"""Golden scene digests pinning the synthetic-data generators.

``scenario_digests.json`` holds blake2b digests of the base
``SceneGenerator``/``make_dataset`` output and of every scenario
family, all at a fixed seed/frame budget.  The determinism regression
tests compare freshly generated scenes against these values, so any
change to scene synthesis — intentional or not — shows up as a test
failure instead of a silent shift in every downstream metric.

To bless new digests after an intentional generator change::

    PYTHONPATH=src python -m tests.pointcloud.golden.regen
"""

import json
import os

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "scenario_digests.json")

#: frames/seed the golden digests were computed with
GOLDEN_FRAMES = 2
GOLDEN_SEED = 0


def load_golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def compute_digests() -> dict:
    """Recompute every digest the golden file pins (current code)."""
    from repro.pointcloud import (SceneGenerator, scenario_digest,
                                  scenario_names, scene_digest)
    digests = {}
    generator = SceneGenerator(seed=GOLDEN_SEED)
    digests["base"] = "+".join(
        scene_digest(generator.generate(i)) for i in range(GOLDEN_FRAMES))
    for name in scenario_names():
        digests[name] = scenario_digest(name, num_frames=GOLDEN_FRAMES,
                                        seed=GOLDEN_SEED)
    return digests
