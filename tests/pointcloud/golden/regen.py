"""Regenerate the golden scene digests after an intentional change.

Run from the repository root::

    PYTHONPATH=src python -m tests.pointcloud.golden.regen

Then review the diff of ``scenario_digests.json`` and commit it together
with the generator change that motivated it.
"""

import json

from . import GOLDEN_PATH, compute_digests


def main() -> int:
    digests = compute_digests()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(digests, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")
    for name, value in sorted(digests.items()):
        print(f"  {name:20s} {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
