"""Tests for point-cloud augmentation: labels must track the points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (LidarConfig, SceneConfig,
                              SceneGenerator, points_in_box)
from repro.pointcloud.augment import (AugmentConfig, augment_scene,
                                      global_flip_y, global_rotation,
                                      global_scaling, object_jitter)


@pytest.fixture(scope="module")
def scene():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=12, azimuth_steps=90))
    return SceneGenerator(cfg, seed=4).generate(0, with_image=False)


def _points_per_box(scene):
    return [int(points_in_box(scene.points, b, margin=0.1).sum())
            for b in scene.boxes]


class TestGlobalRotation:
    def test_preserves_point_count(self, scene):
        rotated = global_rotation(scene, 0.3)
        assert len(rotated.points) == len(scene.points)

    def test_labels_follow_points(self, scene):
        rotated = global_rotation(scene, 0.4)
        np.testing.assert_array_equal(_points_per_box(rotated),
                                      _points_per_box(scene))

    def test_preserves_ranges(self, scene):
        rotated = global_rotation(scene, 1.0)
        np.testing.assert_allclose(
            np.linalg.norm(rotated.points[:, :2], axis=1),
            np.linalg.norm(scene.points[:, :2], axis=1), rtol=1e-5)

    def test_zero_rotation_identity(self, scene):
        rotated = global_rotation(scene, 0.0)
        np.testing.assert_allclose(rotated.points, scene.points, atol=1e-6)

    @given(st.floats(-np.pi, np.pi))
    @settings(max_examples=15, deadline=None)
    def test_rotation_invertible(self, angle):
        cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                          lidar=LidarConfig(channels=8, azimuth_steps=45))
        original = SceneGenerator(cfg, seed=1).generate(0, with_image=False)
        back = global_rotation(global_rotation(original, angle), -angle)
        np.testing.assert_allclose(back.points[:, :3],
                                   original.points[:, :3], atol=1e-4)


class TestFlipAndScale:
    def test_flip_mirrors_y(self, scene):
        flipped = global_flip_y(scene)
        np.testing.assert_allclose(flipped.points[:, 1],
                                   -scene.points[:, 1])
        for orig, flip in zip(scene.boxes, flipped.boxes):
            assert flip.y == pytest.approx(-orig.y)
            assert flip.yaw == pytest.approx(-orig.yaw)

    def test_flip_labels_follow_points(self, scene):
        flipped = global_flip_y(scene)
        np.testing.assert_array_equal(_points_per_box(flipped),
                                      _points_per_box(scene))

    def test_double_flip_identity(self, scene):
        back = global_flip_y(global_flip_y(scene))
        np.testing.assert_allclose(back.points, scene.points)

    def test_scaling_scales_everything(self, scene):
        scaled = global_scaling(scene, 1.1)
        np.testing.assert_allclose(scaled.points[:, :3],
                                   scene.points[:, :3] * 1.1, rtol=1e-5)
        assert scaled.boxes[0].dx == pytest.approx(scene.boxes[0].dx * 1.1)
        # Counts match closely (the fixed membership margin does not
        # scale, so boundary points may flip by a couple).
        for before, after in zip(_points_per_box(scene),
                                 _points_per_box(scaled)):
            assert after >= before * 0.9 - 2


class TestObjectJitter:
    def test_points_move_with_boxes(self, scene):
        rng = np.random.default_rng(0)
        jittered = object_jitter(scene, std=0.3, rng=rng)
        before = _points_per_box(scene)
        after = _points_per_box(jittered)
        # Each moved box keeps (essentially) its points; stray ground
        # points at the membership margin may flip either way.
        for b, a in zip(before, after):
            assert a >= b * 0.85 - 2

    def test_zero_std_identity(self, scene):
        jittered = object_jitter(scene, std=0.0,
                                 rng=np.random.default_rng(0))
        np.testing.assert_allclose(jittered.points, scene.points)


class TestAugmentScene:
    def test_full_pipeline_keeps_labels_consistent(self, scene):
        augmented = augment_scene(scene, rng=np.random.default_rng(7))
        assert len(augmented.boxes) == len(scene.boxes)
        counts = _points_per_box(augmented)
        # Every object still has its points after the combined transform.
        for before, after in zip(_points_per_box(scene), counts):
            assert after >= before * 0.8

    def test_disabled_passthrough(self, scene):
        config = AugmentConfig(enabled=False)
        assert augment_scene(scene, config) is scene

    def test_image_dropped(self, scene):
        scene_with_image = SceneGenerator(
            SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                        lidar=LidarConfig(channels=8, azimuth_steps=45)),
            seed=2).generate(0, with_image=True)
        augmented = augment_scene(scene_with_image,
                                  rng=np.random.default_rng(0))
        assert augmented.image is None

    def test_original_scene_untouched(self, scene):
        points_before = scene.points.copy()
        box_before = scene.boxes[0].as_vector()
        augment_scene(scene, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(scene.points, points_before)
        np.testing.assert_array_equal(scene.boxes[0].as_vector(),
                                      box_before)
