"""Tests for the LiDAR simulator, scene generator and KITTI IO."""

import numpy as np
import pytest

from repro.pointcloud import (Box3D, LidarConfig, LidarScanner, SceneConfig,
                              SceneGenerator, make_dataset, points_in_box)
from repro.pointcloud.kitti import (export_kitti, format_label_line,
                                    load_kitti, parse_label_line,
                                    read_velodyne, write_velodyne)


@pytest.fixture(scope="module")
def small_lidar():
    return LidarConfig(channels=16, azimuth_steps=120, range_noise=0.0,
                       dropout=0.0)


class TestLidarScanner:
    def test_empty_scene_returns_ground_points(self, small_lidar):
        scanner = LidarScanner(small_lidar)
        cloud = scanner.scan([])
        assert cloud.shape[1] == 4
        assert len(cloud) > 0
        # All returns are ground hits at z ~ 0 in ground coordinates.
        np.testing.assert_allclose(cloud[:, 2], 0.0, atol=1e-5)

    def test_box_generates_returns_inside_box(self, small_lidar):
        scanner = LidarScanner(small_lidar)
        car = Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                    meta={"reflectivity": 0.7})
        cloud = scanner.scan([car])
        hits = points_in_box(cloud, car, margin=0.05)
        assert hits.sum() > 10

    def test_box_hits_carry_reflectivity(self, small_lidar):
        scanner = LidarScanner(small_lidar)
        car = Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0,
                    meta={"reflectivity": 0.7})
        cloud = scanner.scan([car])
        # Points well above the ground and inside the box are car returns
        # (edge-adjacent ground hits are excluded by the z filter).
        on_car = points_in_box(cloud, car, margin=0.05) & (cloud[:, 2] > 0.1)
        assert on_car.sum() > 5
        assert np.all(cloud[on_car, 3] == pytest.approx(0.7))

    def test_occlusion_shadows_far_box(self, small_lidar):
        scanner = LidarScanner(small_lidar)
        near = Box3D(8, 0, 1.0, 3.9, 2.2, 2.0, 0.0)
        far = Box3D(12, 0, 0.78, 3.9, 1.6, 1.56, 0.0)
        occluded_cloud = scanner.scan([near, far])
        free_cloud = scanner.scan([far])
        occluded_hits = points_in_box(occluded_cloud, far, margin=0.05).sum()
        free_hits = points_in_box(free_cloud, far, margin=0.05).sum()
        assert occluded_hits < free_hits * 0.5

    def test_points_within_max_range(self, small_lidar):
        scanner = LidarScanner(small_lidar)
        cloud = scanner.scan([Box3D(20, 3, 0.78, 3.9, 1.6, 1.56, 0.0)])
        ranges = np.linalg.norm(cloud[:, :2], axis=1)
        assert ranges.max() <= small_lidar.max_range + 1.0

    def test_deterministic_with_seed(self, small_lidar):
        car = [Box3D(10, 1, 0.78, 3.9, 1.6, 1.56, 0.2)]
        a = LidarScanner(small_lidar, rng=np.random.default_rng(3)).scan(car)
        b = LidarScanner(small_lidar, rng=np.random.default_rng(3)).scan(car)
        np.testing.assert_array_equal(a, b)


class TestSceneGenerator:
    @pytest.fixture(scope="class")
    def scene(self):
        cfg = SceneConfig(lidar=LidarConfig(channels=16, azimuth_steps=120))
        return SceneGenerator(cfg, seed=1).generate(0, with_image=True)

    def test_scene_has_objects_and_points(self, scene):
        assert len(scene.points) > 100
        assert len(scene.boxes) >= 1

    def test_all_boxes_have_min_points(self, scene):
        for box in scene.boxes:
            assert box.meta["num_points"] >= 5

    def test_difficulties_assigned(self, scene):
        assert all(box.difficulty in (0, 1, 2) for box in scene.boxes)

    def test_image_rendered(self, scene):
        assert scene.image is not None
        assert scene.image.shape[0] == 3
        assert scene.image.min() >= 0.0
        assert scene.image.max() <= 1.0

    def test_reproducible(self):
        cfg = SceneConfig(lidar=LidarConfig(channels=8, azimuth_steps=60))
        a = SceneGenerator(cfg, seed=5).generate(3, with_image=False)
        b = SceneGenerator(cfg, seed=5).generate(3, with_image=False)
        np.testing.assert_array_equal(a.points, b.points)
        assert len(a.boxes) == len(b.boxes)

    def test_different_frames_differ(self):
        cfg = SceneConfig(lidar=LidarConfig(channels=8, azimuth_steps=60))
        gen = SceneGenerator(cfg, seed=5)
        a = gen.generate(0, with_image=False)
        b = gen.generate(1, with_image=False)
        assert a.points.shape != b.points.shape or \
            not np.array_equal(a.points, b.points)

    def test_no_overlapping_ground_truth(self, scene):
        from repro.pointcloud import boxes_to_array, iou_matrix_bev
        arr = boxes_to_array(scene.boxes)
        matrix = iou_matrix_bev(arr, arr)
        np.fill_diagonal(matrix, 0.0)
        assert matrix.max() < 0.05


class TestMakeDataset:
    def test_split_sizes(self):
        cfg = SceneConfig(lidar=LidarConfig(channels=8, azimuth_steps=40))
        data = make_dataset(10, cfg, seed=0, with_image=False)
        assert len(data["train"]) == 8
        assert len(data["val"]) == 1
        assert len(data["test"]) == 1

    def test_bad_split_raises(self):
        with pytest.raises(ValueError):
            make_dataset(5, splits=(0.5, 0.2, 0.2))


class TestKittiIO:
    def test_label_line_roundtrip(self):
        box = Box3D(10.5, -2.0, 0.8, 3.9, 1.6, 1.55, 0.79, label="Car",
                    difficulty=1)
        line = format_label_line(box)
        parsed = parse_label_line(line)
        assert parsed.label == "Car"
        assert parsed.difficulty == 1
        np.testing.assert_allclose(parsed.as_vector(), box.as_vector(),
                                   atol=0.01)

    def test_label_line_with_score(self):
        box = Box3D(5, 0, 1, 4, 2, 2, 0.0, score=0.87)
        parsed = parse_label_line(format_label_line(box))
        assert parsed.score == pytest.approx(0.87, abs=1e-3)

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_label_line("Car 0.0 0")

    def test_velodyne_roundtrip(self, tmp_path):
        points = np.random.default_rng(0).standard_normal((100, 4)) \
            .astype(np.float32)
        path = str(tmp_path / "000000.bin")
        write_velodyne(points, path)
        np.testing.assert_array_equal(read_velodyne(path), points)

    def test_export_load_roundtrip(self, tmp_path):
        cfg = SceneConfig(lidar=LidarConfig(channels=8, azimuth_steps=40))
        scenes = [SceneGenerator(cfg, seed=2).generate(i, with_image=True)
                  for i in range(2)]
        export_kitti(scenes, str(tmp_path))
        loaded = load_kitti(str(tmp_path))
        assert len(loaded) == 2
        np.testing.assert_allclose(loaded[0].points, scenes[0].points,
                                   atol=1e-5)
        assert len(loaded[0].boxes) == len(scenes[0].boxes)
        assert loaded[0].image is not None
        assert "K" in loaded[0].calib
