"""Property-based invariants of the BEV/3D IoU geometry kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (iou_3d, iou_bev, iou_matrix_bev)

_coord = st.floats(-40.0, 40.0)
_size = st.floats(0.5, 6.0)
_angle = st.floats(-np.pi, np.pi)


@st.composite
def _box(draw):
    return np.array([draw(_coord), draw(_coord), draw(st.floats(-1.0, 2.0)),
                     draw(_size), draw(_size), draw(_size), draw(_angle)],
                    dtype=np.float64)


class TestIoUProperties:
    @given(_box(), _box())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        # Polygon clipping accumulates last-ulp differences depending on
        # which box plays subject vs clip, so symmetry is approximate.
        assert iou_bev(a, b) == pytest.approx(iou_bev(b, a), abs=1e-9)
        assert iou_3d(a, b) == pytest.approx(iou_3d(b, a), abs=1e-9)

    @given(_box(), _box())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b):
        for value in (iou_bev(a, b), iou_3d(a, b)):
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(_box())
    @settings(max_examples=40, deadline=None)
    def test_self_iou_is_one(self, a):
        assert abs(iou_bev(a, a) - 1.0) < 1e-6
        assert abs(iou_3d(a, a) - 1.0) < 1e-6

    @given(_box(), st.floats(0, 2 * np.pi))
    @settings(max_examples=40, deadline=None)
    def test_rotation_by_pi_is_identity(self, a, _):
        """A BEV rectangle is symmetric under a half-turn."""
        b = a.copy()
        b[6] += np.pi
        assert abs(iou_bev(a, b) - 1.0) < 1e-6

    @given(_box(), st.floats(50.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_disjoint_boxes_score_zero(self, a, gap):
        b = a.copy()
        # Move past any possible extent of either footprint.
        b[0] += a[3] + a[4] + gap
        assert iou_bev(a, b) == 0.0
        assert iou_3d(a, b) == 0.0

    @given(_box(), st.floats(20.0, 40.0))
    @settings(max_examples=40, deadline=None)
    def test_vertical_separation_kills_3d_overlap(self, a, dz):
        """Same footprint, stacked far apart: BEV 1.0 but 3D 0.0."""
        b = a.copy()
        b[2] += a[5] + dz
        assert abs(iou_bev(a, b) - 1.0) < 1e-6
        assert iou_3d(a, b) == 0.0

    @given(st.integers(0, 9999), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_matrix_matches_pairwise(self, seed, n, m):
        rng = np.random.default_rng(seed)

        def batch(count):
            boxes = np.zeros((count, 7))
            boxes[:, 0] = rng.uniform(-20, 20, count)
            boxes[:, 1] = rng.uniform(-20, 20, count)
            boxes[:, 3:6] = rng.uniform(1, 4, (count, 3))
            boxes[:, 6] = rng.uniform(-np.pi, np.pi, count)
            return boxes

        a, b = batch(n), batch(m)
        matrix = iou_matrix_bev(a, b)
        assert matrix.shape == (n, m)
        for i in range(n):
            for j in range(m):
                assert matrix[i, j] == iou_bev(a[i], b[j])
