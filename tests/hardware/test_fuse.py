"""Tests for conv+BN folding."""

import numpy as np

from repro import nn
from repro.hardware.fuse import count_foldable, fold_batchnorm, fold_conv_bn
from repro.nn import Tensor


def _trained_block(seed=0):
    """A ConvBNReLU whose BN stats are non-trivial (after fake training)."""
    rng = np.random.default_rng(seed)
    block = nn.ConvBNReLU(3, 6, 3, rng=rng)
    block.train()
    for _ in range(20):
        x = Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
                   * 2.0 + 1.0)
        block(x)
    block.eval()
    return block


class TestFoldConvBn:
    def test_outputs_identical_in_eval(self):
        block = _trained_block()
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        reference = block(x).data

        folded = fold_batchnorm(block)
        out = folded(x).data
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_bn_replaced_with_identity(self):
        folded = fold_batchnorm(_trained_block())
        assert isinstance(folded.bn, nn.Identity)

    def test_original_untouched(self):
        block = _trained_block()
        weights_before = block.conv.weight.data.copy()
        fold_batchnorm(block)
        np.testing.assert_array_equal(block.conv.weight.data,
                                      weights_before)
        assert isinstance(block.bn, nn.BatchNorm2d)

    def test_conv_gains_bias(self):
        block = _trained_block()
        assert block.conv.bias is None      # ConvBNReLU convs are biasless
        folded = fold_batchnorm(block)
        assert folded.conv.bias is not None
        assert np.abs(folded.conv.bias.data).sum() > 0

    def test_fold_in_place_api(self):
        block = _trained_block(seed=3)
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((1, 3, 6, 6)).astype(np.float32))
        block.eval()
        reference = block.bn(block.conv(x)).data
        fold_conv_bn(block.conv, block.bn)
        np.testing.assert_allclose(block.conv(x).data, reference,
                                   rtol=1e-4, atol=1e-5)


class TestFoldModel:
    def test_counts_and_folds_whole_detector(self):
        from repro.models import PointPillars
        from repro.pointcloud.voxelize import PillarConfig
        model = PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8, seed=0)
        n = count_foldable(model)
        assert n >= 6    # three stages with ≥2 blocks each at this size
        folded = fold_batchnorm(model)
        assert count_foldable(folded) == 0   # all BNs gone

    def test_folded_model_runs_upaq(self):
        """Deployment order: fold BN first, then compress the folded net."""
        from repro.core import UPAQCompressor, hck_config
        from repro.models import PointPillars
        from repro.pointcloud.voxelize import PillarConfig
        model = PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8, seed=0)
        folded = fold_batchnorm(model)
        report = UPAQCompressor(hck_config()).compress(
            folded, *model.example_inputs())
        assert report.compression_ratio > 3.0
        out = report.model(*model.example_inputs())
        assert np.isfinite(out["cls"].data).all()


class TestFoldingCostModel:
    def test_folding_reduces_plan_cost(self):
        """The cost model rewards BN folding with lower elementwise
        traffic and latency — what a deployment compiler buys."""
        from repro.hardware import compile_model, default_devices
        from repro.models import PointPillars
        from repro.pointcloud.voxelize import PillarConfig
        model = PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=8, stage_channels=(8, 16, 32),
            stage_depths=(1, 1, 1), upsample_channels=8, seed=0)
        inputs = model.example_inputs()
        unfolded_plan = compile_model(model, *inputs)
        folded_plan = compile_model(fold_batchnorm(model), *inputs)
        assert folded_plan.elementwise_bytes \
            < unfolded_plan.elementwise_bytes
        device = default_devices()["jetson"]
        assert device.latency(folded_plan) < device.latency(unfolded_plan)
