"""Tests for profiling, deployment plans and the device models."""

import numpy as np
import pytest

from repro import nn
from repro.hardware import (CompressionMeta, DeviceModel, EnergyMeter,
                            JETSON_ORIN_NANO, RTX_4080, annotate_layer,
                            compile_model, default_devices, get_annotation,
                            profile_model)
from repro.nn import Tensor


@pytest.fixture
def simple_model():
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(8, 4, 1, rng=rng),
    )


@pytest.fixture
def example_input():
    rng = np.random.default_rng(1)
    return Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))


class TestProfile:
    def test_layer_count(self, simple_model, example_input):
        profile = profile_model(simple_model, example_input)
        assert len(profile.layers) == 2

    def test_conv_macs(self, simple_model, example_input):
        profile = profile_model(simple_model, example_input)
        conv = profile.by_name()["0"]
        # 16×16 output positions × 8 out × 3 in × 9 taps
        assert conv.macs == 16 * 16 * 8 * 3 * 9

    def test_1x1_macs(self, simple_model, example_input):
        profile = profile_model(simple_model, example_input)
        proj = profile.by_name()["2"]
        assert proj.macs == 16 * 16 * 4 * 8

    def test_weight_count_includes_bias(self, simple_model, example_input):
        profile = profile_model(simple_model, example_input)
        conv = profile.by_name()["0"]
        assert conv.weight_count == 8 * 3 * 9 + 8

    def test_forward_restored_after_profiling(self, simple_model,
                                              example_input):
        profile_model(simple_model, example_input)
        out = simple_model(example_input)  # must not re-record
        assert out.shape == (1, 4, 16, 16)

    def test_total_macs_sums(self, simple_model, example_input):
        profile = profile_model(simple_model, example_input)
        assert profile.total_macs == sum(l.macs for l in profile.layers)


class TestCompile:
    def test_dense_plan_ratio_is_one(self, simple_model, example_input):
        plan = compile_model(simple_model, example_input)
        assert plan.compression_ratio == pytest.approx(1.0)

    def test_annotations_flow_into_plan(self, simple_model, example_input):
        annotate_layer(simple_model[0],
                       CompressionMeta(bits=8, scheme="semi-structured"))
        plan = compile_model(simple_model, example_input)
        layer = {l.profile.name: l for l in plan.layers}["0"]
        assert layer.bits == 8
        assert layer.scheme == "semi-structured"

    def test_sparsity_measured_from_weights(self, simple_model,
                                            example_input):
        simple_model[0].weight.data[:, :, 0, :] = 0.0
        plan = compile_model(simple_model, example_input)
        layer = {l.profile.name: l for l in plan.layers}["0"]
        assert layer.sparsity == pytest.approx(
            (simple_model[0].weight.data == 0).mean(), abs=0.01)

    def test_quantization_shrinks_storage(self, simple_model, example_input):
        annotate_layer(simple_model[0], CompressionMeta(bits=8))
        annotate_layer(simple_model[2], CompressionMeta(bits=8))
        plan = compile_model(simple_model, example_input)
        assert plan.compression_ratio > 3.0

    def test_fp32_pruning_without_quant_skips_no_macs(self):
        rng = np.random.default_rng(2)
        model = nn.Sequential(nn.Conv2d(2, 2, 3, rng=rng))
        model[0].weight.data[:, :, :2, :] = 0.0
        annotate_layer(model[0], CompressionMeta(bits=32,
                                                 scheme="semi-structured"))
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        plan = compile_model(model, x)
        layer = plan.layers[0]
        assert layer.effective_macs == layer.profile.macs

    def test_int8_pruning_skips_macs(self):
        rng = np.random.default_rng(2)
        model = nn.Sequential(nn.Conv2d(2, 2, 3, rng=rng))
        model[0].weight.data[:, :, :2, :] = 0.0
        annotate_layer(model[0], CompressionMeta(bits=8,
                                                 scheme="semi-structured"))
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        plan = compile_model(model, x)
        layer = plan.layers[0]
        assert layer.effective_macs < layer.profile.macs

    def test_bad_scheme_raises(self):
        with pytest.raises(ValueError):
            CompressionMeta(bits=8, scheme="magic")

    def test_bad_bits_raises(self):
        with pytest.raises(ValueError):
            CompressionMeta(bits=0)

    def test_default_annotation_dense(self, simple_model):
        meta = get_annotation(simple_model[1])
        assert meta.bits == 32
        assert meta.scheme == "dense"


class TestDeviceModel:
    def test_jetson_slower_than_rtx(self, simple_model, example_input):
        plan = compile_model(simple_model, example_input)
        jetson = DeviceModel(JETSON_ORIN_NANO)
        rtx = DeviceModel(RTX_4080)
        assert jetson.latency(plan) > rtx.latency(plan)

    def test_quantization_reduces_latency_and_energy(self, simple_model,
                                                     example_input):
        dense_plan = compile_model(simple_model, example_input)
        for layer in (simple_model[0], simple_model[2]):
            annotate_layer(layer, CompressionMeta(bits=8,
                                                  scheme="semi-structured"))
        quant_plan = compile_model(simple_model, example_input)
        jetson = DeviceModel(JETSON_ORIN_NANO)
        assert jetson.latency(quant_plan) < jetson.latency(dense_plan)
        assert jetson.energy(quant_plan) < jetson.energy(dense_plan)

    def test_calibration_scales_latency(self, simple_model, example_input):
        plan = compile_model(simple_model, example_input)
        jetson = DeviceModel(JETSON_ORIN_NANO)
        calibrated = jetson.calibrate(plan, reference_latency_s=35.98e-3)
        assert calibrated.latency(plan) == pytest.approx(35.98e-3, rel=1e-6)

    def test_bitwidth_speedup_interpolation(self):
        spec = JETSON_ORIN_NANO
        assert spec.speedup_for_bits(8) == 4.0
        assert spec.speedup_for_bits(32) == 1.0
        assert 4.0 < spec.speedup_for_bits(6) <= 5.0
        assert spec.speedup_for_bits(64) == 1.0  # clamps high

    def test_nonkernel_floor_limits_speedup(self, simple_model,
                                            example_input):
        # Even at absurdly low bits the nonkernel time remains.
        for layer in (simple_model[0], simple_model[2]):
            annotate_layer(layer, CompressionMeta(bits=4,
                                                  scheme="semi-structured"))
        plan = compile_model(simple_model, example_input)
        jetson = DeviceModel(JETSON_ORIN_NANO)
        assert jetson.latency(plan) > jetson.nonkernel_time(plan)


class TestEnergyMeter:
    def test_trace_integrates_to_energy(self, simple_model, example_input):
        plan = compile_model(simple_model, example_input)
        device = DeviceModel(JETSON_ORIN_NANO)
        meter = EnergyMeter(device, sample_rate_hz=5e6)
        energy, samples = meter.measure(plan)
        assert len(samples) > 0
        closed_form = device.energy(plan) \
            - device.nonkernel_time(plan) * JETSON_ORIN_NANO.idle_power_w \
            - plan.elementwise_bytes * JETSON_ORIN_NANO.byte_energy_j
        assert energy == pytest.approx(closed_form, rel=1e-6)

    def test_average_power_positive(self, simple_model, example_input):
        plan = compile_model(simple_model, example_input)
        meter = EnergyMeter(DeviceModel(JETSON_ORIN_NANO))
        assert meter.average_power(plan) > 0

    def test_default_devices_keys(self):
        devices = default_devices()
        assert set(devices) == {"jetson", "rtx4080"}
