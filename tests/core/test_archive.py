"""Model-variant archive format: round-trip, dedup, golden pin, salvage.

The committed golden archive (``tests/core/golden/model_archive_v1.upak``)
pins the on-disk layout — header, deterministic JSON TOC, content-
addressed chunk region, trailer — and the cross-variant dedup of the
three bitwidth variants it packs.  Regenerate after an intentional
format change with ``PYTHONPATH=src python -m tests.core.golden.regen``
(see ``docs/TESTING.md``).
"""

import pytest

from repro.core import (ArchiveCorruptionError, ArchiveError,
                        ArchiveReader, ArchiveVersionError, ArchiveWriter,
                        BlobError, pack_archive, split_blob)

from tests.core.golden.regen import (GOLDEN_ARCHIVE_PATH, GOLDEN_PATH,
                                     GOLDEN_VARIANTS, golden_archive,
                                     golden_model, golden_variant,
                                     golden_variant_blob)


@pytest.fixture(scope="module")
def archive_bytes() -> bytes:
    return GOLDEN_ARCHIVE_PATH.read_bytes()


@pytest.fixture(scope="module")
def reader(archive_bytes) -> ArchiveReader:
    return ArchiveReader(archive_bytes)


class TestRoundTrip:
    def test_entry_names_in_pack_order(self, reader):
        assert reader.names == [name for name, _ in GOLDEN_VARIANTS]

    def test_load_returns_exact_blob_bytes(self, reader):
        for name, bits in GOLDEN_VARIANTS:
            assert reader.load(name) == golden_variant_blob(bits)

    def test_meta_round_trips(self, reader):
        for name, bits in GOLDEN_VARIANTS:
            entry = reader.entry(name)
            assert entry.meta == {"model": "golden", "preset": name,
                                  "bits": bits}

    def test_restore_hands_back_weights_and_ir(self, reader):
        for name, bits in GOLDEN_VARIANTS:
            target = golden_model()     # same architecture, any weights
            report = reader.restore(name, target)
            assert report.ir is not None
            expected = golden_variant(bits)
            for restored, want in zip(target.parameters(),
                                      expected.parameters()):
                assert (restored.data == want.data).all()

    def test_open_reads_from_a_file(self, reader):
        from_file = ArchiveReader.open(GOLDEN_ARCHIVE_PATH)
        assert from_file.names == reader.names
        for name in reader.names:
            assert from_file.load(name) == reader.load(name)

    def test_verify_passes_on_the_committed_archive(self, reader):
        reader.verify()

    def test_golden_blob_is_the_4bit_variant(self, reader):
        # golden_model() *is* the 4-bit variant, so the archive's
        # ``hck-4`` entry must reproduce the committed packed blob.
        assert reader.load("hck-4") == GOLDEN_PATH.read_bytes()


class TestDeterminism:
    def test_regeneration_is_byte_identical_to_committed(
            self, archive_bytes):
        assert golden_archive() == archive_bytes

    def test_pack_archive_is_a_pure_function_of_its_inputs(self):
        blobs = {name: golden_variant_blob(bits)
                 for name, bits in GOLDEN_VARIANTS}
        meta = {name: {"bits": bits} for name, bits in GOLDEN_VARIANTS}
        assert pack_archive(blobs, meta) == pack_archive(blobs, meta)


class TestDedup:
    def test_shared_layers_are_stored_once(self, reader):
        stats = reader.stats
        # 3 variants x (header + 3 layer payloads + trailer) = 15
        # references; layers 2 and 3 are identical across variants so
        # 2 chunks absorb 3 references each: 15 - 2*2 = 11 stored.
        assert stats.entries == 3
        assert stats.chunks_referenced == 15
        assert stats.chunks_stored == 11
        assert stats.shared_chunks == 4
        assert stats.saved_bytes > 0
        assert stats.stored_bytes \
            == stats.logical_bytes - stats.saved_bytes

    def test_writer_and_reader_agree_on_stats(self, reader):
        writer = ArchiveWriter()
        for name, bits in GOLDEN_VARIANTS:
            writer.add(name, golden_variant_blob(bits))
        assert writer.stats == reader.stats

    def test_identical_blobs_share_every_payload_chunk(self):
        blob = golden_variant_blob(8)
        writer = ArchiveWriter()
        writer.add("a", blob)
        writer.add("b", blob)
        stats = writer.stats
        assert stats.chunks_stored == len(split_blob(blob))
        assert stats.chunks_referenced == 2 * stats.chunks_stored
        assert stats.saved_bytes == len(blob)

    def test_split_blob_reassembles_exactly(self):
        blob = golden_variant_blob(16)
        segments = split_blob(blob)
        assert len(segments) >= 3      # header + payloads + trailer
        assert b"".join(segments) == blob


class TestWriterErrors:
    def test_duplicate_name_rejected(self):
        writer = ArchiveWriter()
        writer.add("x", golden_variant_blob(8))
        with pytest.raises(ArchiveError, match="duplicate"):
            writer.add("x", golden_variant_blob(8))

    def test_empty_name_rejected(self):
        with pytest.raises(ArchiveError, match="non-empty"):
            ArchiveWriter().add("", golden_variant_blob(8))

    def test_empty_archive_rejected(self):
        with pytest.raises(ArchiveError, match="empty"):
            ArchiveWriter().finish()

    def test_non_blob_payload_rejected(self):
        with pytest.raises((ArchiveError, BlobError)):
            ArchiveWriter().add("junk", b"this is not a packed model")


class TestReaderErrors:
    def test_not_an_archive(self):
        with pytest.raises(ArchiveCorruptionError, match="not a UPAQ"):
            ArchiveReader(b"garbage that is long enough to read")

    def test_truncated_header(self):
        with pytest.raises(ArchiveCorruptionError):
            ArchiveReader(b"UPAK")

    def test_unsupported_version(self, archive_bytes):
        tampered = bytearray(archive_bytes)
        tampered[4] = 99                # version byte after magic
        with pytest.raises(ArchiveVersionError):
            ArchiveReader(bytes(tampered))

    def test_unknown_entry(self, reader):
        with pytest.raises(KeyError, match="no archive entry"):
            reader.entry("missing")

    def test_corrupt_toc_is_unusable(self, archive_bytes):
        tampered = bytearray(archive_bytes)
        # First TOC byte sits right after magic + version + u32 length.
        tampered[9] ^= 0xFF
        with pytest.raises(ArchiveCorruptionError, match="TOC"):
            ArchiveReader(bytes(tampered))


def _chunk_span(reader, archive_bytes, index):
    """(absolute_start, length) of one chunk in the archive bytes."""
    digest, offset, length = reader._chunks[index]
    return reader._data_start + offset, length


class TestSalvage:
    def test_bit_flip_corrupts_only_the_touched_variant(
            self, reader, archive_bytes):
        # Chunk 8 is the hck-4 header segment — exclusive to hck-4.
        start, _ = _chunk_span(reader, archive_bytes, 8)
        tampered = bytearray(archive_bytes)
        tampered[start] ^= 0x01
        damaged = ArchiveReader(bytes(tampered))
        report = damaged.salvage()
        assert not report.complete
        assert sorted(report.corrupt) == ["hck-4"]
        assert report.intact == ["lck-16", "lck-8"]
        # Intact entries still load to their exact bytes.
        for name, bits in GOLDEN_VARIANTS:
            if name in report.intact:
                assert damaged.load(name) == golden_variant_blob(bits)
        with pytest.raises(ArchiveCorruptionError):
            damaged.verify()

    def test_bit_flip_in_a_shared_chunk_corrupts_all_sharers(
            self, reader, archive_bytes):
        # Chunk 2 is a layer payload deduplicated across all variants.
        start, _ = _chunk_span(reader, archive_bytes, 2)
        tampered = bytearray(archive_bytes)
        tampered[start] ^= 0x01
        report = ArchiveReader(bytes(tampered)).salvage()
        assert sorted(report.corrupt) == ["hck-4", "lck-16", "lck-8"]
        assert report.intact == []

    def test_truncation_salvages_every_complete_entry(
            self, reader, archive_bytes):
        # Cut mid-way through the last entry's exclusive chunks: the
        # TOC (at the front) survives, earlier entries stay loadable.
        start, _ = _chunk_span(reader, archive_bytes, 8)
        truncated = ArchiveReader(archive_bytes[:start + 10])
        report = truncated.salvage()
        assert "hck-4" in report.corrupt
        assert "lck-16" in report.intact
        assert "lck-8" in report.intact
        assert truncated.load("lck-16") == golden_variant_blob(16)

    def test_salvage_on_intact_archive_is_complete(self, reader):
        report = reader.salvage()
        assert report.complete
        assert report.corrupt == {}
        assert report.intact == [name for name, _ in GOLDEN_VARIANTS]

    def test_summary_counts_dedup(self, reader):
        text = reader.summary()
        assert "3 entries" in text
        assert "11 chunks stored" in text
        assert "4 deduplicated" in text
