"""Tests for the efficiency score (eq. 2) and its device coupling."""

import numpy as np
import pytest

from repro import nn
from repro.core import EfficiencyScorer, EfficiencyWeights
from repro.hardware import compile_model, default_devices
from repro.nn import Tensor


@pytest.fixture(scope="module")
def scorer():
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(8, 8, 3, padding=1, rng=rng),
    )
    x = Tensor(rng.standard_normal((1, 4, 16, 16)).astype(np.float32))
    plan = compile_model(model, x)
    return EfficiencyScorer(plan, default_devices()["jetson"])


class TestEfficiencyWeights:
    def test_defaults_match_paper(self):
        w = EfficiencyWeights()
        assert (w.alpha, w.beta, w.gamma) == (0.3, 0.4, 0.3)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            EfficiencyWeights(alpha=1.5)
        with pytest.raises(ValueError):
            EfficiencyWeights(gamma=-0.1)


class TestEfficiencyScorer:
    def test_dense_fp32_scores_near_weighted_sum(self, scorer):
        # Dense fp32 with perfect sqnr: gain ratios are 1.0, normalized
        # by the 10x saturation reference → 0.1 each.
        name = scorer.layer_names()[0]
        score = scorer.score(name, sqnr=float("inf"), bits=32, sparsity=0.0,
                             scheme="dense")
        assert score == pytest.approx(0.3 + 0.4 * 0.1 + 0.3 * 0.1,
                                      abs=0.01)

    def test_speedup_term_saturates(self, scorer):
        # Beyond the 10x reference, further latency gains add nothing;
        # the score is bounded by α + β + γ.
        name = scorer.layer_names()[0]
        score = scorer.score(name, sqnr=float("inf"), bits=2, sparsity=0.99)
        assert score <= 1.0 + 1e-6

    def test_lower_bits_improve_latency_term(self, scorer):
        name = scorer.layer_names()[0]
        high = scorer.score(name, sqnr=1e6, bits=16, sparsity=0.5)
        low = scorer.score(name, sqnr=1e6, bits=8, sparsity=0.5)
        assert low > high

    def test_sqnr_term_saturates(self, scorer):
        name = scorer.layer_names()[0]
        a = scorer.score(name, sqnr=10 ** 6, bits=8, sparsity=0.5)
        b = scorer.score(name, sqnr=10 ** 9, bits=8, sparsity=0.5)
        assert a == pytest.approx(b)

    def test_poor_sqnr_lowers_score(self, scorer):
        name = scorer.layer_names()[0]
        good = scorer.score(name, sqnr=10 ** 4, bits=8, sparsity=0.5)
        bad = scorer.score(name, sqnr=2.0, bits=8, sparsity=0.5)
        assert good > bad

    def test_sparsity_improves_score_when_quantized(self, scorer):
        name = scorer.layer_names()[0]
        dense = scorer.score(name, sqnr=1e6, bits=8, sparsity=0.0)
        sparse = scorer.score(name, sqnr=1e6, bits=8, sparsity=0.7)
        assert sparse >= dense

    def test_weights_change_tradeoff(self):
        rng = np.random.default_rng(1)
        model = nn.Sequential(nn.Conv2d(4, 4, 3, padding=1, rng=rng))
        x = Tensor(rng.standard_normal((1, 4, 12, 12)).astype(np.float32))
        plan = compile_model(model, x)
        device = default_devices()["jetson"]
        accuracy_biased = EfficiencyScorer(
            plan, device, EfficiencyWeights(alpha=1.0, beta=0.0, gamma=0.0))
        latency_biased = EfficiencyScorer(
            plan, device, EfficiencyWeights(alpha=0.0, beta=1.0, gamma=0.0))
        name = accuracy_biased.layer_names()[0]
        # Accuracy-biased scoring must prefer 16 bits; latency-biased 4.
        acc16 = accuracy_biased.score(name, sqnr=1e5, bits=16, sparsity=0.5)
        acc4 = accuracy_biased.score(name, sqnr=10.0, bits=4, sparsity=0.5)
        assert acc16 > acc4
        lat16 = latency_biased.score(name, sqnr=1e5, bits=16, sparsity=0.5)
        lat4 = latency_biased.score(name, sqnr=10.0, bits=4, sparsity=0.5)
        assert lat4 > lat16
