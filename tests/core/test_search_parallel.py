"""Tests for the parallel, memoized candidate-search engine.

The contract pinned down here: the compression search produces
*bit-identical* outputs (layer choices, masks, packed blob, compression
ratio) for every worker count and backend, the content-keyed memo cache
actually fires on repeated kernels, and the search statistics surfaced
in ``CompressionReport.search`` are populated and consistent.
"""

import os
import threading

import numpy as np
import pytest

from repro import nn
from repro.core import (MemoCache, SearchEngine, UPAQCompressor,
                        content_digest, content_key, hck_config,
                        pack_model, resolve_backend, run_root_task,
                        RootSearchTask)
from repro.nn import Tensor


class ChainNet(nn.Module):
    """conv3x3 → conv3x3 → conv1x1 chain, same shape as the doc examples."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = nn.Conv2d(2, 4, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.proj = nn.Conv2d(4, 2, 1, rng=rng)

    def forward(self, x):
        return self.proj(self.conv2(self.conv1(x).relu()).relu())

    def example_inputs(self):
        rng = np.random.default_rng(1)
        return (Tensor(rng.standard_normal((1, 2, 6, 6))
                       .astype(np.float32)),)


class TwinNet(nn.Module):
    """Two branches with *identical* weights — the memo cache's food."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(7)
        self.a = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        self.b = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        self.b.weight.data = self.a.weight.data.copy()

    def forward(self, x):
        return self.a(x) + self.b(x)

    def example_inputs(self):
        rng = np.random.default_rng(2)
        return (Tensor(rng.standard_normal((1, 3, 6, 6))
                       .astype(np.float32)),)


class TiedLeafNet(nn.Module):
    """3×3 chain whose two *leaves* share identical weights.

    Under root grouping, conv1 roots the group and conv2/conv3 are its
    leaves; tying conv3's weights to conv2's makes their leaf tasks
    cache-identical — the engine dedups them and hands conv3 back a
    result object named "conv2" (regression: this used to KeyError).
    """

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(11)
        self.conv1 = nn.Conv2d(2, 4, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.conv3 = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.conv3.weight.data = self.conv2.weight.data.copy()

    def forward(self, x):
        return self.conv3(self.conv2(self.conv1(x).relu()).relu())

    def example_inputs(self):
        rng = np.random.default_rng(3)
        return (Tensor(rng.standard_normal((1, 2, 6, 6))
                       .astype(np.float32)),)


def _compress(model, **config_overrides):
    config = hck_config(**config_overrides)
    return UPAQCompressor(config).compress(model, *model.example_inputs())


def _assert_reports_identical(a, b):
    assert a.choices == b.choices
    assert set(a.masks) == set(b.masks)
    for name in a.masks:
        np.testing.assert_array_equal(a.masks[name], b.masks[name])
    assert a.compression_ratio == b.compression_ratio
    assert pack_model(a.model) == pack_model(b.model)


class TestDeterminism:
    """Satellite: serial vs parallel produce identical outputs."""

    def test_workers_2_and_4_thread_match_serial(self):
        model = ChainNet()
        serial = _compress(model, seed=5, search_workers=1)
        for workers in (2, 4):
            parallel = _compress(model, seed=5, search_workers=workers,
                                 search_backend="thread")
            _assert_reports_identical(serial, parallel)

    def test_process_backend_matches_serial(self):
        model = ChainNet()
        serial = _compress(model, seed=5, search_workers=1)
        parallel = _compress(model, seed=5, search_workers=2,
                             search_backend="process")
        _assert_reports_identical(serial, parallel)

    def test_auto_backend_matches_serial(self):
        model = ChainNet()
        serial = _compress(model, seed=9, search_workers=1)
        parallel = _compress(model, seed=9, search_workers=3,
                             search_backend="auto")
        _assert_reports_identical(serial, parallel)

    def test_duplicate_weight_leaves_in_one_group(self):
        """Tied leaves dedup to one evaluation, with identical outcomes."""
        model = TiedLeafNet()
        serial = _compress(model, seed=5, search_workers=1)
        groups = dict(serial.groups)
        assert groups["conv1"] == ["conv1", "conv2", "conv3"]
        np.testing.assert_array_equal(serial.masks["conv2"],
                                      serial.masks["conv3"])
        assert serial.choice_for("conv2").bits == \
            serial.choice_for("conv3").bits
        tied = {s.layer: s for s in serial.search.layers}
        assert tied["conv3"].cached and not tied["conv2"].cached
        parallel = _compress(model, seed=5, search_workers=2,
                             search_backend="thread")
        _assert_reports_identical(serial, parallel)

    def test_root_task_result_independent_of_layer_name(self):
        """Pools are seeded from weight content, not layer identity."""
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)

        def task(name):
            return RootSearchTask(
                name=name, weights=weights, path="kxk", n_nonzero=2,
                quant_bits=(4, 8), num_patterns=4, pattern_types=None,
                tile=3, connectivity_percentile=0.0, base_seed=0)

        first = run_root_task(task("backbone.conv1"))
        second = run_root_task(task("totally.different"))
        assert first.patterns == second.patterns
        for c1, c2 in zip(first.candidates, second.candidates):
            np.testing.assert_array_equal(c1.values, c2.values)
            np.testing.assert_array_equal(c1.mask, c2.mask)
            assert c1.sqnr == c2.sqnr


class TestMemoCache:
    def test_hit_and_miss_accounting(self):
        cache = MemoCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"
        cache.put("c", 3)                # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)

    def test_thread_safety_smoke(self):
        cache = MemoCache(max_entries=64)

        def worker(base):
            for i in range(200):
                cache.put((base, i % 50), i)
                cache.get((base, (i * 7) % 50))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64
        assert cache.hits + cache.misses == 4 * 200


class TestContentDigest:
    def test_sensitive_to_values_shape_dtype(self):
        a = np.arange(12, dtype=np.float32)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a.reshape(3, 4))
        assert content_digest(a) != content_digest(a.astype(np.float64))
        changed = a.copy()
        changed[0] += 1
        assert content_digest(a) != content_digest(changed)

    def test_content_key_is_wide_and_sensitive(self):
        a = np.arange(12, dtype=np.float32)
        key = content_key(a)
        assert isinstance(key, bytes) and len(key) == 16
        assert key == content_key(a.copy())
        assert key != content_key(a.reshape(3, 4))
        assert key != content_key(a.astype(np.float64))
        changed = a.copy()
        changed[0] += 1
        assert key != content_key(changed)


class TestBackendResolution:
    def test_single_worker_is_serial(self):
        assert resolve_backend("auto", 1) == "serial"
        assert resolve_backend("process", 1) == "serial"

    def test_explicit_backends_respected(self):
        assert resolve_backend("thread", 4) == "thread"
        assert resolve_backend("process", 4) == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("celery", 4)


class TestEngine:
    def test_results_in_submission_order(self):
        rng = np.random.default_rng(3)
        tasks = [RootSearchTask(
            name=f"layer{i}",
            weights=rng.standard_normal((2, 2, 3, 3)).astype(np.float32),
            path="kxk", n_nonzero=2, quant_bits=(8,), num_patterns=3,
            pattern_types=None, tile=3, connectivity_percentile=0.0,
            base_seed=0) for i in range(6)]
        engine = SearchEngine(workers=3, backend="thread")
        results = engine.map(run_root_task, tasks)
        assert [r.name for r, _ in results] == [t.name for t in tasks]

    def test_memoization_skips_duplicate_tasks(self):
        rng = np.random.default_rng(4)
        weights = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        tasks = [RootSearchTask(
            name=f"layer{i}", weights=weights, path="kxk", n_nonzero=2,
            quant_bits=(8,), num_patterns=3, pattern_types=None, tile=3,
            connectivity_percentile=0.0, base_seed=0) for i in range(3)]
        cache = MemoCache()
        engine = SearchEngine(workers=1, cache=cache)
        results = engine.map(run_root_task, tasks)
        assert [cached for _, cached in results] == [False, True, True]
        assert cache.hits == 2


class TestSearchStats:
    def test_report_carries_stats(self):
        model = ChainNet()
        report = _compress(model, search_workers=2,
                           search_backend="thread")
        stats = report.search
        assert stats is not None
        assert stats.workers == 2
        assert stats.backend == "thread"
        assert stats.wall_time_s > 0
        assert {s.layer for s in stats.layers} == {"conv1", "conv2", "proj"}
        roles = {s.layer: s.role for s in stats.layers}
        assert roles["conv1"] == "root"
        assert roles["conv2"] == "leaf"
        # conv1 root: num_patterns × len(quant_bits) candidates (HCK: 8×3).
        by_layer = {s.layer: s for s in stats.layers}
        assert by_layer["conv1"].candidates == 8 * 3
        assert by_layer["conv2"].candidates == 8     # leaf: pool only
        assert stats.candidates_evaluated == sum(
            s.candidates for s in stats.layers)
        assert "cache" in stats.summary()

    def test_duplicate_layers_hit_the_cache(self):
        model = TwinNet()
        report = _compress(model, use_root_groups=False)
        assert report.search.cache_hits >= 1
        assert report.search.cache_hit_rate > 0
        a = report.choice_for("a")
        b = report.choice_for("b")
        assert a.bits == b.bits
        assert a.pattern == b.pattern
        np.testing.assert_array_equal(report.masks["a"], report.masks["b"])
        cached_layers = [s.layer for s in report.search.layers if s.cached]
        assert "b" in cached_layers

    def test_serial_run_reports_serial_backend(self):
        model = ChainNet()
        report = _compress(model, search_workers=1,
                           search_backend="process")
        assert report.search.backend == "serial"
        assert report.search.workers == 1


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup assertion needs a 4+ core machine")
def test_speedup_with_four_workers():
    """Acceptance: workers=4 ≥ 2× faster than workers=1 on PointPillars."""
    import time

    from repro.models import build_model

    model = build_model("pointpillars")
    inputs = model.example_inputs()

    def timed(workers):
        config = hck_config(search_workers=workers,
                            search_backend="process")
        start = time.perf_counter()
        report = UPAQCompressor(config).compress(model, *inputs)
        return time.perf_counter() - start, report

    timed(1)                       # warm caches/imports
    serial_s, serial_report = timed(1)
    parallel_s, parallel_report = timed(4)
    _assert_reports_identical(serial_report, parallel_report)
    assert parallel_s * 2.0 <= serial_s, \
        f"workers=4 took {parallel_s:.2f}s vs serial {serial_s:.2f}s"
