"""Tests for per-layer quantization sensitivity analysis."""

import numpy as np
import pytest

from repro import nn
from repro.core import (analyze_sensitivity, quantize_per_kernel,
                        suggest_bit_allocation)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def model_and_input():
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(2, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(8, 4, 1, rng=rng),
    )
    x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
    return model, x


class TestQuantizePerKernel:
    def test_per_kernel_scales_beat_per_layer(self):
        rng = np.random.default_rng(1)
        # Kernels with wildly different magnitudes: a shared scale wastes
        # resolution on the small ones.
        kernels = np.concatenate([
            rng.standard_normal((4, 3, 3)) * 10.0,
            rng.standard_normal((4, 3, 3)) * 0.01,
        ]).astype(np.float32)
        from repro.core import mp_quantizer
        # The small kernels are where a shared scale hurts: with one
        # layer-wide scale their values all collapse to code 0.
        per_layer = mp_quantizer(kernels, 6).values
        per_layer_small_err = np.abs(per_layer[4:] - kernels[4:]).max()
        values, scales = quantize_per_kernel(kernels, 6)
        per_kernel_small_err = np.abs(values[4:] - kernels[4:]).max()
        assert per_kernel_small_err < per_layer_small_err / 10
        assert len(scales) == 8

    def test_zero_kernel_stable(self):
        kernels = np.zeros((2, 3, 3), dtype=np.float32)
        values, scales = quantize_per_kernel(kernels, 8)
        assert (values == 0).all()
        assert (scales == 1.0).all()


class TestSensitivityAnalysis:
    def test_profiles_all_layers(self, model_and_input):
        model, x = model_and_input
        profile = analyze_sensitivity(model, x, quant_bits=(4, 8))
        assert {l.layer for l in profile.layers} == {"0", "2"}

    def test_error_decreases_with_bits(self, model_and_input):
        model, x = model_and_input
        profile = analyze_sensitivity(model, x, quant_bits=(4, 8, 16))
        for layer in profile.layers:
            errs = layer.output_error_by_bits
            assert errs[16] <= errs[8] <= errs[4] + 1e-9

    def test_weights_restored_after_analysis(self, model_and_input):
        model, x = model_and_input
        before = {k: v.copy() for k, v in model.state_dict().items()}
        analyze_sensitivity(model, x, quant_bits=(4,))
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[key])

    def test_most_sensitive_ordering(self, model_and_input):
        model, x = model_and_input
        profile = analyze_sensitivity(model, x, quant_bits=(4,))
        ranked = profile.most_sensitive(bits=4)
        errors = [profile.by_name()[name].output_error_by_bits[4]
                  for name in ranked]
        assert errors == sorted(errors, reverse=True)

    def test_suggest_allocation_respects_budget(self, model_and_input):
        model, x = model_and_input
        profile = analyze_sensitivity(model, x, quant_bits=(4, 8, 16))
        tight = suggest_bit_allocation(profile, max_output_error=1e-6)
        loose = suggest_bit_allocation(profile, max_output_error=10.0)
        assert all(tight[name] >= loose[name] for name in tight)
        assert all(bits in (4, 8, 16) for bits in loose.values())
