"""Tests for Algorithms 1, 3, 4, 5: grouping, kernel & model compression."""

import numpy as np
import pytest

from repro import nn
from repro.core import (UPAQCompressor, apply_patterns, compress_1x1,
                        compress_kxk, hck_config, lck_config,
                        preprocess_model)
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def simple_score(sqnr, bits, sparsity):
    """A score preferring high SQNR then low bits (deterministic tests)."""
    from repro.core import sqnr_db
    return sqnr_db(sqnr) - 0.1 * bits


class SmallNet(nn.Module):
    """conv3x3 → conv3x3 → conv1x1 chain for pipeline tests."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = nn.Conv2d(2, 4, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.proj = nn.Conv2d(4, 2, 1, rng=rng)

    def forward(self, x):
        return self.proj(self.conv2(self.conv1(x).relu()).relu())

    def example_inputs(self):
        rng = np.random.default_rng(1)
        return (Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32)),)


class TestPreprocessing:
    def test_chain_grouped_under_first_conv(self, rng):
        model = SmallNet()
        groups = preprocess_model(model, *model.example_inputs())
        # conv1 and conv2 share kernel size 3 → same group; proj (1×1)
        # roots its own group.
        assert groups.roots["conv2"] == "conv1"
        assert groups.roots["proj"] == "proj"
        assert set(groups.groups["conv1"]) == {"conv1", "conv2"}

    def test_every_layer_assigned(self):
        model = SmallNet()
        groups = preprocess_model(model, *model.example_inputs())
        assert groups.num_layers == 3

    def test_mixed_kernel_sizes_split_groups(self, rng):
        class Mixed(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Conv2d(1, 2, 3, padding=1, rng=rng)
                self.b = nn.Conv2d(2, 2, 5, padding=2, rng=rng)
                self.c = nn.Conv2d(2, 2, 5, padding=2, rng=rng)

            def forward(self, x):
                return self.c(self.b(self.a(x)))

        model = Mixed()
        x = Tensor(np.random.default_rng(0)
                   .standard_normal((1, 1, 8, 8)).astype(np.float32))
        groups = preprocess_model(model, x)
        assert groups.roots["b"] == "b"       # 5×5 can't join the 3×3 root
        assert groups.roots["c"] == "b"       # but chains with b


class TestCompressKxK:
    def test_respects_pattern_sparsity(self, rng):
        weights = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        candidate = compress_kxk(weights, 2, (8,), simple_score, rng)
        per_kernel_nnz = (candidate.weights != 0).reshape(-1, 9).sum(axis=1)
        assert (per_kernel_nnz <= 2).all()

    def test_per_kernel_masks_from_pool(self, rng):
        weights = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        candidate = compress_kxk(weights, 2, (8,), simple_score, rng,
                                 num_patterns=6)
        # Every kernel's mask is one of the generated pool patterns.
        pool = {tuple(p.mask().reshape(-1)) for p in candidate.patterns}
        for mask in candidate.mask.reshape(-1, 9):
            assert tuple(mask) in pool
        # Kernel-wise selection: with heterogeneous kernels, different
        # kernels generally pick different patterns.
        assert candidate.pattern_index is not None
        assert len(candidate.pattern_index) == 8

    def test_selection_minimizes_reconstruction_error(self, rng):
        # A kernel whose energy lies on the main diagonal must pick the
        # diagonal pattern when it is in the pool.
        from repro.core import generate_pattern
        diag = generate_pattern(3, 3, rng, pattern_type="main_diagonal")
        row = generate_pattern(3, 3, rng, pattern_type="row")
        weights = np.zeros((1, 1, 3, 3), dtype=np.float32)
        weights[0, 0, 0, 0] = weights[0, 0, 1, 1] = weights[0, 0, 2, 2] = 1.0
        candidate = compress_kxk(weights, 3, (8,), simple_score, rng,
                                 patterns=[row, diag])
        np.testing.assert_array_equal(candidate.weights, weights)

    def test_picks_best_scoring_bits(self, rng):
        weights = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        # The search must honor the score function exactly.
        prefer_high = compress_kxk(weights, 3, (4, 8, 16),
                                   lambda sqnr, bits, sparsity: bits, rng)
        prefer_low = compress_kxk(weights, 3, (4, 8, 16),
                                  lambda sqnr, bits, sparsity: -bits, rng)
        assert prefer_high.bits == 16
        assert prefer_low.bits == 4

    def test_rejects_1x1(self, rng):
        with pytest.raises(ValueError):
            compress_kxk(np.ones((2, 2, 1, 1), dtype=np.float32), 2, (8,),
                         simple_score, rng)


class TestCompress1x1:
    def test_shape_preserved(self, rng):
        weights = rng.standard_normal((8, 5, 1, 1)).astype(np.float32)
        candidate = compress_1x1(weights, 2, (8,), simple_score, rng)
        assert candidate.weights.shape == weights.shape
        assert candidate.mask.shape == weights.shape

    def test_tile_sparsity_carries_over(self, rng):
        weights = rng.standard_normal((9, 9, 1, 1)).astype(np.float32)
        candidate = compress_1x1(weights, 2, (8,), simple_score, rng,
                                 tile=3)
        # 81 weights → 9 tiles of 9; ≤2 nonzero per tile.
        sparsity = float((candidate.weights == 0).mean())
        assert sparsity >= 1.0 - 2 / 9 - 0.05

    def test_linear_weights_supported(self, rng):
        weights = rng.standard_normal((6, 7)).astype(np.float32)
        candidate = compress_1x1(weights, 3, (8,), simple_score, rng)
        assert candidate.weights.shape == (6, 7)

    def test_non_multiple_of_tile_padded_safely(self, rng):
        weights = rng.standard_normal((5, 1, 1, 1)).astype(np.float32)
        candidate = compress_1x1(weights, 3, (8,), simple_score, rng)
        assert candidate.weights.shape == weights.shape


class TestApplyPatterns:
    def test_kxk_leaf_application(self, rng):
        from repro.core import generate_patterns
        pool = generate_patterns(2, 3, 4, rng)
        weights = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        result = apply_patterns(weights, pool, bits=8)
        nnz = (result.weights != 0).reshape(-1, 9).sum(axis=1)
        assert (nnz <= 2).all()

    def test_pattern_dim_mismatch_raises(self, rng):
        from repro.core import generate_patterns
        pool = generate_patterns(2, 3, 4, rng)
        weights = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
        with pytest.raises(ValueError):
            apply_patterns(weights, pool, bits=8)

    def test_empty_pool_raises(self, rng):
        weights = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            apply_patterns(weights, [], bits=8)

    def test_1x1_leaf_application(self, rng):
        from repro.core import generate_patterns
        pool = generate_patterns(2, 3, 4, rng)
        weights = rng.standard_normal((4, 4, 1, 1)).astype(np.float32)
        result = apply_patterns(weights, pool, bits=8)
        assert result.weights.shape == weights.shape
        assert float((result.weights == 0).mean()) > 0.5


class TestUPAQCompressor:
    def test_original_model_untouched(self):
        model = SmallNet()
        before = {k: v.copy() for k, v in model.state_dict().items()}
        UPAQCompressor(hck_config()).compress(model, *model.example_inputs())
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_all_layers_compressed(self):
        model = SmallNet()
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        assert {c.layer for c in report.choices} == {"conv1", "conv2",
                                                     "proj"}

    def test_leaves_share_root_bits_and_pool(self):
        model = SmallNet()
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        c1 = report.choice_for("conv1")
        c2 = report.choice_for("conv2")
        assert c2.root == "conv1"
        assert c1.bits == c2.bits
        assert c1.pattern.startswith("mixed[")

    def test_hck_compresses_more_than_lck(self):
        model = SmallNet()
        hck = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        lck = UPAQCompressor(lck_config()).compress(
            model, *model.example_inputs())
        assert hck.compression_ratio > lck.compression_ratio
        assert hck.overall_sparsity > lck.overall_sparsity

    def test_compression_ratio_above_one(self):
        model = SmallNet()
        report = UPAQCompressor(lck_config()).compress(
            model, *model.example_inputs())
        assert report.compression_ratio > 2.0

    def test_deterministic_given_seed(self):
        model = SmallNet()
        a = UPAQCompressor(hck_config(seed=3)).compress(
            model, *model.example_inputs())
        b = UPAQCompressor(hck_config(seed=3)).compress(
            model, *model.example_inputs())
        for (_, wa), (_, wb) in zip(a.model.named_parameters(),
                                    b.model.named_parameters()):
            np.testing.assert_array_equal(wa.data, wb.data)

    def test_no_root_groups_ablation(self):
        model = SmallNet()
        config = hck_config(use_root_groups=False)
        report = UPAQCompressor(config).compress(model,
                                                 *model.example_inputs())
        # Without grouping, every layer is searched independently.
        assert all(c.root == c.layer for c in report.choices)

    def test_no_1x1_compression_ablation(self):
        model = SmallNet()
        config = hck_config(compress_1x1_layers=False)
        report = UPAQCompressor(config).compress(model,
                                                 *model.example_inputs())
        proj = report.choice_for("proj")
        assert proj.sparsity == 0.0   # quantized but not pruned

    def test_pattern_family_restriction(self):
        model = SmallNet()
        config = hck_config(pattern_types=("main_diagonal",))
        report = UPAQCompressor(config).compress(model,
                                                 *model.example_inputs())
        kxk = [c for c in report.choices if c.layer in ("conv1", "conv2")]
        assert all("main_diagonal" in c.pattern for c in kxk)

    def test_forward_still_works_after_compression(self):
        model = SmallNet()
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        out = report.model(*model.example_inputs())
        assert np.isfinite(out.data).all()

    def test_quantized_weights_on_integer_grid(self):
        """Each kernel's values lie on its pattern-group's integer grid."""
        model = SmallNet()
        report = UPAQCompressor(lck_config()).compress(
            model, *model.example_inputs())
        choice = report.choice_for("conv1")
        weights = dict(report.model.named_parameters())["conv1.weight"].data
        max_code = 2 ** (choice.bits - 1) - 1
        # The layer holds at most num_patterns distinct quantization
        # scales (one per pattern-quantization pass); every nonzero value
        # must be an integer multiple of one of them.
        nonzero = np.abs(weights[weights != 0])
        distinct = np.unique(np.round(nonzero / nonzero.min(), 6))
        # Far fewer distinct magnitudes than values → values sit on grids.
        assert len(distinct) <= max_code * 8  # 8 = pattern pool size


class TestConnectivityPruning:
    def test_raises_sparsity(self):
        model = SmallNet()
        plain = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        connected = UPAQCompressor(
            hck_config(connectivity_percentile=30)).compress(
            model, *model.example_inputs())
        assert connected.overall_sparsity > plain.overall_sparsity

    def test_kills_weak_kernels_entirely(self):
        model = SmallNet()
        report = UPAQCompressor(
            hck_config(connectivity_percentile=40)).compress(
            model, *model.example_inputs())
        weights = dict(report.model.named_parameters())["conv1.weight"].data
        kernel_nnz = (weights != 0).reshape(-1, 9).sum(axis=1)
        assert (kernel_nnz == 0).sum() >= 2

    def test_reduces_sqnr(self):
        """Removing whole kernels costs fidelity — the paper's warning."""
        model = SmallNet()
        plain = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        connected = UPAQCompressor(
            hck_config(connectivity_percentile=40)).compress(
            model, *model.example_inputs())
        import numpy as _np
        plain_sqnr = _np.mean([c.sqnr_db for c in plain.choices])
        connected_sqnr = _np.mean([c.sqnr_db for c in connected.choices])
        assert connected_sqnr < plain_sqnr
