"""Tests for the UPAQ pattern generator (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (PATTERN_TYPES, generate_pattern, generate_patterns,
                        hck_config, lck_config, pool_signature)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGeneratePattern:
    def test_main_diagonal_positions(self, rng):
        p = generate_pattern(3, 3, rng, pattern_type="main_diagonal")
        assert p.positions == ((0, 0), (1, 1), (2, 2))

    def test_anti_diagonal_positions(self, rng):
        p = generate_pattern(3, 3, rng, pattern_type="anti_diagonal")
        assert p.positions == ((0, 2), (1, 1), (2, 0))

    def test_row_pattern_contiguous(self, rng):
        p = generate_pattern(2, 3, rng, pattern_type="row")
        rows = {r for r, _ in p.positions}
        cols = sorted(c for _, c in p.positions)
        assert len(rows) == 1
        assert cols == list(range(cols[0], cols[0] + 2))

    def test_column_pattern_contiguous(self, rng):
        p = generate_pattern(2, 3, rng, pattern_type="column")
        cols = {c for _, c in p.positions}
        rows = sorted(r for r, _ in p.positions)
        assert len(cols) == 1
        assert rows == list(range(rows[0], rows[0] + 2))

    def test_n_capped_at_dimension(self, rng):
        p = generate_pattern(7, 3, rng, pattern_type="main_diagonal")
        assert p.num_nonzero == 3

    def test_mask_shape_and_count(self, rng):
        p = generate_pattern(2, 5, rng)
        mask = p.mask()
        assert mask.shape == (5, 5)
        assert mask.sum() == 2

    def test_invalid_n_raises(self, rng):
        with pytest.raises(ValueError):
            generate_pattern(0, 3, rng)

    def test_invalid_type_raises(self, rng):
        with pytest.raises(ValueError):
            generate_pattern(2, 3, rng, pattern_type="zigzag")

    def test_random_type_from_family(self, rng):
        types = {generate_pattern(2, 3, rng).pattern_type
                 for _ in range(50)}
        assert types <= set(PATTERN_TYPES)
        assert len(types) >= 3   # random choice covers the family

    @given(st.integers(1, 6), st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_positions_inside_kernel(self, n, d):
        rng = np.random.default_rng(n * 10 + d)
        p = generate_pattern(n, d, rng)
        for row, col in p.positions:
            assert 0 <= row < d
            assert 0 <= col < d

    @given(st.integers(1, 5), st.integers(2, 6))
    @settings(max_examples=50, deadline=None)
    def test_exactly_min_n_d_nonzeros(self, n, d):
        rng = np.random.default_rng(n + d * 100)
        p = generate_pattern(n, d, rng)
        assert p.num_nonzero == min(n, d)


class TestGeneratePatterns:
    def test_distinct(self, rng):
        patterns = generate_patterns(2, 3, 8, rng)
        keys = {(p.pattern_type, p.positions) for p in patterns}
        assert len(keys) == len(patterns)

    def test_count_respected_when_space_allows(self, rng):
        patterns = generate_patterns(2, 5, 6, rng)
        assert len(patterns) == 6

    def test_restricted_family(self, rng):
        patterns = generate_patterns(2, 3, 6, rng,
                                     pattern_types=("row",))
        assert all(p.pattern_type == "row" for p in patterns)

    def test_small_space_returns_fewer(self, rng):
        # d=1: every pattern collapses to the single cell.
        patterns = generate_patterns(1, 1, 10, rng)
        assert 1 <= len(patterns) <= 4


def _belongs_to_family(pattern) -> bool:
    """Check a pattern's positions against its claimed arrangement."""
    rows = [r for r, _ in pattern.positions]
    cols = [c for _, c in pattern.positions]
    count = len(pattern.positions)
    if pattern.pattern_type == "main_diagonal":
        return pattern.positions == tuple((i, i) for i in range(count))
    if pattern.pattern_type == "anti_diagonal":
        return pattern.positions == tuple(
            (i, pattern.dim - i - 1) for i in range(count))
    if pattern.pattern_type == "row":
        return len(set(rows)) == 1 and \
            cols == list(range(cols[0], cols[0] + count))
    if pattern.pattern_type == "column":
        return len(set(cols)) == 1 and \
            rows == list(range(rows[0], rows[0] + count))
    return False


class TestPatternProperties:
    """Property suite: masks are exact, in-family, and seed-reproducible."""

    @given(n=st.integers(1, 6), d=st.integers(1, 7),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_mask_has_exactly_min_n_d_ones(self, n, d, seed):
        rng = np.random.default_rng(seed)
        mask = generate_pattern(n, d, rng).mask()
        assert mask.shape == (d, d)
        assert set(np.unique(mask)) <= {0.0, 1.0}
        assert int(mask.sum()) == min(n, d)

    @given(n=st.integers(1, 6), d=st.integers(1, 7),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_pattern_belongs_to_one_of_four_families(self, n, d, seed):
        rng = np.random.default_rng(seed)
        pattern = generate_pattern(n, d, rng)
        assert pattern.pattern_type in PATTERN_TYPES
        assert _belongs_to_family(pattern)

    @pytest.mark.parametrize("config_fn", [hck_config, lck_config])
    def test_preset_masks_have_configured_nonzeros(self, config_fn):
        """Every HCK/LCK pool mask retains exactly n_nonzero weights."""
        config = config_fn()
        rng = np.random.default_rng(0)
        pool = generate_patterns(config.n_nonzero_kxk, 3,
                                 config.num_patterns, rng)
        for pattern in pool:
            assert int(pattern.mask().sum()) == config.n_nonzero_kxk

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fixed_seed_reproduces_mask_sequence(self, seed):
        first = generate_patterns(2, 3, 8, np.random.default_rng(seed))
        second = generate_patterns(2, 3, 8, np.random.default_rng(seed))
        assert first == second
        for p1, p2 in zip(first, second):
            np.testing.assert_array_equal(p1.mask(), p2.mask())

    def test_different_seeds_usually_differ(self):
        pools = {pool_signature(generate_patterns(
            2, 3, 8, np.random.default_rng(seed))) for seed in range(16)}
        assert len(pools) > 1

    def test_pool_signature_identifies_equal_pools(self):
        a = generate_patterns(2, 3, 6, np.random.default_rng(11))
        b = generate_patterns(2, 3, 6, np.random.default_rng(11))
        c = generate_patterns(2, 3, 6, np.random.default_rng(12))
        assert pool_signature(a) == pool_signature(b)
        assert pool_signature(a) != pool_signature(c)
