"""Golden packed-blob fixtures and their regeneration script."""
