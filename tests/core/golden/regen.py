"""Builder + regeneration script for the golden packed blob + archive.

The checked-in blob (``packed_model_v4.bin``) pins the on-disk pack
format — header layout, embedded IR JSON, manifest encoding, per-scheme
payloads — against accidental drift.  ``tests/core/test_packing.py``
asserts that packing the deterministic golden model reproduces it
byte for byte.  The checked-in archive (``model_archive_v1.upak``)
likewise pins the model-variant archive format — header, JSON TOC,
content-addressed chunk region, trailer — and its cross-variant dedup;
``tests/core/test_archive.py`` asserts byte-identical regeneration.

After an *intentional* format change: bump ``_VERSION`` in
``src/repro/core/packing.py`` (or ``_ARCHIVE_VERSION`` in
``src/repro/core/archive.py``), name the golden file after it, and
regenerate by script (never by hand)::

    PYTHONPATH=src python -m tests.core.golden.regen

See ``docs/TESTING.md`` ("Golden files").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import nn
from repro.core import ArchiveWriter, pack_model
from repro.hardware import CompressionMeta, annotate_layer
from repro.ir import extract_ir
from repro.nn import Tensor

GOLDEN_PATH = Path(__file__).parent / "packed_model_v4.bin"
GOLDEN_ARCHIVE_PATH = Path(__file__).parent / "model_archive_v1.upak"


def _codes_to_weights(codes, shape, scale=2.0 ** -5):
    return (codes.astype(np.float64) * scale).astype(np.float32) \
        .reshape(shape)


def _semi_structured_weights(bits, seed=10, shape=(4, 2, 3, 3)):
    """Row-pattern sparse kernels with codes exactly on the grid."""
    max_code = 2 ** (bits - 1) - 1
    rng = np.random.default_rng(seed)
    kernel_size = shape[-2] * shape[-1]
    codes = np.zeros((int(np.prod(shape[:-2])), kernel_size),
                     dtype=np.int64)
    for kernel in codes:
        start = int(rng.integers(0, shape[-2])) * shape[-1]
        live = rng.integers(1, max_code + 1, size=shape[-1]) \
            * rng.choice((-1, 1), size=shape[-1])
        kernel[start:start + shape[-1]] = live
        kernel[start] = max_code        # extreme attained → exact scale
    return _codes_to_weights(codes, shape)


def _dense_weights(bits, seed=11, shape=(4, 2, 3, 3)):
    max_code = 2 ** (bits - 1) - 1
    rng = np.random.default_rng(seed)
    if len(shape) >= 2 and shape[-1] * shape[-2] == 1:
        rows = shape[0]                 # 1×1 convs group per channel
    else:
        rows = int(np.prod(shape[:-2]))
    codes = rng.integers(-max_code, max_code + 1,
                         size=(rows, int(np.prod(shape)) // rows))
    codes[:, 0] = max_code              # per-group extreme
    return _codes_to_weights(codes, shape)


def _unstructured_weights(bits, seed=12, shape=(6, 4)):
    max_code = 2 ** (bits - 1) - 1
    rng = np.random.default_rng(seed)
    codes = rng.integers(-max_code, max_code + 1,
                         size=int(np.prod(shape)))
    codes[rng.random(codes.size) < 0.5] = 0
    codes[0] = max_code                 # tensor-wide extreme
    return _codes_to_weights(codes, shape)


def golden_model():
    """Deterministic model covering every scheme at 4/8/16 bits."""
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(4, 4, 3, padding=1, rng=rng),
        nn.Conv2d(4, 2, 1, rng=rng),
    )
    model[0].weight.data = _semi_structured_weights(4, seed=20)
    annotate_layer(model[0], CompressionMeta(bits=4,
                                             scheme="semi-structured"))
    model[2].weight.data = _unstructured_weights(16, seed=21,
                                                 shape=(4, 4, 3, 3))
    annotate_layer(model[2], CompressionMeta(bits=16,
                                             scheme="unstructured"))
    model[3].weight.data = _dense_weights(8, seed=22, shape=(2, 4, 1, 1))
    annotate_layer(model[3], CompressionMeta(bits=8, scheme="dense"))
    return model


def golden_example_input():
    """Deterministic input for the golden model's IR extraction."""
    rng = np.random.default_rng(30)
    return Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32))


def golden_blob() -> bytes:
    """Pack the golden model with its embedded IR — the golden bytes."""
    model = golden_model()
    ir = extract_ir(model, golden_example_input())
    return pack_model(model, ir=ir)


#: archive variants: entry name → first-layer bitwidth.  Only layer 0
#: varies, so layers 2 and 3 pack to identical payloads across all
#: three variants and must deduplicate to shared chunks.
GOLDEN_VARIANTS = (("lck-16", 16), ("lck-8", 8), ("hck-4", 4))


def golden_variant(bits: int):
    """The golden model with its semi-structured layer at ``bits``."""
    model = golden_model()
    model[0].weight.data = _semi_structured_weights(bits, seed=20)
    annotate_layer(model[0], CompressionMeta(bits=bits,
                                             scheme="semi-structured"))
    return model


def golden_variant_blob(bits: int) -> bytes:
    model = golden_variant(bits)
    ir = extract_ir(model, golden_example_input())
    return pack_model(model, ir=ir)


def golden_archive() -> bytes:
    """Three bitwidth variants of the golden model, deduplicated."""
    writer = ArchiveWriter()
    for name, bits in GOLDEN_VARIANTS:
        writer.add(name, golden_variant_blob(bits),
                   model="golden", preset=name, bits=bits)
    return writer.finish()


def main() -> int:
    blob = golden_blob()
    GOLDEN_PATH.write_bytes(blob)
    print(f"wrote {len(blob)} bytes → {GOLDEN_PATH}")
    archive = golden_archive()
    GOLDEN_ARCHIVE_PATH.write_bytes(archive)
    print(f"wrote {len(archive)} bytes → {GOLDEN_ARCHIVE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
