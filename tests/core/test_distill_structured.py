"""Tests for knowledge distillation and structured pruning."""

import numpy as np
import pytest

from repro.baselines import StructuredPruner
from repro.core import (DistillConfig, UPAQCompressor,
                        channel_prune_mask, distill_finetune,
                        filter_prune_mask, hck_config)
from repro.models import PointPillars
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.pointcloud.voxelize import PillarConfig


def _tiny_pp(seed=0):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(2)]


class TestStructuredMasks:
    def test_filter_mask_zeroes_whole_filters(self):
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        mask = filter_prune_mask(weights, 0.25)
        per_filter = mask.reshape(8, -1)
        # Each filter is entirely kept or entirely dropped.
        assert set(per_filter.mean(axis=1)) <= {0.0, 1.0}
        assert (per_filter.mean(axis=1) == 0).sum() == 2

    def test_filter_mask_drops_weakest(self):
        weights = np.ones((4, 2, 3, 3), dtype=np.float32)
        weights[1] *= 0.01   # the weakest filter
        mask = filter_prune_mask(weights, 0.25)
        assert (mask[1] == 0).all()
        assert (mask[0] == 1).all()

    def test_channel_mask_zeroes_input_channels(self):
        rng = np.random.default_rng(1)
        weights = rng.standard_normal((4, 8, 3, 3)).astype(np.float32)
        mask = channel_prune_mask(weights, 0.5)
        per_channel = np.swapaxes(mask, 0, 1).reshape(8, -1)
        assert (per_channel.mean(axis=1) == 0).sum() == 4

    def test_zero_fraction_identity(self):
        weights = np.ones((4, 2, 3, 3), dtype=np.float32)
        assert filter_prune_mask(weights, 0.0).all()

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            filter_prune_mask(np.ones((2, 2, 3, 3)), 1.0)

    def test_structured_framework(self, scenes):
        model = _tiny_pp()
        framework = StructuredPruner(prune_fraction=0.25, bits=8)
        report = framework.compress(model, *model.example_inputs())
        assert report.compression_ratio > 1.5
        # Structured scheme realizes full MAC skipping on int paths.
        from repro.hardware import compile_model, default_devices
        device = default_devices()["jetson"]
        base_plan = compile_model(model, *model.example_inputs())
        plan = compile_model(report.model, *model.example_inputs())
        assert device.latency(plan) < device.latency(base_plan)

    def test_structured_registered(self):
        from repro.baselines import build_framework
        assert isinstance(build_framework("structured"), StructuredPruner)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            StructuredPruner(mode="blockwise")


class TestDistillation:
    def test_distill_keeps_masks_and_grid(self, scenes):
        teacher = _tiny_pp(seed=0)
        report = UPAQCompressor(hck_config()).compress(
            teacher, *teacher.example_inputs())
        zeros_before = {
            name: (param.data == 0)
            for name, param in report.model.named_parameters()
            if name.endswith(".weight") and name[:-7] in report.masks}
        history = distill_finetune(report, teacher, scenes,
                                   DistillConfig(epochs=1))
        assert len(history) == 1
        assert np.isfinite(history[0])
        for name, zeros in zeros_before.items():
            weights = dict(report.model.named_parameters())[name].data
            assert (weights[zeros] == 0).all()

    def test_distill_moves_student_toward_teacher(self, scenes):
        teacher = _tiny_pp(seed=0)
        report = UPAQCompressor(hck_config()).compress(
            teacher, *teacher.example_inputs())

        def gap():
            report.model.eval()
            teacher.eval()
            s_out = report.model(*report.model.preprocess(scenes[0]))
            t_out = teacher(*teacher.preprocess(scenes[0]))
            return float(np.mean((s_out["cls"].data
                                  - t_out["cls"].data) ** 2))

        before = gap()
        distill_finetune(report, teacher, scenes,
                         DistillConfig(epochs=3, lr=2e-3,
                                       task_weight=0.0))
        after = gap()
        assert after < before

    def test_distill_loss_decreases(self, scenes):
        teacher = _tiny_pp(seed=0)
        report = UPAQCompressor(hck_config()).compress(
            teacher, *teacher.example_inputs())
        history = distill_finetune(report, teacher, scenes,
                                   DistillConfig(epochs=3, lr=1e-3))
        assert history[-1] < history[0]
