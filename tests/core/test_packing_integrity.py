"""Integrity guarantees of the v4 packed-blob format.

Acceptance pins: *any* single-byte corruption anywhere in the blob is
detected as :class:`BlobCorruptionError` in strict mode; with
``strict=False`` the intact layers are restored and the damaged ones
reported by name; and unpacking a blob into the wrong architecture
raises :class:`BlobArchitectureError` before touching any weights.
"""

import numpy as np
import pytest

from repro.core import (BlobArchitectureError, BlobCorruptionError,
                        BlobError, BlobVersionError, RestoreReport,
                        UPAQCompressor, hck_config, pack_model,
                        restore_model, unpack_model)
from repro.models import SMOKE, PointPillars
from repro.nn.graph import layer_map

from tests.models.conftest import TINY_PILLARS, TINY_SMOKE


def _tiny_pp(seed=0):
    return PointPillars(seed=seed, **TINY_PILLARS)


@pytest.fixture(scope="module")
def packed():
    model = _tiny_pp(seed=1)
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    return pack_model(report.model)


class TestSingleByteCorruption:
    def test_every_byte_position_is_detected(self, packed):
        """Exhaustive sweep: flip each byte in turn, all must be caught.

        The sweep strides through the blob while still pinning every
        structural region by hand: magic, version, layer count, the
        manifest, payloads, and the trailer checksum itself.
        """
        target = _tiny_pp(seed=1)
        stride = max(1, len(packed) // 512)
        positions = set(range(0, len(packed), stride))
        positions |= {0, 3, 4, 5, 8, len(packed) - 1,
                      len(packed) - _len_trailer(), len(packed) // 2}
        for pos in sorted(positions):
            mutated = bytearray(packed)
            mutated[pos] ^= 0xFF
            with pytest.raises(BlobCorruptionError):
                unpack_model(bytes(mutated), target)

    def test_truncation_is_detected(self, packed):
        with pytest.raises(BlobCorruptionError):
            unpack_model(packed[:-1], _tiny_pp(seed=1))
        with pytest.raises(BlobError):
            unpack_model(packed[:6], _tiny_pp(seed=1))

    def test_version_byte_flip_is_still_corruption(self, packed):
        mutated = bytearray(packed)
        mutated[4] ^= 0xFF
        with pytest.raises(BlobCorruptionError):
            unpack_model(bytes(mutated), _tiny_pp(seed=1))
        assert issubclass(BlobVersionError, BlobCorruptionError)


def _len_trailer():
    from repro.core.packing import _CHECKSUM_BYTES
    return _CHECKSUM_BYTES


def _blob_with_one_bad_payload(packed):
    """Corrupt a byte inside the last layer's payload region (the byte
    just before the 16-byte trailer checksum)."""
    mutated = bytearray(packed)
    mutated[len(mutated) - _len_trailer() - 1] ^= 0xFF
    return bytes(mutated)


class TestNonStrictRestore:
    def test_partial_restore_names_the_bad_layer(self, packed):
        blob = _blob_with_one_bad_payload(packed)
        model = _tiny_pp(seed=1)
        report = restore_model(blob, model, strict=False)
        assert isinstance(report, RestoreReport)
        assert not report.complete
        assert len(report.skipped) == 1
        bad_name, reason = next(iter(report.skipped.items()))
        assert bad_name in reason and "checksum" in reason
        assert len(report.restored) == len(layer_map(model)) - 1
        assert bad_name not in report.restored

    def test_partial_restore_applies_intact_layers(self, packed):
        # Ground truth: a strict restore of the *intact* blob.
        reference = unpack_model(packed, _tiny_pp(seed=2))
        reference_layers = layer_map(reference)

        target = _tiny_pp(seed=2)
        fresh = {name: layer.weight.data.copy()
                 for name, layer in layer_map(target).items()}
        report = restore_model(_blob_with_one_bad_payload(packed),
                               target, strict=False)
        layers = layer_map(target)
        for name in report.restored:
            np.testing.assert_array_equal(
                layers[name].weight.data,
                reference_layers[name].weight.data)
        (bad_name,) = report.skipped
        # The damaged layer keeps the target's own weights.
        np.testing.assert_array_equal(layers[bad_name].weight.data,
                                      fresh[bad_name])

    def test_strict_mode_raises_on_same_blob(self, packed):
        with pytest.raises(BlobCorruptionError):
            restore_model(_blob_with_one_bad_payload(packed),
                          _tiny_pp(seed=1), strict=True)


class TestArchitectureMismatch:
    def test_pillars_blob_rejected_by_smoke(self, packed):
        """Satellite regression: pack PointPillars, unpack into SMOKE."""
        smoke = SMOKE(seed=0, **TINY_SMOKE)
        with pytest.raises(BlobArchitectureError):
            unpack_model(packed, smoke)

    def test_smoke_blob_rejected_by_pillars(self):
        blob = pack_model(SMOKE(seed=0, **TINY_SMOKE))
        with pytest.raises(BlobArchitectureError):
            unpack_model(blob, _tiny_pp())

    def test_mismatch_leaves_target_untouched(self, packed):
        smoke = SMOKE(seed=0, **TINY_SMOKE)
        before = {name: layer.weight.data.copy()
                  for name, layer in layer_map(smoke).items()}
        with pytest.raises(BlobArchitectureError):
            unpack_model(packed, smoke)
        for name, layer in layer_map(smoke).items():
            np.testing.assert_array_equal(layer.weight.data, before[name])

    def test_arch_errors_raise_even_when_not_strict(self, packed):
        with pytest.raises(BlobArchitectureError):
            restore_model(packed, SMOKE(seed=0, **TINY_SMOKE),
                          strict=False)


class TestCleanRoundTrip:
    def test_restore_report_is_complete(self, packed):
        model = _tiny_pp(seed=1)
        report = restore_model(packed, model)
        assert report.complete
        assert not report.skipped
        assert report.version == 4
        assert report.restored == list(layer_map(model))

    def test_repacked_blob_is_identical(self, packed):
        model = unpack_model(packed, _tiny_pp(seed=1))
        assert pack_model(model) == packed
