"""Tests for the mixed-precision symmetric quantizer (Algorithm 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (evaluate_quant, mp_quantizer, quantize_per_kernel,
                        quantize_to_int, sqnr_db)


class TestQuantizeToInt:
    def test_codes_within_symmetric_range(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100).astype(np.float32) * 3
        codes, _ = quantize_to_int(x, 8)
        assert codes.max() <= 127
        assert codes.min() >= -127

    def test_zero_maps_to_zero(self):
        x = np.array([0.0, 1.0, -1.0], dtype=np.float32)
        codes, _ = quantize_to_int(x, 8)
        assert codes[0] == 0

    def test_extreme_value_hits_max_code(self):
        x = np.array([-2.0, 0.5, 2.0], dtype=np.float32)
        codes, scale = quantize_to_int(x, 4)
        assert codes.max() == 7
        assert codes.min() == -7
        assert scale == pytest.approx(2.0 / 7)

    def test_all_zero_input(self):
        codes, scale = quantize_to_int(np.zeros(5, dtype=np.float32), 8)
        assert (codes == 0).all()
        assert scale == 1.0

    def test_too_few_bits_raises(self):
        with pytest.raises(ValueError):
            quantize_to_int(np.ones(3), 1)


class TestMPQuantizer:
    def test_dequantized_close_at_high_bits(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 3, 3)).astype(np.float32)
        result = mp_quantizer(x, 16)
        np.testing.assert_allclose(result.values, x, atol=1e-3)

    def test_sqnr_monotonic_in_bits(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 3, 3)).astype(np.float32)
        sqnrs = [mp_quantizer(x, bits).sqnr for bits in (4, 8, 12, 16)]
        assert all(a < b for a, b in zip(sqnrs, sqnrs[1:]))

    def test_sqnr_roughly_6db_per_bit(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, 10000).astype(np.float32)
        gain = mp_quantizer(x, 10).sqnr_db - mp_quantizer(x, 8).sqnr_db
        assert 9 < gain < 15   # ~6 dB per bit for uniform signals

    def test_preserves_zeros(self):
        x = np.array([[0.0, 0.5], [0.0, -0.7]], dtype=np.float32)
        result = mp_quantizer(x, 8)
        assert result.values[0, 0] == 0.0
        assert result.values[1, 0] == 0.0

    def test_preserves_sign(self):
        x = np.array([-1.0, -0.1, 0.1, 1.0], dtype=np.float32)
        result = mp_quantizer(x, 8)
        assert (np.sign(result.values) == np.sign(x)).all()

    def test_exact_representation_gives_inf_sqnr(self):
        x = np.array([-1.0, 0.0, 1.0], dtype=np.float32)
        result = mp_quantizer(x, 8)
        assert result.sqnr == float("inf")

    @given(st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_error_bounded_by_half_scale(self, bits):
        rng = np.random.default_rng(bits)
        x = rng.standard_normal(200).astype(np.float32)
        result = mp_quantizer(x, bits)
        max_err = np.abs(x - result.values).max()
        assert max_err <= result.scale * 0.5 + 1e-6

    @given(st.floats(0.01, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_scale_invariance_of_sqnr(self, factor):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(500).astype(np.float32)
        a = mp_quantizer(x, 8).sqnr
        b = mp_quantizer(x * factor, 8).sqnr
        assert a == pytest.approx(b, rel=0.05)


class TestQuantizerInvariants:
    """Satellite suite: 0→0, SQNR monotone in bits, no division by zero."""

    @given(bits=st.integers(2, 16), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_zero_always_maps_to_zero(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64).astype(np.float32)
        x[::7] = 0.0                        # sprinkle exact zeros
        codes, scale = quantize_to_int(x, bits)
        assert (codes[::7] == 0).all()
        assert ((codes * scale)[::7] == 0.0).all()

    @given(bits=st.integers(2, 16), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_per_kernel_zeros_stay_zero(self, bits, seed):
        rng = np.random.default_rng(seed)
        kernels = rng.standard_normal((6, 3, 3)).astype(np.float32)
        kernels[:, 1, :] = 0.0              # pruned row per kernel
        values, _ = quantize_per_kernel(kernels, bits)
        assert (values[:, 1, :] == 0.0).all()

    def test_per_kernel_sqnr_nondecreasing_in_bits(self):
        """More bits never hurt reconstruction of fixed random kernels."""
        rng = np.random.default_rng(5)
        kernels = rng.standard_normal((16, 3, 3)).astype(np.float32)
        errors = []
        for bits in (2, 4, 6, 8, 12, 16):
            values, _ = quantize_per_kernel(kernels, bits)
            errors.append(float(((kernels - values) ** 2).sum()))
        assert all(lo >= hi for lo, hi in zip(errors, errors[1:]))

    def test_evaluate_quant_sqnr_nondecreasing_in_bits(self):
        rng = np.random.default_rng(6)
        weights = rng.standard_normal((8, 16, 1, 1)).astype(np.float32)
        candidates = evaluate_quant(weights, (4, 6, 8, 12, 16))
        sqnrs = [c.sqnr for c in candidates]
        assert all(a <= b for a, b in zip(sqnrs, sqnrs[1:]))

    def test_all_zero_kernel_no_division_by_zero(self):
        zeros = np.zeros((4, 3, 3), dtype=np.float32)
        with np.errstate(all="raise"):      # any div-by-zero → FloatingPointError
            values, scales = quantize_per_kernel(zeros, 8)
            result = mp_quantizer(zeros, 8)
            candidates = evaluate_quant(zeros.reshape(4, 9), (4, 8))
        assert (values == 0).all()
        assert (scales == 1.0).all()
        assert (result.values == 0).all()
        assert np.isfinite(result.sqnr)     # defined, not NaN/inf
        for candidate in candidates:
            assert (candidate.values == 0).all()
            assert not np.isnan(candidate.sqnr)

    def test_mixed_zero_and_live_kernels(self):
        """A dead kernel among live ones gets the neutral scale."""
        rng = np.random.default_rng(8)
        kernels = rng.standard_normal((3, 3, 3)).astype(np.float32)
        kernels[1] = 0.0
        with np.errstate(all="raise"):
            values, scales = quantize_per_kernel(kernels, 8)
        assert (values[1] == 0).all()
        assert scales[1] == 1.0
        assert (values[0] != 0).any() and (values[2] != 0).any()


class TestSqnrDb:
    def test_known_value(self):
        assert sqnr_db(100.0) == pytest.approx(20.0)

    def test_inf_capped(self):
        assert sqnr_db(float("inf")) == 120.0

    def test_huge_ratio_capped(self):
        assert sqnr_db(1e30) == 120.0
